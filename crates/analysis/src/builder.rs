//! Analysis entry points and result types (the pipeline's front door).
//!
//! The analysis itself is a staged pipeline (see DESIGN.md §Pipeline):
//!
//! 1. [`crate::lower`] — AST → dataflow IR (control-flow shape, loop
//!    φ-sets, condition refinements, prepared transducers);
//! 2. [`crate::summary`] — per-file IR summaries memoized by content
//!    hash so shared includes lower once per app, not once per page;
//! 3. [`crate::emit`] — IR → annotated CFG productions (paper §3.1),
//!    owning every grammar, budget, and configuration interaction.
//!
//! This module keeps the stable public surface: [`analyze`] /
//! [`analyze_with`] for single pages (private summary cache), and
//! [`analyze_cached`] for app drivers that share a [`SummaryCache`]
//! across pages.

use std::collections::BTreeSet;
use std::fmt;

use strtaint_grammar::budget::{Budget, Degradation};
use strtaint_grammar::{Cfg, NtId};
use strtaint_php::Span;

use crate::config::Config;
use crate::emit::Emitter;
use crate::env::Env;
use crate::relevance;
use crate::summary::SummaryCache;
use crate::vfs::{normalize, Vfs};

/// Where a hotspot's grammar came from in the staged pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Provenance {
    /// Content hash of the file summary whose IR contained the sink —
    /// the [`crate::summary`] cache key component, letting reports tie
    /// a finding back to the exact file revision analyzed.
    pub summary: u64,
    /// Span of the sink's first argument (the query expression itself),
    /// finer-grained than the call span for finding locations.
    pub arg_span: Option<Span>,
}

/// A query-construction site and the grammar root for the values that
/// flow into it.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// File containing the call.
    pub file: String,
    /// Location of the call.
    pub span: Span,
    /// Call label, e.g. `$DB->query` or `mysql_query`.
    pub label: String,
    /// Grammar root deriving every query string this site may send.
    pub root: NtId,
    /// Id of the policy this sink belongs to (`"sql"`, `"xss"`,
    /// `"shell"`, …) — the dispatch key multi-policy checkers use. Sink
    /// recognition is a table lookup against the `strtaint-policy`
    /// registry, so the analysis layer never hard-codes a class.
    pub policy: String,
    /// IR provenance (summary hash + argument span).
    pub provenance: Provenance,
}

/// Result of the string-taint analysis phase.
#[derive(Debug)]
pub struct Analysis {
    /// The program-wide annotated grammar.
    pub cfg: Cfg,
    /// Query hotspots discovered, in program order.
    pub hotspots: Vec<Hotspot>,
    /// HTML output sinks (`echo`/`print` arguments), for the XSS
    /// extension the paper names as future work (§7).
    pub echo_sinks: Vec<Hotspot>,
    /// Non-fatal findings (unresolved includes, parse failures in
    /// included files, widened operations).
    pub warnings: Vec<String>,
    /// Builtin functions that had no model and were widened to Σ*.
    pub unmodeled: BTreeSet<String>,
    /// Number of files analyzed (including re-analysis through
    /// repeated includes, as in the paper's tool).
    pub files_analyzed: usize,
    /// Distinct files whose *contents* this analysis read (entry plus
    /// every resolved include, each counted once). This is the page's
    /// transitive input set: the emitted grammar is a function of these
    /// files' bytes, the project path layout (dynamic include
    /// resolution), and the [`crate::Config`] — which is what the
    /// analysis daemon keys verdict replay on. Under
    /// `Config::backward_slice` the relevance pre-pass reads the whole
    /// tree, so consumers must widen this set to every file.
    pub inputs: BTreeSet<String>,
    /// Precision losses from budget trips during grammar construction
    /// (widened transducer images, skipped refinements, unresolved
    /// includes). Each is sound: the degraded grammar derives a
    /// superset of the precise one.
    pub degradations: Vec<Degradation>,
}

/// Fatal analysis errors.
#[derive(Debug)]
pub enum AnalyzeError {
    /// The entry file is missing from the VFS.
    EntryNotFound(String),
    /// The entry file failed to parse (in whichever frontend its
    /// extension dispatched to — the error renders identically across
    /// frontends).
    Parse(crate::frontend::FrontendError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::EntryNotFound(p) => write!(f, "entry file not found: {p}"),
            AnalyzeError::Parse(e) => write!(f, "entry file failed to parse: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Runs the string-taint analysis on `entry` within `vfs`.
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or does not
/// parse; problems in *included* files are demoted to warnings, like
/// the paper's tool.
pub fn analyze(vfs: &Vfs, entry: &str, config: &Config) -> Result<Analysis, AnalyzeError> {
    analyze_with(vfs, entry, config, &config.page_budget())
}

/// Budgeted form of [`analyze`]: grammar-level operations charge
/// `budget`, and on exhaustion degrade soundly (tainted-Σ* widening,
/// skipped refinement, unresolved include) with a record in
/// [`Analysis::degradations`].
///
/// The same budget should be passed on to the checker so one page has
/// one resource envelope.
pub fn analyze_with(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
    budget: &Budget,
) -> Result<Analysis, AnalyzeError> {
    let summaries = SummaryCache::new();
    analyze_cached(vfs, entry, config, budget, &summaries)
}

/// [`analyze_with`], sharing a caller-owned [`SummaryCache`] so the
/// AST→IR lowering of files reached by many pages (shared includes,
/// helper libraries) happens once per app instead of once per page.
///
/// The emitted grammar is identical to the uncached path — summaries
/// are path- and configuration-free IR, and every config-dependent
/// decision is replayed at emission.
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or does not
/// parse. Entry parse failures are never cached, so retrying after an
/// edit behaves identically to the uncached path.
pub fn analyze_cached(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
    budget: &Budget,
    summaries: &SummaryCache,
) -> Result<Analysis, AnalyzeError> {
    let mut em = Emitter::new(vfs, config, budget.clone(), summaries);
    if config.backward_slice {
        em.relevance = Some(relevance::compute(vfs, config));
    }
    let src = vfs
        .get(entry)
        .ok_or_else(|| AnalyzeError::EntryNotFound(entry.to_owned()))?;
    let summary = summaries
        .get_or_lower(em.frontends.for_path(entry), src, config)
        .map_err(AnalyzeError::Parse)?;
    let mut env = Env::new();
    em.cur_file = normalize(entry);
    em.cur_summary = summary.content_hash;
    em.files_analyzed += 1;
    em.inputs.insert(em.cur_file.clone());
    {
        let _span = strtaint_obs::Span::enter("emit", entry);
        em.register_functions(&summary.body);
        em.emit_stmts(&summary.body, &mut env);
    }
    Ok(em.into_analysis())
}
