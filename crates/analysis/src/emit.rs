//! IR → grammar emission (the back half of the staged pipeline).
//!
//! The [`Emitter`] walks a file's lowered IR with a flow-sensitive
//! [`Env`], producing grammar productions exactly as the original
//! single-pass builder did: assignments and concatenation become
//! productions (paper Fig. 5), control-flow joins become alternative
//! productions, loops become recursive productions closed after one
//! body pass, transducer applications become grammar images, and
//! refinements become grammar–automaton intersections (§3.1.2).
//! Everything configuration-dependent — sources, sinks, fetch models,
//! include overrides — is decided here, never at lowering, which is
//! what keeps [`crate::summary`] summaries shareable across pages.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use strtaint_automata::{Dfa, Fst};
use strtaint_grammar::budget::{Budget, BudgetExceeded, DegradeAction, Degradation};
use strtaint_grammar::intersect::intersect_with;
use strtaint_grammar::image::image_with;
use strtaint_grammar::{Cfg, NtId, Symbol, Taint};

use crate::builder::{Analysis, Hotspot, Provenance};
use crate::config::Config;
use crate::env::{Env, KEY_SEP};
use crate::frontend::FrontendSet;
use crate::ir::*;
use crate::relevance::Relevance;
use crate::sinks::SinkTable;
use crate::summary::SummaryCache;
use crate::vfs::Vfs;

/// Control flow outcome of a statement sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Falls through.
    Cont,
    /// Terminates (exit/return) — the branch's environment does not
    /// join back. This is what makes `if (!check($x)) exit;` refine
    /// `$x` on the fall-through path (crucial for Figure 2 precision).
    Term,
}

/// A registered user function or method: its summary IR plus the file
/// it was declared in (hotspots inside the body belong to that file).
#[derive(Debug, Clone)]
pub(crate) struct FnEntry {
    pub(crate) ir: Arc<FuncIr>,
    pub(crate) file: String,
    pub(crate) summary: u64,
}

pub(crate) struct Emitter<'a> {
    pub(crate) vfs: &'a Vfs,
    pub(crate) config: &'a Config,
    /// Policy-driven sink recognition (built once from the config's
    /// enabled-policy set and the `strtaint-policy` registry).
    pub(crate) sinks: SinkTable,
    pub(crate) cfg: Cfg,
    pub(crate) summaries: &'a SummaryCache,
    /// Enabled frontends + extension dispatch (entry and includes are
    /// lowered by whichever frontend claims their extension).
    pub(crate) frontends: FrontendSet,
    pub(crate) functions: HashMap<String, FnEntry>,
    /// Class methods, dispatched by bare method name (classless
    /// over-approximation; clashes merge conservatively by first
    /// registration).
    pub(crate) methods: HashMap<String, FnEntry>,
    pub(crate) hotspots: Vec<Hotspot>,
    pub(crate) echo_sinks: Vec<Hotspot>,
    pub(crate) warnings: Vec<String>,
    pub(crate) unmodeled: BTreeSet<String>,
    pub(crate) lit_cache: HashMap<Vec<u8>, NtId>,
    pub(crate) lang_cache: HashMap<&'static str, NtId>,
    pub(crate) any_nt: NtId,
    pub(crate) empty_nt: NtId,
    pub(crate) include_once: HashSet<String>,
    pub(crate) call_stack: Vec<String>,
    pub(crate) return_stack: Vec<Vec<NtId>>,
    pub(crate) declared_globals: Vec<HashSet<String>>,
    pub(crate) open_headers: Vec<NtId>,
    pub(crate) global_sets: HashMap<String, Vec<NtId>>,
    pub(crate) constants: HashMap<String, NtId>,
    pub(crate) cur_file: String,
    /// Content hash of the summary currently being emitted (IR
    /// provenance for hotspots).
    pub(crate) cur_summary: u64,
    pub(crate) files_analyzed: usize,
    /// Distinct files read so far (entry + resolved includes).
    pub(crate) inputs: BTreeSet<String>,
    pub(crate) layout: Option<Rc<Dfa>>,
    /// Shared resource budget for this page's grammar operations.
    pub(crate) budget: Budget,
    /// Sound precision losses from budget trips.
    pub(crate) degradations: Vec<Degradation>,
    /// Backward-slice facts (None when `Config::backward_slice` is off).
    pub(crate) relevance: Option<Relevance>,
    /// Relevance hints for the expression currently being evaluated;
    /// `true` (or empty stack) = may reach a query, keep precision.
    pub(crate) hint_stack: Vec<bool>,
}

/// Root variable of an environment key (`a␀k` → `a`, `o->p` → `o`).
pub(crate) fn root_var(key: &str) -> &str {
    key.split(KEY_SEP)
        .next()
        .unwrap_or(key)
        .split("->")
        .next()
        .unwrap_or(key)
}

impl<'a> Emitter<'a> {
    pub(crate) fn new(
        vfs: &'a Vfs,
        config: &'a Config,
        budget: Budget,
        summaries: &'a SummaryCache,
    ) -> Self {
        let mut cfg = Cfg::new();
        let any_nt = cfg.any_string_nt();
        let empty_nt = cfg.add_nonterminal("ε");
        cfg.add_production(empty_nt, vec![]);
        Emitter {
            vfs,
            config,
            sinks: SinkTable::new(config),
            cfg,
            summaries,
            frontends: FrontendSet::from_config(config),
            functions: HashMap::new(),
            methods: HashMap::new(),
            hotspots: Vec::new(),
            echo_sinks: Vec::new(),
            warnings: Vec::new(),
            unmodeled: BTreeSet::new(),
            lit_cache: HashMap::new(),
            lang_cache: HashMap::new(),
            any_nt,
            empty_nt,
            include_once: HashSet::new(),
            call_stack: Vec::new(),
            return_stack: Vec::new(),
            declared_globals: Vec::new(),
            open_headers: Vec::new(),
            global_sets: HashMap::new(),
            constants: HashMap::new(),
            cur_file: String::new(),
            cur_summary: 0,
            files_analyzed: 0,
            inputs: BTreeSet::new(),
            layout: None,
            budget,
            degradations: Vec::new(),
            relevance: None,
            hint_stack: Vec::new(),
        }
    }

    pub(crate) fn into_analysis(self) -> Analysis {
        Analysis {
            cfg: self.cfg,
            hotspots: self.hotspots,
            echo_sinks: self.echo_sinks,
            warnings: self.warnings,
            unmodeled: self.unmodeled,
            files_analyzed: self.files_analyzed,
            inputs: self.inputs,
            degradations: self.degradations,
        }
    }

    pub(crate) fn warn(&mut self, msg: impl Into<String>) {
        self.warnings.push(format!("{}: {}", self.cur_file, msg.into()));
    }

    /// Records a budget trip and the sound fallback applied at `what`.
    pub(crate) fn degrade(&mut self, err: BudgetExceeded, what: &str, action: DegradeAction) {
        let site = format!("{}@{}", what, self.cur_file);
        self.warn(format!("{what}: {err}; {action}"));
        self.degradations.push(Degradation {
            resource: err.resource,
            site,
            action,
        });
    }

    // ------------------------------------------------------ helpers

    pub(crate) fn literal_nt(&mut self, bytes: &[u8]) -> NtId {
        if let Some(&nt) = self.lit_cache.get(bytes) {
            return nt;
        }
        let name = format!("lit:{:.12}", String::from_utf8_lossy(bytes));
        let nt = self.cfg.add_nonterminal(name);
        self.cfg.add_literal_production(nt, bytes);
        self.lit_cache.insert(bytes.to_vec(), nt);
        nt
    }

    /// A nonterminal for a fixed regular "result language" such as
    /// numeric literals; cached per language.
    pub(crate) fn lang_nt(&mut self, key: &'static str) -> NtId {
        if let Some(&nt) = self.lang_cache.get(key) {
            return nt;
        }
        let nt = match key {
            "num" => {
                // -? digits (. digits)?
                let digits = self.cfg.add_nonterminal("digits");
                for b in b'0'..=b'9' {
                    self.cfg.add_production(digits, vec![Symbol::T(b)]);
                    self.cfg
                        .add_production(digits, vec![Symbol::T(b), Symbol::N(digits)]);
                }
                let num = self.cfg.add_nonterminal("NUM");
                self.cfg.add_production(num, vec![Symbol::N(digits)]);
                self.cfg
                    .add_production(num, vec![Symbol::T(b'-'), Symbol::N(digits)]);
                self.cfg.add_production(
                    num,
                    vec![Symbol::N(digits), Symbol::T(b'.'), Symbol::N(digits)],
                );
                self.cfg.add_production(
                    num,
                    vec![
                        Symbol::T(b'-'),
                        Symbol::N(digits),
                        Symbol::T(b'.'),
                        Symbol::N(digits),
                    ],
                );
                num
            }
            "hex" => self.charset_star_nt("HEX", |b| {
                b.is_ascii_digit() || (b'a'..=b'f').contains(&b)
            }),
            "b64" => self.charset_star_nt("B64", |b| {
                b.is_ascii_alphanumeric() || b == b'+' || b == b'/' || b == b'='
            }),
            "urlsafe" => self.charset_star_nt("URLSAFE", |b| {
                b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'%' | b'+')
            }),
            "bool" => {
                let nt = self.cfg.add_nonterminal("BOOL");
                self.cfg.add_production(nt, vec![]);
                self.cfg.add_production(nt, vec![Symbol::T(b'1')]);
                nt
            }
            _ => unreachable!("unknown language key {key}"),
        };
        self.lang_cache.insert(key, nt);
        nt
    }

    fn charset_star_nt(&mut self, name: &str, allow: impl Fn(u8) -> bool) -> NtId {
        let nt = self.cfg.add_nonterminal(name);
        self.cfg.add_production(nt, vec![]);
        for b in 0..=255u8 {
            if allow(b) {
                self.cfg.add_production(nt, vec![Symbol::T(b), Symbol::N(nt)]);
            }
        }
        nt
    }

    /// A fresh source nonterminal deriving Σ* with the given taint.
    pub(crate) fn source_nt(&mut self, name: String, taint: Taint) -> NtId {
        let nt = self.cfg.add_nonterminal(name);
        self.cfg.add_production(nt, vec![Symbol::N(self.any_nt)]);
        self.cfg.set_taint(nt, taint);
        nt
    }

    /// Union of taints of all nonterminals reachable from `nt`
    /// (walk proportional to the reachable subgraph, with early exit).
    pub(crate) fn reachable_taint(&self, nt: NtId) -> Taint {
        let mut seen: HashSet<NtId> = HashSet::new();
        let mut stack = vec![nt];
        seen.insert(nt);
        let mut t = Taint::NONE;
        while let Some(id) = stack.pop() {
            t = t.union(self.cfg.taint(id));
            if t.is_direct() && t.is_indirect() {
                break;
            }
            for rhs in self.cfg.productions(id) {
                for s in rhs {
                    if let Symbol::N(sub) = s {
                        if seen.insert(*sub) {
                            stack.push(*sub);
                        }
                    }
                }
            }
        }
        t
    }

    pub(crate) fn args_taint(&self, args: &[NtId]) -> Taint {
        let mut t = Taint::NONE;
        for &a in args {
            t = t.union(self.reachable_taint(a));
        }
        t
    }

    /// Σ* with the union of the given argument taints — the sound
    /// fallback result.
    pub(crate) fn any_with_taint(&mut self, name: &str, taint: Taint) -> NtId {
        if taint.is_empty() {
            return self.any_nt;
        }
        self.source_nt(format!("widened:{name}"), taint)
    }

    /// `true` if `nt` can reach a loop header whose back-productions
    /// are not yet closed; transducing or intersecting such a grammar
    /// would under-approximate, so callers must widen instead (this is
    /// the paper's "string operations in cycles must be approximated").
    pub(crate) fn reaches_open_header(&self, nt: NtId) -> bool {
        if self.open_headers.is_empty() {
            return false;
        }
        let mut seen: HashSet<NtId> = HashSet::new();
        let mut stack = vec![nt];
        seen.insert(nt);
        while let Some(id) = stack.pop() {
            if self.open_headers.contains(&id) {
                return true;
            }
            for rhs in self.cfg.productions(id) {
                for s in rhs {
                    if let Symbol::N(sub) = s {
                        if seen.insert(*sub) {
                            stack.push(*sub);
                        }
                    }
                }
            }
        }
        false
    }

    pub(crate) fn hint(&self) -> bool {
        self.hint_stack.last().copied().unwrap_or(true)
    }

    pub(crate) fn push_hint_for_lvalue(&mut self, key: &str) {
        // A context already known irrelevant stays irrelevant inside
        // callees (name-based relevance alone cannot distinguish call
        // sites of a shared helper).
        let h = self.hint()
            && match &self.relevance {
                None => true,
                Some(r) => r.var(root_var(key)),
            };
        self.hint_stack.push(h);
    }

    /// Applies a transducer to the grammar rooted at `nt`, splicing the
    /// image into the arena. Falls back to tainted Σ* inside open loops,
    /// in contexts the backward slice proves query-irrelevant,
    /// or when the operand grammar exceeds the configured size budget
    /// (chained replacements otherwise blow up multiplicatively — the
    /// effect the paper describes for Tiger PHP News System in §5.3).
    pub(crate) fn apply_fst(&mut self, nt: NtId, fst: &Fst, what: &str) -> NtId {
        if self.relevance.is_some() && !self.hint() {
            let t = self.reachable_taint(nt);
            return self.any_with_taint(what, t);
        }
        if self.reaches_open_header(nt) {
            let t = self.reachable_taint(nt);
            self.warn(format!("{what} applied to loop-carried value; widened"));
            return self.any_with_taint(what, t);
        }
        let cap = self.config.max_transducer_grammar;
        if self.cfg.count_reachable_productions(nt, cap) > cap {
            let t = self.reachable_taint(nt);
            self.warn(format!(
                "{what} operand grammar exceeds {cap} productions; widened"
            ));
            return self.any_with_taint(what, t);
        }
        let budget = self.budget.clone();
        match image_with(&self.cfg, nt, fst, &budget) {
            Ok((g2, r2)) => self.cfg.import_from(&g2, r2),
            Err(err) => {
                // Sound widening: Σ* with the operand's taint is a
                // superset of any transducer image of it.
                let t = self.reachable_taint(nt);
                self.degrade(err, what, DegradeAction::WidenedToAny);
                self.any_with_taint(what, t)
            }
        }
    }

    /// Intersects the grammar rooted at `nt` with a DFA, splicing the
    /// result into the arena. Inside open loops, returns `nt`
    /// unrefined (sound).
    pub(crate) fn intersect_nt(&mut self, nt: NtId, dfa: &Dfa, what: &str) -> NtId {
        if self.reaches_open_header(nt) {
            self.warn(format!("{what} refinement on loop-carried value skipped"));
            return nt;
        }
        let budget = self.budget.clone();
        match intersect_with(&self.cfg, nt, dfa, &budget) {
            Ok((g2, r2)) => self.cfg.import_from(&g2, r2),
            Err(err) => {
                // Sound: the unrefined language is a superset of the
                // intersection.
                self.degrade(err, what, DegradeAction::KeptUnrefined);
                nt
            }
        }
    }

    // ------------------------------------------- structure traversal

    pub(crate) fn register_functions(&mut self, stmts: &[IrStmt]) {
        for s in stmts {
            match s {
                IrStmt::DeclFunc(d) => {
                    let file = self.cur_file.clone();
                    let summary = self.cur_summary;
                    self.functions.entry(d.name.clone()).or_insert_with(|| FnEntry {
                        ir: Arc::clone(d),
                        file,
                        summary,
                    });
                }
                IrStmt::DeclClass(ms) => {
                    for m in ms {
                        let file = self.cur_file.clone();
                        let summary = self.cur_summary;
                        self.methods.entry(m.name.clone()).or_insert_with(|| FnEntry {
                            ir: Arc::clone(m),
                            file,
                            summary,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    pub(crate) fn emit_stmts(&mut self, stmts: &[IrStmt], env: &mut Env) -> Flow {
        for s in stmts {
            if self.emit_stmt(s, env) == Flow::Term {
                return Flow::Term;
            }
        }
        Flow::Cont
    }

    fn emit_stmt(&mut self, stmt: &IrStmt, env: &mut Env) -> Flow {
        match stmt {
            IrStmt::Eval(e) => {
                self.eval(e, env);
                Flow::Cont
            }
            IrStmt::Sink { args, span } => {
                if self.relevance.is_some() {
                    self.hint_stack.push(false);
                }
                for (a, arg_span) in args {
                    let nt = self.eval(a, env);
                    let file = self.cur_file.clone();
                    self.echo_sinks.push(Hotspot {
                        file,
                        span: *span,
                        label: "echo".to_owned(),
                        root: nt,
                        policy: "xss".to_owned(),
                        provenance: Provenance {
                            summary: self.cur_summary,
                            arg_span: Some(*arg_span),
                        },
                    });
                }
                if self.relevance.is_some() {
                    self.hint_stack.pop();
                }
                Flow::Cont
            }
            IrStmt::Nop => Flow::Cont,
            IrStmt::Block(body) => self.emit_stmts(body, env),
            IrStmt::If {
                cond,
                then,
                elifs,
                els,
            } => {
                self.eval(&cond.pre, env);
                let mut branches: Vec<Env> = Vec::new();
                let mut then_env = env.clone();
                self.apply_refine(&cond.refine, &mut then_env, true);
                if self.emit_stmts(then, &mut then_env) == Flow::Cont {
                    branches.push(then_env);
                }
                let mut rest = env.clone();
                self.apply_refine(&cond.refine, &mut rest, false);
                for (c, body) in elifs {
                    self.eval(&c.pre, &mut rest);
                    let mut b_env = rest.clone();
                    self.apply_refine(&c.refine, &mut b_env, true);
                    if self.emit_stmts(body, &mut b_env) == Flow::Cont {
                        branches.push(b_env);
                    }
                    self.apply_refine(&c.refine, &mut rest, false);
                }
                match els {
                    Some(body) => {
                        if self.emit_stmts(body, &mut rest) == Flow::Cont {
                            branches.push(rest);
                        }
                    }
                    None => branches.push(rest),
                }
                if branches.is_empty() {
                    return Flow::Term;
                }
                *env = Env::join_all(&mut self.cfg, &branches, self.empty_nt);
                Flow::Cont
            }
            IrStmt::Loop {
                init,
                cond,
                step,
                body,
                phis,
            } => {
                for e in init {
                    self.eval(e, env);
                }
                self.emit_loop(env, cond.as_ref(), body, step, phis);
                Flow::Cont
            }
            IrStmt::Foreach {
                subject,
                key,
                value,
                body,
                phis,
            } => {
                let elems = self.elements_of(subject, env);
                let subj_taint = self.reachable_taint(elems);
                if let Some(k) = key {
                    let key_nt = self.any_with_taint("foreach-key", subj_taint);
                    env.set(k.clone(), key_nt);
                }
                // The value variable is re-bound to an element on every
                // iteration — it is not loop-carried, so it gets no
                // widening header (bodies that *reassign* it are caught
                // by the assigned-variable pre-scan).
                env.set(value.clone(), elems);
                self.emit_loop(env, None, body, &[], phis);
                Flow::Cont
            }
            IrStmt::Switch {
                subject,
                subject_key,
                cases,
            } => {
                self.eval(subject, env);
                let mut branches: Vec<Env> = Vec::new();
                let mut has_default = false;
                for case in cases {
                    let mut c_env = env.clone();
                    match &case.label {
                        Some(l) => {
                            self.eval(&l.expr, &mut c_env);
                            if let (Some(key), Some(bytes)) = (subject_key, &l.lit) {
                                self.refine_to_literal(key, bytes, &mut c_env);
                            }
                        }
                        None => has_default = true,
                    }
                    if self.emit_stmts(&case.body, &mut c_env) == Flow::Cont {
                        branches.push(c_env);
                    }
                }
                if !has_default {
                    branches.push(env.clone());
                }
                if branches.is_empty() {
                    return Flow::Term;
                }
                *env = Env::join_all(&mut self.cfg, &branches, self.empty_nt);
                Flow::Cont
            }
            IrStmt::Return(v) => {
                let nt = match v {
                    Some(e) => self.eval(e, env),
                    None => self.empty_nt,
                };
                if let Some(frame) = self.return_stack.last_mut() {
                    frame.push(nt);
                }
                Flow::Term
            }
            IrStmt::Break | IrStmt::Continue => Flow::Cont,
            IrStmt::Exit(v) => {
                if let Some(e) = v {
                    self.eval(e, env);
                }
                Flow::Term
            }
            IrStmt::DeclFunc(d) => {
                let file = self.cur_file.clone();
                let summary = self.cur_summary;
                self.functions.entry(d.name.clone()).or_insert_with(|| FnEntry {
                    ir: Arc::clone(d),
                    file,
                    summary,
                });
                Flow::Cont
            }
            IrStmt::DeclClass(ms) => {
                for m in ms {
                    let file = self.cur_file.clone();
                    let summary = self.cur_summary;
                    self.methods.entry(m.name.clone()).or_insert_with(|| FnEntry {
                        ir: Arc::clone(m),
                        file,
                        summary,
                    });
                }
                Flow::Cont
            }
            IrStmt::Global(names) => {
                for n in names {
                    let sets = self.global_sets.get(n).cloned().unwrap_or_default();
                    let nt = match sets.as_slice() {
                        [] => self.empty_nt,
                        [one] => *one,
                        many => {
                            let j = self.cfg.add_nonterminal(format!("global:{n}"));
                            for &m in many {
                                self.cfg.add_production(j, vec![Symbol::N(m)]);
                            }
                            j
                        }
                    };
                    env.set(n.clone(), nt);
                    if let Some(declared) = self.declared_globals.last_mut() {
                        declared.insert(n.clone());
                    }
                }
                Flow::Cont
            }
            IrStmt::Unset(keys) => {
                for k in keys {
                    env.unset(k);
                }
                Flow::Cont
            }
            IrStmt::Include { kind, arg, line } => {
                self.handle_include(*kind, arg, *line, env);
                Flow::Cont
            }
        }
    }

    /// Emits a loop: creates header nonterminals for the φ-set
    /// (variables assigned in the body), runs one body pass, and closes
    /// the recursion with back-productions.
    fn emit_loop(
        &mut self,
        env: &mut Env,
        cond: Option<&Cond>,
        body: &[IrStmt],
        step: &[IrExpr],
        phis: &[String],
    ) {
        // Create headers.
        let mut headers: Vec<(String, NtId)> = Vec::new();
        for var in phis {
            let pre = env.get(var).unwrap_or(self.empty_nt);
            let h = self.cfg.add_nonterminal(format!("{var}@loop"));
            self.cfg.add_production(h, vec![Symbol::N(pre)]);
            env.set(var.clone(), h);
            headers.push((var.clone(), h));
            self.open_headers.push(h);
        }
        if let Some(c) = cond {
            self.eval(&c.pre, env);
        }
        let mut body_env = env.clone();
        if let Some(c) = cond {
            self.apply_refine(&c.refine, &mut body_env, true);
        }
        let flow = self.emit_stmts(body, &mut body_env);
        if flow == Flow::Cont {
            for e in step {
                self.eval(e, &mut body_env);
            }
        }
        // Close the recursion.
        for (var, h) in &headers {
            let end = body_env.get(var).unwrap_or(self.empty_nt);
            if end != *h {
                self.cfg.add_production(*h, vec![Symbol::N(end)]);
            }
        }
        for _ in &headers {
            self.open_headers.pop();
        }
        // After the loop the header binding stands for "any number of
        // iterations"; refine with the negated condition.
        if let Some(c) = cond {
            self.apply_refine(&c.refine, env, false);
        }
    }

    pub(crate) fn elements_of(&mut self, subject: &IrExpr, env: &mut Env) -> NtId {
        let nt = self.eval(subject, env);
        if let IrExpr::Var(name) = subject {
            let keys = env.element_keys(name);
            if !keys.is_empty() {
                let mut parts: Vec<NtId> =
                    keys.iter().filter_map(|k| env.get(k)).collect();
                if env.get(name).is_some() {
                    parts.push(nt);
                }
                parts.sort();
                parts.dedup();
                if parts.len() == 1 {
                    return parts[0];
                }
                let j = self.cfg.add_nonterminal(format!("elems:{name}"));
                for p in parts {
                    self.cfg.add_production(j, vec![Symbol::N(p)]);
                }
                return j;
            }
        }
        nt
    }

    pub(crate) fn numeric_result(&mut self, taint: Taint) -> NtId {
        let num = self.lang_nt("num");
        if taint.is_empty() {
            return num;
        }
        let nt = self.cfg.add_nonterminal("num†");
        self.cfg.add_production(nt, vec![Symbol::N(num)]);
        self.cfg.set_taint(nt, taint);
        nt
    }

    pub(crate) fn wrap_lang(&mut self, lang: NtId, taint: Taint, name: &str) -> NtId {
        if taint.is_empty() {
            return lang;
        }
        let nt = self.cfg.add_nonterminal(name);
        self.cfg.add_production(nt, vec![Symbol::N(lang)]);
        self.cfg.set_taint(nt, taint);
        nt
    }

    /// Binds `value` to the environment key of an assignment target
    /// (`None` = unsupported lvalue, warned and ignored).
    pub(crate) fn assign_lvalue_key(&mut self, key: Option<&str>, value: NtId, env: &mut Env) {
        let Some(key) = key else {
            self.warn("assignment to unsupported lvalue ignored");
            return;
        };
        // `$a[] = v` / `$a[$dyn] = v` accumulate rather than replace.
        if key.ends_with(&format!("{KEY_SEP}*")) {
            let prior = env.get(key);
            let nt = match prior {
                Some(p) if p != value => {
                    let j = self.cfg.add_nonterminal("accum");
                    self.cfg.add_production(j, vec![Symbol::N(p)]);
                    self.cfg.add_production(j, vec![Symbol::N(value)]);
                    j
                }
                _ => value,
            };
            env.set(key.to_owned(), nt);
        } else {
            env.set(key.to_owned(), value);
        }
        // Record global bindings for `global` declarations in functions.
        let at_top = self.call_stack.is_empty();
        let declared = self
            .declared_globals
            .last()
            .is_some_and(|d| d.contains(root_var(key)));
        if at_top || declared {
            self.global_sets.entry(key.to_owned()).or_default().push(value);
        }
    }

    // Include handling (layout intersection, overrides, once-guards,
    // and the path-policy include sink) lives in `crate::emit_include`.
}
