//! Policy-driven sink recognition.
//!
//! Lowering used to special-case `mysql_query`/`echo`; now every sink
//! decision is a lookup in a [`SinkTable`] built once per analysis
//! from the enabled policies in [`Config::policies`] and the
//! `strtaint-policy` registry. The SQL policy keeps sourcing its live
//! sink names from `Config::{hotspot_functions,hotspot_methods}` (they
//! are user-configurable and part of the config fingerprint); the
//! data-defined policies contribute their registry sink tables.

use std::collections::HashMap;

use crate::config::Config;

/// Which policy a recognized sink call belongs to and which argument
/// is the sink argument.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SinkEntry {
    pub policy: &'static str,
    pub arg: usize,
}

/// Per-analysis sink lookup table.
#[derive(Debug, Clone, Default)]
pub(crate) struct SinkTable {
    functions: HashMap<String, SinkEntry>,
    methods: HashMap<String, SinkEntry>,
    /// `Some(policy)` when a policy claims `include`/`require` sites
    /// as sinks (the path-traversal policy).
    pub(crate) include_policy: Option<&'static str>,
    /// Whether `preg_replace` with an `/e` pattern modifier is an
    /// eval-class sink for its subject argument.
    pub(crate) preg_replace_e: Option<&'static str>,
}

impl SinkTable {
    pub(crate) fn new(config: &Config) -> Self {
        let mut t = SinkTable::default();
        for p in strtaint_policy::builtin() {
            if !config.policies.iter().any(|id| id == p.id) {
                continue;
            }
            if p.id == strtaint_policy::SQL_POLICY {
                // Live names from the config, not the registry copy.
                for f in &config.hotspot_functions {
                    t.functions
                        .insert(f.clone(), SinkEntry { policy: p.id, arg: 0 });
                }
                for m in &config.hotspot_methods {
                    t.methods
                        .insert(m.clone(), SinkEntry { policy: p.id, arg: 0 });
                }
                continue;
            }
            for &(name, arg) in p.sink_functions {
                // First policy to claim a name wins; SQL ran first.
                t.functions
                    .entry(name.to_string())
                    .or_insert(SinkEntry { policy: p.id, arg });
            }
            for &(name, arg) in p.sink_methods {
                t.methods
                    .entry(name.to_string())
                    .or_insert(SinkEntry { policy: p.id, arg });
            }
            for &c in p.sink_constructs {
                match c {
                    "include" => t.include_policy = Some(p.id),
                    "preg_replace/e" => t.preg_replace_e = Some(p.id),
                    _ => {}
                }
            }
        }
        t
    }

    /// Looks up a call by bare name; `method` selects the `->name(..)`
    /// table. Returns an owned entry so callers can keep mutating the
    /// emitter while holding it.
    pub(crate) fn lookup(&self, method: bool, bare: &str) -> Option<SinkEntry> {
        if method {
            self.methods.get(bare).copied()
        } else {
            self.functions.get(bare).copied()
        }
    }
}

/// `true` when a PCRE pattern literal (delimiter-wrapped, e.g.
/// `/x/e` or `#x#ie`) carries the `e` (evaluate-replacement) modifier.
pub(crate) fn pattern_has_e_modifier(pat: &[u8]) -> bool {
    let Some(&delim) = pat.first() else {
        return false;
    };
    // Bracket-style delimiters close with the matching bracket.
    let close = match delim {
        b'(' => b')',
        b'[' => b']',
        b'{' => b'}',
        b'<' => b'>',
        d => d,
    };
    let Some(end) = pat.iter().rposition(|&b| b == close) else {
        return false;
    };
    end > 0 && pat[end + 1..].contains(&b'e')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_recognizes_only_sql_sinks() {
        let t = SinkTable::new(&Config::default());
        assert_eq!(t.lookup(false, "mysql_query").map(|e| e.policy), Some("sql"));
        assert_eq!(t.lookup(true, "query").map(|e| e.policy), Some("sql"));
        assert!(t.lookup(false, "system").is_none());
        assert!(t.lookup(false, "eval").is_none());
        assert!(t.include_policy.is_none());
        assert!(t.preg_replace_e.is_none());
    }

    #[test]
    fn enabled_policies_arm_their_sink_tables() {
        let mut c = Config::default();
        c.policies = vec!["sql".into(), "shell".into(), "path".into(), "eval".into()];
        let t = SinkTable::new(&c);
        assert_eq!(t.lookup(false, "system").map(|e| e.policy), Some("shell"));
        assert_eq!(
            t.lookup(false, "file_get_contents").map(|e| e.policy),
            Some("path")
        );
        assert_eq!(t.lookup(false, "eval").map(|e| e.policy), Some("eval"));
        // create_function's code body is its *second* argument.
        assert_eq!(t.lookup(false, "create_function").map(|e| e.arg), Some(1));
        assert_eq!(t.include_policy, Some("path"));
        assert_eq!(t.preg_replace_e, Some("eval"));
        // SQL sinks still come from the config lists.
        assert_eq!(t.lookup(false, "mysql_query").map(|e| e.policy), Some("sql"));
    }

    #[test]
    fn e_modifier_detection() {
        assert!(pattern_has_e_modifier(b"/x/e"));
        assert!(pattern_has_e_modifier(b"/x/ie"));
        assert!(pattern_has_e_modifier(b"#a.b#e"));
        assert!(pattern_has_e_modifier(b"{a}e"));
        assert!(!pattern_has_e_modifier(b"/x/i"));
        assert!(!pattern_has_e_modifier(b"/e/"));
        assert!(!pattern_has_e_modifier(b""));
        assert!(!pattern_has_e_modifier(b"/"));
    }
}
