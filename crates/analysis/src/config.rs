//! Analyzer configuration.

use std::collections::HashMap;
use std::time::Duration;

/// Configuration of sources, sinks, and analysis limits.
///
/// The defaults mirror the paper's setup: GET/POST/cookie superglobals
/// are *direct* sources, database fetch results and designated globals
/// (like Utopia News Pro's `$USER`) are *indirect* sources, and
/// `$DB->query(...)`-style calls are hotspots.
#[derive(Debug, Clone)]
pub struct Config {
    /// Superglobal array names whose elements are directly
    /// user-controlled.
    pub direct_superglobals: Vec<String>,
    /// Superglobal / global array names whose elements are indirectly
    /// user-controlled (populated from the database or session).
    pub indirect_globals: Vec<String>,
    /// Free function names that send their first argument to the
    /// database.
    pub hotspot_functions: Vec<String>,
    /// Method names (on any object) that send their first argument to
    /// the database.
    pub hotspot_methods: Vec<String>,
    /// Method/function names whose result is a row fetched from the
    /// database (an indirect source).
    pub fetch_functions: Vec<String>,
    /// Enabled policy ids (see `strtaint-policy`): which vulnerability
    /// classes sink recognition and checking run for. The default is
    /// `["sql"]` — the paper's SQLCIV analysis, with the sink tables
    /// sourced from `hotspot_functions`/`hotspot_methods` above. Adding
    /// `"shell"`, `"path"`, or `"eval"` arms the corresponding registry
    /// sink tables; `"xss"` routes `echo` sinks through the XSS checker
    /// in multi-policy drivers. Part of [`Config::fingerprint`]: a
    /// cached verdict can never be replayed under a different policy
    /// selection.
    pub policies: Vec<String>,
    /// Manual resolutions for dynamic includes the layout intersection
    /// cannot settle (the paper needed two of these for e107): maps the
    /// include-site label `file:line` to the list of files to include.
    pub include_overrides: HashMap<String, Vec<String>>,
    /// Maximum user-function inlining depth before widening to Σ*.
    pub max_call_depth: usize,
    /// Maximum number of include files expanded from one dynamic
    /// include site.
    pub max_include_fanout: usize,
    /// Enable the backward query-relevance slice (paper §7 future
    /// work): transducer images applied in contexts that cannot reach a
    /// query hotspot are widened to tainted Σ* instead of being
    /// computed. Sound; speeds up display-heavy code (the Tiger forum
    /// effect) at the cost of `echo` language precision — leave off
    /// when running the XSS checker.
    pub backward_slice: bool,
    /// Size budget (productions) for a transducer operand grammar;
    /// larger operands are widened to tainted Σ* with a warning. Bounds
    /// the multiplicative blow-up of chained `str_replace` calls (paper
    /// §5.3, the Tiger PHP News System effect).
    pub max_transducer_grammar: usize,
    /// Wall-clock deadline for analyzing and checking one page. `None`
    /// = unlimited. On expiry, in-flight grammar operations degrade
    /// soundly (widening / unverified findings — never a silent
    /// "verified").
    pub timeout: Option<Duration>,
    /// Step-fuel budget (worklist pops, Earley items) for one page.
    /// `None` = unlimited. Exhaustion degrades exactly like `timeout`.
    pub fuel: Option<u64>,
    /// Enabled frontend ids, in priority order (see
    /// [`crate::FrontendSet`]). PHP is always available as the
    /// fallback even when not listed; unknown names are ignored. The
    /// default enables both shipped frontends: `["php", "tpl"]`.
    pub frontends: Vec<String>,
    /// Extra file-extension → frontend-id mappings, overriding the
    /// frontends' default extension claims (e.g. `"html" → "tpl"`).
    /// Extensions are matched case-insensitively, without the dot.
    pub extension_overrides: HashMap<String, String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            direct_superglobals: ["_GET", "_POST", "_REQUEST", "_COOKIE", "_SERVER", "HTTP_GET_VARS", "HTTP_POST_VARS", "HTTP_COOKIE_VARS"]
                .map(String::from)
                .to_vec(),
            indirect_globals: ["_SESSION", "USER"].map(String::from).to_vec(),
            hotspot_functions: ["mysql_query", "mysqli_query", "mysql_db_query", "pg_query", "sqlite_query", "db_query"]
                .map(String::from)
                .to_vec(),
            // `prepare` receives the query template; `execute` receives bound
            // parameters, which placeholders keep out of the SQL syntax, so
            // it is deliberately NOT a hotspot.
            hotspot_methods: ["query", "sql_query", "prepare"].map(String::from).to_vec(),
            fetch_functions: [
                "mysql_fetch_array",
                "mysql_fetch_assoc",
                "mysql_fetch_row",
                "mysql_fetch_object",
                "mysql_result",
                "fetch",
                "fetch_array",
                "fetch_assoc",
                "fetch_row",
                "fetchrow",
                "sql_fetch_array",
                "sql_fetchrow",
            ]
            .map(String::from)
            .to_vec(),
            policies: vec!["sql".to_string()],
            include_overrides: HashMap::new(),
            max_call_depth: 8,
            max_include_fanout: 64,
            backward_slice: false,
            max_transducer_grammar: 100_000,
            timeout: None,
            fuel: None,
            frontends: ["php", "tpl"].map(String::from).to_vec(),
            extension_overrides: HashMap::new(),
        }
    }
}

impl Config {
    /// Builds the per-page [`strtaint_grammar::Budget`] these limits
    /// describe. The deadline clock starts now, so call this once per
    /// page, right before analysis begins.
    pub fn page_budget(&self) -> strtaint_grammar::Budget {
        strtaint_grammar::Budget::new(self.timeout, self.fuel, None)
    }

    /// Hashes **every** field that can influence an analysis result —
    /// sources, sinks, include overrides, inlining limits, budgets.
    /// This is the whole-config fingerprint the analysis daemon keys
    /// cached verdicts on (coarser than
    /// [`crate::summary::config_fingerprint`], which covers only the
    /// fields lowering could observe): two configs with equal
    /// fingerprints produce identical reports for identical inputs, so
    /// a verdict may only be replayed when the fingerprint matches.
    ///
    /// The hash is [`std::collections::hash_map::DefaultHasher`],
    /// which is deterministic across processes but not guaranteed
    /// stable across Rust releases — acceptable because every consumer
    /// also keys on the engine version and treats mismatches as cache
    /// misses, never as errors.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let mut h = DefaultHasher::new();
        self.hash_replay_fields(&mut h);
        // Frontend selection: which languages are enabled, how
        // extensions dispatch, and each enabled frontend's lowering
        // fingerprint (so a lowering-semantics bump invalidates
        // whole-config consumers too).
        self.frontends.hash(&mut h);
        let mut exts: Vec<(&String, &String)> = self.extension_overrides.iter().collect();
        exts.sort();
        exts.hash(&mut h);
        for f in crate::frontend::FrontendSet::from_config(self).all() {
            f.id().hash(&mut h);
            f.fingerprint().hash(&mut h);
        }
        h.finish()
    }

    /// Like [`Config::fingerprint`], but **excluding** frontend
    /// selection (`frontends` / `extension_overrides` / lowering
    /// fingerprints). The daemon keys cached page verdicts on this so
    /// that flipping the extension map recomputes only the pages whose
    /// dependencies actually dispatch differently — each verdict
    /// carries per-dependency frontend evidence that freshness
    /// validation checks against the live
    /// [`FrontendSet`](crate::FrontendSet) instead.
    pub fn replay_fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;

        let mut h = DefaultHasher::new();
        self.hash_replay_fields(&mut h);
        h.finish()
    }

    fn hash_replay_fields(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;

        self.direct_superglobals.hash(h);
        self.indirect_globals.hash(h);
        self.hotspot_functions.hash(h);
        self.hotspot_methods.hash(h);
        self.fetch_functions.hash(h);
        self.policies.hash(h);
        let mut overrides: Vec<(&String, &Vec<String>)> =
            self.include_overrides.iter().collect();
        overrides.sort();
        overrides.hash(h);
        self.max_call_depth.hash(h);
        self.max_include_fanout.hash(h);
        self.backward_slice.hash(h);
        self.max_transducer_grammar.hash(h);
        self.timeout.hash(h);
        self.fuel.hash(h);
    }
}

impl Config {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Config::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_every_analysis_knob() {
        let base = Config::default();
        assert_eq!(base.fingerprint(), Config::default().fingerprint());

        let mut c = Config::default();
        c.hotspot_methods.push("exec_sql".into());
        assert_ne!(base.fingerprint(), c.fingerprint());

        let mut c = Config::default();
        c.fuel = Some(1000);
        assert_ne!(base.fingerprint(), c.fingerprint());

        let mut c = Config::default();
        c.backward_slice = true;
        assert_ne!(base.fingerprint(), c.fingerprint());

        let mut c = Config::default();
        c.include_overrides
            .insert("a.php:3".into(), vec!["lib.php".into()]);
        assert_ne!(base.fingerprint(), c.fingerprint());

        // Flipping the enabled-policy set must invalidate cached
        // verdicts: shell findings are not SQL findings.
        let mut c = Config::default();
        c.policies.push("shell".into());
        assert_ne!(base.fingerprint(), c.fingerprint());

        let mut c = Config::default();
        c.policies = vec!["shell".into(), "path".into(), "eval".into()];
        assert_ne!(base.fingerprint(), c.fingerprint());

        // Frontend selection is part of the whole-config fingerprint…
        let mut c = Config::default();
        c.frontends = vec!["php".into()];
        assert_ne!(base.fingerprint(), c.fingerprint());

        let mut c = Config::default();
        c.extension_overrides.insert("html".into(), "tpl".into());
        assert_ne!(base.fingerprint(), c.fingerprint());
    }

    #[test]
    fn replay_fingerprint_ignores_frontend_selection() {
        let base = Config::default();
        let mut c = Config::default();
        c.frontends = vec!["php".into()];
        c.extension_overrides.insert("html".into(), "tpl".into());
        // Verdict replay keys stay stable across extension-map flips;
        // freshness is decided per-dependency from frontend evidence.
        assert_eq!(base.replay_fingerprint(), c.replay_fingerprint());

        // …but every analysis-observable knob still changes it.
        let mut c = Config::default();
        c.policies.push("shell".into());
        assert_ne!(base.replay_fingerprint(), c.replay_fingerprint());
    }

    #[test]
    fn defaults_cover_paper_sources() {
        let c = Config::default();
        assert!(c.direct_superglobals.iter().any(|s| s == "_GET"));
        assert!(c.indirect_globals.iter().any(|s| s == "USER"));
        assert!(c.hotspot_methods.iter().any(|s| s == "query"));
        assert!(c.max_call_depth > 0);
    }
}
