//! Backward query-relevance analysis — the optimization the paper
//! proposes in §5.3/§7: "add a backward dataflow analysis to prevent
//! it from analyzing complex string expressions that do not influence
//! database queries, and refrain from analyzing the rest."
//!
//! A quick name-based whole-program fixpoint computes an
//! **over-approximation** of the variable and function names whose
//! values can reach a query hotspot. The string-taint analysis then
//! widens expensive transducer images applied in irrelevant contexts
//! (e.g. BBCode markup chains feeding `echo`) to tainted Σ* — sound by
//! construction, since widening only ever grows languages — while
//! query-relevant sanitizers stay precise.
//!
//! Trade-off: display-only languages become Σ*, so pair this with the
//! SQL checker, not the XSS checker.

use std::collections::{HashMap, HashSet};

use strtaint_php::ast::*;
use strtaint_php::parse;

use crate::config::Config;
use crate::vfs::Vfs;

/// The computed relevance facts.
#[derive(Debug, Clone, Default)]
pub struct Relevance {
    /// Variable names (bare, scope-insensitive) that may influence a
    /// query.
    pub vars: HashSet<String>,
    /// Function names whose results may influence a query.
    pub functions: HashSet<String>,
}

impl Relevance {
    /// Returns `true` if a variable name may influence a query.
    pub fn var(&self, name: &str) -> bool {
        self.vars.contains(name)
    }
}

#[derive(Default)]
struct Facts {
    /// lhs root name → (rhs variable names, rhs called functions).
    assigns: Vec<(String, HashSet<String>, HashSet<String>)>,
    /// function name → (return-expression names, calls, param names).
    functions: HashMap<String, (HashSet<String>, HashSet<String>, Vec<String>)>,
    /// Names/calls occurring in hotspot arguments.
    seed_vars: HashSet<String>,
    seed_fns: HashSet<String>,
}

/// Computes the relevance over-approximation for a whole project.
///
/// All files in the VFS are scanned (any of them might be included);
/// files that fail to parse contribute nothing, which is safe because
/// relevance only *adds* precision — anything not proven relevant is
/// widened to tainted Σ*. Non-PHP files (template frontends) are
/// skipped the same way: their variables simply stay widened, which
/// is why `Config::backward_slice` is documented as a PHP-tree
/// optimization.
pub fn compute(vfs: &Vfs, config: &Config) -> Relevance {
    let frontends = crate::frontend::FrontendSet::from_config(config);
    let mut facts = Facts::default();
    for path in vfs.paths() {
        if frontends.for_path(path).id() != "php" {
            continue;
        }
        if let Some(src) = vfs.get(path) {
            if let Ok(file) = parse(src) {
                scan_stmts(&file.stmts, None, &mut facts, config);
            }
        }
    }
    // Fixpoint.
    let mut vars = facts.seed_vars.clone();
    let mut fns = facts.seed_fns.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for (lhs, names, calls) in &facts.assigns {
            if vars.contains(lhs) {
                for n in names {
                    changed |= vars.insert(n.clone());
                }
                for f in calls {
                    changed |= fns.insert(f.clone());
                }
            }
        }
        let relevant_fns: Vec<String> = fns.iter().cloned().collect();
        for f in relevant_fns {
            if let Some((names, calls, params)) = facts.functions.get(&f) {
                for n in names {
                    changed |= vars.insert(n.clone());
                }
                for c in calls.clone() {
                    changed |= fns.insert(c);
                }
                for p in params {
                    changed |= vars.insert(p.clone());
                }
            }
        }
    }
    Relevance {
        vars,
        functions: fns,
    }
}

fn scan_stmts(stmts: &[Stmt], cur_fn: Option<&str>, facts: &mut Facts, config: &Config) {
    for s in stmts {
        scan_stmt(s, cur_fn, facts, config);
    }
}

fn scan_stmt(s: &Stmt, cur_fn: Option<&str>, facts: &mut Facts, config: &Config) {
    match &s.kind {
        StmtKind::Expr(e) | StmtKind::Exit(Some(e)) => scan_expr(e, cur_fn, facts, config),
        StmtKind::Echo(es) | StmtKind::Unset(es) => {
            for e in es {
                scan_expr(e, cur_fn, facts, config);
            }
        }
        StmtKind::If {
            cond,
            then,
            elifs,
            els,
        } => {
            scan_expr(cond, cur_fn, facts, config);
            scan_stmts(then, cur_fn, facts, config);
            for (c, b) in elifs {
                scan_expr(c, cur_fn, facts, config);
                scan_stmts(b, cur_fn, facts, config);
            }
            if let Some(b) = els {
                scan_stmts(b, cur_fn, facts, config);
            }
        }
        StmtKind::While { cond, body } => {
            scan_expr(cond, cur_fn, facts, config);
            scan_stmts(body, cur_fn, facts, config);
        }
        StmtKind::DoWhile { body, cond } => {
            scan_stmts(body, cur_fn, facts, config);
            scan_expr(cond, cur_fn, facts, config);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            for e in init.iter().chain(step) {
                scan_expr(e, cur_fn, facts, config);
            }
            if let Some(c) = cond {
                scan_expr(c, cur_fn, facts, config);
            }
            scan_stmts(body, cur_fn, facts, config);
        }
        StmtKind::Foreach {
            subject,
            key,
            value,
            body,
        } => {
            // foreach binds value/key from the subject: treat as
            // assignments value := subject.
            let mut names = HashSet::new();
            let mut calls = HashSet::new();
            expr_names(subject, &mut names, &mut calls);
            if let Some(k) = key {
                facts
                    .assigns
                    .push((k.clone(), names.clone(), calls.clone()));
            }
            facts.assigns.push((value.clone(), names, calls));
            scan_expr(subject, cur_fn, facts, config);
            scan_stmts(body, cur_fn, facts, config);
        }
        StmtKind::Switch { subject, cases } => {
            scan_expr(subject, cur_fn, facts, config);
            for (l, b) in cases {
                if let Some(l) = l {
                    scan_expr(l, cur_fn, facts, config);
                }
                scan_stmts(b, cur_fn, facts, config);
            }
        }
        StmtKind::Return(Some(e)) => {
            scan_expr(e, cur_fn, facts, config);
            if let Some(f) = cur_fn {
                let entry = facts
                    .functions
                    .entry(f.to_owned())
                    .or_default();
                expr_names(e, &mut entry.0, &mut entry.1);
            }
        }
        StmtKind::FuncDecl(d) => {
            let entry = facts.functions.entry(d.name.clone()).or_default();
            entry.2 = d.params.iter().map(|p| p.name.clone()).collect();
            let name = d.name.clone();
            scan_stmts(&d.body, Some(&name), facts, config);
        }
        StmtKind::ClassDecl(c) => {
            for d in &c.methods {
                let entry = facts.functions.entry(d.name.clone()).or_default();
                entry.2 = d.params.iter().map(|p| p.name.clone()).collect();
                let name = d.name.clone();
                scan_stmts(&d.body, Some(&name), facts, config);
            }
        }
        StmtKind::Include { arg, .. } => scan_expr(arg, cur_fn, facts, config),
        StmtKind::Block(b) => scan_stmts(b, cur_fn, facts, config),
        _ => {}
    }
}

fn scan_expr(e: &Expr, cur_fn: Option<&str>, facts: &mut Facts, config: &Config) {
    match &e.kind {
        ExprKind::Assign(lhs, _, rhs) => {
            if let Some(root) = root_name(lhs) {
                let mut names = HashSet::new();
                let mut calls = HashSet::new();
                expr_names(rhs, &mut names, &mut calls);
                facts.assigns.push((root, names, calls));
            }
            scan_expr(rhs, cur_fn, facts, config);
        }
        ExprKind::Call(name, args) => {
            if config.hotspot_functions.iter().any(|f| f == name) {
                if let Some(q) = args.first() {
                    expr_names(q, &mut facts.seed_vars, &mut facts.seed_fns);
                }
            }
            for a in args {
                scan_expr(a, cur_fn, facts, config);
            }
        }
        ExprKind::MethodCall(obj, m, args) => {
            if config.hotspot_methods.iter().any(|f| f == m) {
                if let Some(q) = args.first() {
                    expr_names(q, &mut facts.seed_vars, &mut facts.seed_fns);
                }
            }
            scan_expr(obj, cur_fn, facts, config);
            for a in args {
                scan_expr(a, cur_fn, facts, config);
            }
        }
        ExprKind::Binary(_, a, b) => {
            scan_expr(a, cur_fn, facts, config);
            scan_expr(b, cur_fn, facts, config);
        }
        ExprKind::Unary(_, a)
        | ExprKind::Suppress(a)
        | ExprKind::Empty(a)
        | ExprKind::Cast(_, a) => scan_expr(a, cur_fn, facts, config),
        ExprKind::Ternary(c, t, f) => {
            scan_expr(c, cur_fn, facts, config);
            if let Some(t) = t {
                scan_expr(t, cur_fn, facts, config);
            }
            scan_expr(f, cur_fn, facts, config);
        }
        ExprKind::Index(b, i) => {
            scan_expr(b, cur_fn, facts, config);
            if let Some(i) = i {
                scan_expr(i, cur_fn, facts, config);
            }
        }
        ExprKind::Prop(b, _) => scan_expr(b, cur_fn, facts, config),
        ExprKind::Isset(args) => {
            for a in args {
                scan_expr(a, cur_fn, facts, config);
            }
        }
        ExprKind::Array(items) => {
            for (k, v) in items {
                if let Some(k) = k {
                    scan_expr(k, cur_fn, facts, config);
                }
                scan_expr(v, cur_fn, facts, config);
            }
        }
        ExprKind::IncDec { target, .. } => scan_expr(target, cur_fn, facts, config),
        ExprKind::New(_, args) => {
            for a in args {
                scan_expr(a, cur_fn, facts, config);
            }
        }
        _ => {}
    }
}

fn root_name(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Var(v) => Some(v.clone()),
        ExprKind::Index(b, _) | ExprKind::Prop(b, _) => root_name(b),
        _ => None,
    }
}

/// Collects every variable name and called function name in an
/// expression.
pub fn expr_names(e: &Expr, names: &mut HashSet<String>, calls: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::Var(v) => {
            names.insert(v.clone());
        }
        ExprKind::Interp(parts) => {
            for p in parts {
                match p {
                    strtaint_php::StrPart::Lit(_) => {}
                    strtaint_php::StrPart::Var(v)
                    | strtaint_php::StrPart::Index(v, _)
                    | strtaint_php::StrPart::Prop(v, _) => {
                        names.insert(v.clone());
                    }
                }
            }
        }
        ExprKind::Index(b, i) => {
            expr_names(b, names, calls);
            if let Some(i) = i {
                expr_names(i, names, calls);
            }
        }
        ExprKind::Prop(b, _) => expr_names(b, names, calls),
        ExprKind::Binary(_, a, b) => {
            expr_names(a, names, calls);
            expr_names(b, names, calls);
        }
        ExprKind::Unary(_, a) | ExprKind::Suppress(a) | ExprKind::Empty(a) => {
            expr_names(a, names, calls)
        }
        ExprKind::Cast(_, a) => expr_names(a, names, calls),
        ExprKind::Ternary(c, t, f) => {
            expr_names(c, names, calls);
            if let Some(t) = t {
                expr_names(t, names, calls);
            }
            expr_names(f, names, calls);
        }
        ExprKind::Call(f, args) => {
            calls.insert(f.clone());
            for a in args {
                expr_names(a, names, calls);
            }
        }
        ExprKind::MethodCall(obj, _, args) => {
            expr_names(obj, names, calls);
            for a in args {
                expr_names(a, names, calls);
            }
        }
        ExprKind::Assign(lhs, _, rhs) => {
            expr_names(lhs, names, calls);
            expr_names(rhs, names, calls);
        }
        ExprKind::Array(items) => {
            for (k, v) in items {
                if let Some(k) = k {
                    expr_names(k, names, calls);
                }
                expr_names(v, names, calls);
            }
        }
        ExprKind::Isset(args) => {
            for a in args {
                expr_names(a, names, calls);
            }
        }
        ExprKind::IncDec { target, .. } => expr_names(target, names, calls),
        ExprKind::New(_, args) => {
            for a in args {
                expr_names(a, names, calls);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relevance(src: &str) -> Relevance {
        let mut vfs = Vfs::new();
        vfs.add("p.php", src);
        compute(&vfs, &Config::default())
    }

    #[test]
    fn direct_hotspot_arg_is_relevant() {
        let r = relevance(r#"<?php $q = "SELECT " . $a; $DB->query($q); $b = $c;"#);
        assert!(r.var("q"));
        assert!(r.var("a"), "flows into q");
        assert!(!r.var("b") && !r.var("c"), "b/c never reach a query");
    }

    #[test]
    fn wrapper_function_params_are_relevant() {
        let r = relevance(
            r#"<?php
function clean($x) { return addslashes($x); }
$v = clean($_POST['v']);
$DB->query("SELECT * FROM t WHERE v='$v'");
$junk = clean($_POST['other']);
echo $junk;
"#,
        );
        assert!(r.var("v"));
        assert!(r.functions.contains("clean"));
        // Name-based over-approximation: the param `x` is relevant, so
        // transducers inside `clean` stay precise for every call.
        assert!(r.var("x"));
    }

    #[test]
    fn display_only_chains_are_irrelevant() {
        let r = relevance(
            r#"<?php
$pv = str_replace('[b]', '<b>', $_POST['preview']);
echo $pv;
$id = intval($_GET['id']);
$DB->query("SELECT * FROM t WHERE id=$id");
"#,
        );
        assert!(!r.var("pv"), "pv feeds echo only");
        assert!(r.var("id"));
    }

    #[test]
    fn foreach_subject_flows() {
        let r = relevance(
            r#"<?php
foreach ($rows as $row) {
    $DB->query("DELETE FROM t WHERE id='" . $row . "'");
}
"#,
        );
        assert!(r.var("row"));
        assert!(r.var("rows"));
    }

    #[test]
    fn indirect_chain_through_assignments() {
        let r = relevance(
            r#"<?php
$a = $_GET['x'];
$b = $a . "!";
$c = $b;
$DB->query("SELECT '" . $c . "'");
$z = $b; // z itself is irrelevant
"#,
        );
        assert!(r.var("c") && r.var("b") && r.var("a"));
        assert!(!r.var("z"));
    }
}
