//! Abstract environments: variable → grammar nonterminal.
//!
//! The analysis is flow-sensitive: each program point has an
//! environment mapping PHP variables (and canonicalized array
//! elements / object properties) to the nonterminal that derives the
//! variable's possible string values. Control-flow joins create fresh
//! nonterminals with one production per incoming branch — this is what
//! makes the generated grammar "reflect the program's dataflow" (paper
//! Fig. 5).

use std::collections::HashMap;

use strtaint_grammar::{Cfg, NtId, Symbol};

/// Separator used in canonical keys for array elements
/// (`arr␀key`) — a byte that cannot occur in PHP identifiers.
pub const KEY_SEP: char = '\u{0}';

/// A flow-sensitive variable environment.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: HashMap<String, NtId>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Looks up a variable.
    pub fn get(&self, key: &str) -> Option<NtId> {
        self.vars.get(key).copied()
    }

    /// Binds a variable.
    pub fn set(&mut self, key: impl Into<String>, nt: NtId) {
        self.vars.insert(key.into(), nt);
    }

    /// Removes a binding (PHP `unset`).
    pub fn unset(&mut self, key: &str) {
        self.vars.remove(key);
    }

    /// Iterates over bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&str, NtId)> {
        self.vars.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All keys that denote elements of array `name`
    /// (i.e. start with `name␀`).
    pub fn element_keys(&self, name: &str) -> Vec<String> {
        let prefix = format!("{name}{KEY_SEP}");
        let mut keys: Vec<String> = self
            .vars
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        keys.sort();
        keys
    }

    /// Joins two post-branch environments into one, creating join
    /// nonterminals in `cfg` where bindings differ.
    ///
    /// A variable bound in only one branch joins with `missing` (the
    /// nonterminal for PHP's empty/unset value).
    pub fn join(cfg: &mut Cfg, a: &Env, b: &Env, missing: NtId) -> Env {
        let mut out = Env::new();
        let mut keys: Vec<&String> = a.vars.keys().chain(b.vars.keys()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let na = a.get(key).unwrap_or(missing);
            let nb = b.get(key).unwrap_or(missing);
            if na == nb {
                out.set(key.clone(), na);
            } else {
                let j = cfg.add_nonterminal(format!("{}⊔", clean_key(key)));
                cfg.add_production(j, vec![Symbol::N(na)]);
                cfg.add_production(j, vec![Symbol::N(nb)]);
                out.set(key.clone(), j);
            }
        }
        out
    }

    /// Joins many environments.
    pub fn join_all(cfg: &mut Cfg, envs: &[Env], missing: NtId) -> Env {
        match envs {
            [] => Env::new(),
            [only] => only.clone(),
            [first, rest @ ..] => {
                let mut acc = first.clone();
                for e in rest {
                    acc = Env::join(cfg, &acc, e, missing);
                }
                acc
            }
        }
    }
}

/// Renders a canonical key for display (replaces the NUL separator).
pub fn clean_key(key: &str) -> String {
    key.replace(KEY_SEP, "[") + if key.contains(KEY_SEP) { "]" } else { "" }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_keeps_equal_bindings() {
        let mut cfg = Cfg::new();
        let x = cfg.literal_nonterminal("x", b"v");
        let missing = cfg.literal_nonterminal("ε", b"");
        let mut a = Env::new();
        a.set("v", x);
        let b = a.clone();
        let before = cfg.num_nonterminals();
        let j = Env::join(&mut cfg, &a, &b, missing);
        assert_eq!(j.get("v"), Some(x));
        assert_eq!(cfg.num_nonterminals(), before, "no new NT for equal bindings");
    }

    #[test]
    fn join_differs_creates_alternatives() {
        let mut cfg = Cfg::new();
        let x = cfg.literal_nonterminal("x", b"a");
        let y = cfg.literal_nonterminal("y", b"b");
        let missing = cfg.literal_nonterminal("ε", b"");
        let mut a = Env::new();
        a.set("v", x);
        let mut b = Env::new();
        b.set("v", y);
        let j = Env::join(&mut cfg, &a, &b, missing);
        let nt = j.get("v").unwrap();
        assert!(cfg.derives(nt, b"a"));
        assert!(cfg.derives(nt, b"b"));
        assert!(!cfg.derives(nt, b"c"));
    }

    #[test]
    fn one_sided_binding_joins_with_missing() {
        let mut cfg = Cfg::new();
        let x = cfg.literal_nonterminal("x", b"a");
        let missing = cfg.literal_nonterminal("ε", b"");
        let mut a = Env::new();
        a.set("v", x);
        let b = Env::new();
        let j = Env::join(&mut cfg, &a, &b, missing);
        let nt = j.get("v").unwrap();
        assert!(cfg.derives(nt, b"a"));
        assert!(cfg.derives(nt, b""));
    }

    #[test]
    fn element_keys_are_sorted_and_scoped() {
        let mut cfg = Cfg::new();
        let x = cfg.literal_nonterminal("x", b"1");
        let mut e = Env::new();
        e.set(format!("arr{KEY_SEP}b"), x);
        e.set(format!("arr{KEY_SEP}a"), x);
        e.set(format!("other{KEY_SEP}z"), x);
        e.set("arrx", x);
        let keys = e.element_keys("arr");
        assert_eq!(
            keys,
            vec![format!("arr{KEY_SEP}a"), format!("arr{KEY_SEP}b")]
        );
    }
}
