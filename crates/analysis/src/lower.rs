//! AST → IR lowering (the front half of the staged pipeline).
//!
//! Lowering owns every decision that can be made from the source text
//! alone: canonical environment keys for lvalues, constant folding,
//! loop φ-set pre-scans, refinement compilation (§3.1.2), and the
//! transducer payloads for structurally-modeled builtins. It never
//! consults the environment, the configuration, or the grammar — that
//! is what makes one file's IR reusable across pages (see
//! [`crate::summary`]).

use std::collections::BTreeSet;
use std::sync::Arc;

use strtaint_automata::{Dfa, Fst, Nfa, Regex};
use strtaint_php::ast::*;
use strtaint_php::token::StrPart;

use crate::builtins::{self, Model};
use crate::env::KEY_SEP;
use crate::ir::*;

/// Lowers a parsed file to IR.
pub fn lower_file(file: &strtaint_php::File) -> Vec<IrStmt> {
    lower_stmts(&file.stmts)
}

fn lower_stmts(stmts: &[Stmt]) -> Vec<IrStmt> {
    stmts.iter().map(lower_stmt).collect()
}

fn lower_stmt(s: &Stmt) -> IrStmt {
    match &s.kind {
        StmtKind::Expr(e) => IrStmt::Eval(lower_expr(e)),
        StmtKind::Echo(args) => IrStmt::Sink {
            args: args.iter().map(|a| (lower_expr(a), a.span)).collect(),
            span: s.span,
        },
        StmtKind::InlineHtml(_) => IrStmt::Nop,
        StmtKind::Block(body) => IrStmt::Block(lower_stmts(body)),
        StmtKind::If {
            cond,
            then,
            elifs,
            els,
        } => IrStmt::If {
            cond: lower_cond(cond),
            then: lower_stmts(then),
            elifs: elifs
                .iter()
                .map(|(c, b)| (lower_cond(c), lower_stmts(b)))
                .collect(),
            els: els.as_ref().map(|b| lower_stmts(b)),
        },
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            let mut assigned = BTreeSet::new();
            collect_assigned(body, &mut assigned);
            IrStmt::Loop {
                init: Vec::new(),
                cond: Some(lower_cond(cond)),
                step: Vec::new(),
                body: lower_stmts(body),
                phis: assigned.into_iter().collect(),
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            let mut assigned = BTreeSet::new();
            collect_assigned(body, &mut assigned);
            for e in step {
                collect_assigned_expr(e, &mut assigned);
            }
            IrStmt::Loop {
                init: init.iter().map(lower_expr).collect(),
                cond: cond.as_ref().map(lower_cond),
                step: step.iter().map(lower_expr).collect(),
                body: lower_stmts(body),
                phis: assigned.into_iter().collect(),
            }
        }
        StmtKind::Foreach {
            subject,
            key,
            value,
            body,
        } => {
            let mut assigned = BTreeSet::new();
            collect_assigned(body, &mut assigned);
            IrStmt::Foreach {
                subject: lower_expr(subject),
                key: key.clone(),
                value: value.clone(),
                body: lower_stmts(body),
                phis: assigned.into_iter().collect(),
            }
        }
        StmtKind::Switch { subject, cases } => IrStmt::Switch {
            subject: lower_expr(subject),
            subject_key: lvalue_key(subject),
            cases: cases
                .iter()
                .map(|(l, b)| IrCase {
                    label: l.as_ref().map(|e| IrCaseLabel {
                        lit: const_bytes_static(e),
                        expr: lower_expr(e),
                    }),
                    body: lower_stmts(b),
                })
                .collect(),
        },
        StmtKind::Return(v) => IrStmt::Return(v.as_ref().map(lower_expr)),
        StmtKind::Break => IrStmt::Break,
        StmtKind::Continue => IrStmt::Continue,
        StmtKind::Exit(v) => IrStmt::Exit(v.as_ref().map(lower_expr)),
        StmtKind::FuncDecl(d) => IrStmt::DeclFunc(Arc::new(lower_func(d))),
        StmtKind::ClassDecl(c) => {
            IrStmt::DeclClass(c.methods.iter().map(|m| Arc::new(lower_func(m))).collect())
        }
        StmtKind::Global(names) => IrStmt::Global(names.clone()),
        StmtKind::Unset(args) => IrStmt::Unset(args.iter().filter_map(lvalue_key).collect()),
        StmtKind::Include { kind, arg } => IrStmt::Include {
            kind: *kind,
            arg: lower_expr(arg),
            line: s.span.line,
        },
    }
}

fn lower_func(d: &FuncDecl) -> FuncIr {
    FuncIr {
        name: d.name.clone(),
        params: d
            .params
            .iter()
            .map(|p| ParamIr {
                name: p.name.clone(),
                by_ref: p.by_ref,
                default: p.default.as_ref().map(lower_expr),
            })
            .collect(),
        body: lower_stmts(&d.body),
    }
}

fn lower_expr(e: &Expr) -> IrExpr {
    match &e.kind {
        ExprKind::Null | ExprKind::Bool(false) => IrExpr::Empty,
        ExprKind::Bool(true) => IrExpr::Const(b"1".to_vec()),
        ExprKind::Int(i) => IrExpr::Const(i.to_string().into_bytes()),
        ExprKind::Float(x) => IrExpr::Const(format!("{x}").into_bytes()),
        ExprKind::Str(s) => IrExpr::Const(s.clone()),
        ExprKind::Interp(parts) => IrExpr::Interp(
            parts
                .iter()
                .map(|p| match p {
                    StrPart::Lit(b) => IrPart::Lit(b.clone()),
                    StrPart::Var(v) => IrPart::Expr(IrExpr::Var(v.clone())),
                    StrPart::Index(v, key) => IrPart::Expr(IrExpr::Index {
                        side: None,
                        key: Some((
                            format!("{v}{KEY_SEP}{}", String::from_utf8_lossy(key)),
                            v.clone(),
                        )),
                        base: Box::new(IrExpr::Var(v.clone())),
                    }),
                    StrPart::Prop(v, p) => IrPart::Expr(IrExpr::Prop {
                        key: Some(format!("{v}->{p}")),
                        base: Box::new(IrExpr::Var(v.clone())),
                    }),
                })
                .collect(),
        ),
        ExprKind::Var(v) => IrExpr::Var(v.clone()),
        ExprKind::ConstFetch(name) => IrExpr::ConstFetch(name.clone()),
        ExprKind::Index(base, idx) => {
            let side = match idx {
                Some(i) if const_bytes_static(i).is_none() => Some(Box::new(lower_expr(i))),
                _ => None,
            };
            let key = match (lvalue_key(e), lvalue_key(base)) {
                (Some(full), Some(b)) => Some((full, b)),
                _ => None,
            };
            IrExpr::Index {
                side,
                key,
                base: Box::new(lower_expr(base)),
            }
        }
        ExprKind::Prop(base, _) => IrExpr::Prop {
            key: lvalue_key(e),
            base: Box::new(lower_expr(base)),
        },
        ExprKind::Assign(lhs, op, rhs) => {
            if op.is_none() {
                // list($a, $b) = expr — each variable receives the
                // collapsed element language (paper §3.1.3).
                if let ExprKind::Call(name, vars) = &lhs.kind {
                    if name == "list" {
                        return IrExpr::AssignList {
                            keys: vars.iter().map(lvalue_key).collect(),
                            rhs: Box::new(lower_expr(rhs)),
                        };
                    }
                }
                // Array-literal assignment distributes over elements.
                if let ExprKind::Array(items) = &rhs.kind {
                    if let Some(base_key) = lvalue_key(lhs) {
                        let mut auto = 0usize;
                        let items = items
                            .iter()
                            .map(|(k, v)| {
                                let key = match k {
                                    Some(ke) => match const_bytes_static(ke) {
                                        Some(b) => String::from_utf8_lossy(&b).into_owned(),
                                        None => "*".to_owned(),
                                    },
                                    None => {
                                        let k = auto.to_string();
                                        auto += 1;
                                        k
                                    }
                                };
                                (key, lower_expr(v))
                            })
                            .collect();
                        return IrExpr::AssignArrayLit { base_key, items };
                    }
                }
            }
            let aop = match op {
                None => AssignOp::Plain,
                Some(BinOp::Concat) => AssignOp::Concat,
                Some(_) => AssignOp::Arith,
            };
            IrExpr::Assign {
                key: lvalue_key(lhs),
                op: aop,
                rhs: Box::new(lower_expr(rhs)),
            }
        }
        ExprKind::Ternary(cond, then, els) => IrExpr::Ternary {
            cond: Box::new(lower_cond(cond)),
            then: then.as_ref().map(|t| Box::new(lower_expr(t))),
            els: Box::new(lower_expr(els)),
        },
        ExprKind::Binary(op, a, b) => match op {
            BinOp::Concat => IrExpr::Concat(Box::new(lower_expr(a)), Box::new(lower_expr(b))),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                IrExpr::Numeric(vec![lower_expr(a), lower_expr(b)])
            }
            _ => IrExpr::BoolOf(vec![lower_expr(a), lower_expr(b)]),
        },
        ExprKind::Unary(op, inner) => match op {
            UnaryOp::Not => IrExpr::BoolOf(vec![lower_expr(inner)]),
            UnaryOp::Neg => IrExpr::Numeric(vec![lower_expr(inner)]),
        },
        ExprKind::Cast(kind, inner) => match kind {
            CastKind::Int | CastKind::Float => IrExpr::Numeric(vec![lower_expr(inner)]),
            CastKind::Bool => IrExpr::BoolOf(vec![lower_expr(inner)]),
            CastKind::Str | CastKind::Array => lower_expr(inner),
        },
        ExprKind::Suppress(inner) => lower_expr(inner),
        ExprKind::IncDec { target, .. } => IrExpr::IncDec {
            key: lvalue_key(target),
        },
        ExprKind::Isset(args) => IrExpr::BoolOf(args.iter().map(lower_expr).collect()),
        ExprKind::Empty(inner) => IrExpr::BoolOf(vec![lower_expr(inner)]),
        ExprKind::Array(items) => IrExpr::ArrayLit(
            items
                .iter()
                .map(|(k, v)| (k.as_ref().map(lower_expr), lower_expr(v)))
                .collect(),
        ),
        ExprKind::New(_, args) => IrExpr::New(args.iter().map(lower_expr).collect()),
        ExprKind::Call(name, args) => IrExpr::Call(Box::new(CallIr {
            name: name.clone(),
            args: args.iter().map(lower_expr).collect(),
            arg_keys: args.iter().map(lvalue_key).collect(),
            arg_span: args.first().map(|a| a.span),
            span: e.span,
            prep: call_prep(name, args),
        })),
        ExprKind::MethodCall(obj, m, args) => IrExpr::MethodCall(Box::new(MethodCallIr {
            method: m.clone(),
            obj: lower_expr(obj),
            args: args.iter().map(lower_expr).collect(),
            arg_keys: args.iter().map(lvalue_key).collect(),
            arg_span: args.first().map(|a| a.span),
            span: e.span,
        })),
    }
}

// ------------------------------------------------------- conditions

fn lower_cond(e: &Expr) -> Cond {
    Cond {
        pre: lower_expr(e),
        refine: lower_refine(e),
    }
}

fn lower_refine(e: &Expr) -> Refine {
    match &e.kind {
        ExprKind::Unary(UnaryOp::Not, inner) => Refine::Not(Box::new(lower_refine(inner))),
        ExprKind::Suppress(inner) => lower_refine(inner),
        ExprKind::Binary(BinOp::And, a, b) => {
            Refine::AndPos(Box::new(lower_refine(a)), Box::new(lower_refine(b)))
        }
        ExprKind::Binary(BinOp::Or, a, b) => {
            Refine::OrNeg(Box::new(lower_refine(a)), Box::new(lower_refine(b)))
        }
        ExprKind::Binary(BinOp::Eq | BinOp::Identical, a, b) => lower_refine_eq(a, b),
        ExprKind::Binary(BinOp::Neq | BinOp::NotIdentical, a, b) => {
            Refine::Not(Box::new(lower_refine_eq(a, b)))
        }
        ExprKind::Call(name, args) => lower_refine_call(name, args),
        ExprKind::Var(_) | ExprKind::Index(..) | ExprKind::Prop(..) => truthy_refine(e, false),
        // `if ($r = f(...))` — refine the assigned variable's
        // truthiness.
        ExprKind::Assign(lhs, None, _) => truthy_refine(lhs, false),
        _ => Refine::None,
    }
}

fn truthy_refine(target: &Expr, invert: bool) -> Refine {
    match lvalue_key(target) {
        Some(key) => Refine::Truthy {
            key,
            target: Box::new(lower_expr(target)),
            invert,
        },
        None => Refine::None,
    }
}

fn lower_refine_eq(a: &Expr, b: &Expr) -> Refine {
    // Comparisons against boolean literals are truthiness tests.
    if matches!(
        (&a.kind, &b.kind),
        (_, ExprKind::Bool(_)) | (ExprKind::Bool(_), _)
    ) {
        let bool_val = match (&a.kind, &b.kind) {
            (_, ExprKind::Bool(v)) | (ExprKind::Bool(v), _) => *v,
            _ => unreachable!(),
        };
        let var = if matches!(b.kind, ExprKind::Bool(_)) { a } else { b };
        return truthy_refine(var, !bool_val);
    }
    // Normalize so the variable is on the left.
    let (var_side, c) = match (const_bytes_static(a), const_bytes_static(b)) {
        (None, Some(c)) => (a, c),
        (Some(c), None) => (b, c),
        _ => return Refine::None,
    };
    match lvalue_key(var_side) {
        Some(key) => Refine::EqLit {
            key,
            target: Box::new(lower_expr(var_side)),
            bytes: c,
        },
        None => Refine::None,
    }
}

fn lower_refine_call(name: &str, args: &[Expr]) -> Refine {
    match name {
        "preg_match" if args.len() >= 2 => {
            let Some(pat) = const_bytes_static(&args[0]) else {
                return Refine::None;
            };
            let pat = String::from_utf8_lossy(&pat).into_owned();
            match Regex::new_delimited(&pat) {
                Ok(re) => dfa_refine(&args[1], re.match_dfa(), "regex", "¬regex"),
                Err(_) => Refine::None,
            }
        }
        "ereg" | "eregi" if args.len() >= 2 => {
            let Some(pat) = const_bytes_static(&args[0]) else {
                return Refine::None;
            };
            let pat = String::from_utf8_lossy(&pat).into_owned();
            match Regex::with_flags(&pat, name == "eregi") {
                Ok(re) => dfa_refine(&args[1], re.match_dfa(), "regex", "¬regex"),
                Err(_) => Refine::None,
            }
        }
        "is_numeric" if !args.is_empty() => {
            pattern_refine(&args[0], r"^\s*-?[0-9]+(\.[0-9]+)?\s*$")
        }
        "ctype_digit" if !args.is_empty() => pattern_refine(&args[0], "^[0-9]+$"),
        "ctype_alpha" if !args.is_empty() => pattern_refine(&args[0], "^[A-Za-z]+$"),
        "ctype_alnum" if !args.is_empty() => pattern_refine(&args[0], "^[A-Za-z0-9]+$"),
        "ctype_xdigit" if !args.is_empty() => pattern_refine(&args[0], "^[0-9A-Fa-f]+$"),
        "empty" if !args.is_empty() => truthy_refine(&args[0], true),
        "in_array" if args.len() >= 2 => {
            if let ExprKind::Array(items) = &args[1].kind {
                let mut lits: Vec<Vec<u8>> = Vec::new();
                for (_, v) in items {
                    match const_bytes_static(v) {
                        Some(b) => lits.push(b),
                        None => return Refine::None,
                    }
                }
                let mut nfa = Nfa::empty();
                for l in &lits {
                    nfa = nfa.union(&Nfa::literal(l));
                }
                dfa_refine(&args[0], Dfa::from_nfa(&nfa), "in_array", "in_array")
            } else {
                Refine::None
            }
        }
        _ => Refine::None,
    }
}

fn pattern_refine(target: &Expr, pattern: &str) -> Refine {
    let re = Regex::new(pattern).expect("builtin refinement patterns are valid");
    dfa_refine(target, re.match_dfa(), "regex", "¬regex")
}

fn dfa_refine(target: &Expr, dfa: Dfa, pos_what: &'static str, neg_what: &'static str) -> Refine {
    match lvalue_key(target) {
        Some(key) => Refine::Dfa {
            key,
            target: Box::new(lower_expr(target)),
            dfa: Arc::new(dfa),
            pos_what,
            neg_what,
        },
        None => Refine::None,
    }
}

// ------------------------------------------------------------ calls

fn call_prep(name: &str, args: &[Expr]) -> CallPrep {
    // define() tracks program constants (checked before everything
    // else at emit time, mirroring eval order).
    if name == "define" && args.len() >= 2 {
        if let Some(cname) = const_bytes_static(&args[0]) {
            return CallPrep::Define(String::from_utf8_lossy(&cname).into_owned());
        }
    }
    match builtins::lookup(name) {
        Some(Model::Transducer(kind)) => {
            CallPrep::Apply(Arc::new(builtins::transducer_fst(kind)))
        }
        Some(Model::StrReplace) => CallPrep::ReplaceChain(prep_str_replace(args)),
        Some(Model::PregReplace { posix_ci, delimited }) => {
            CallPrep::RegexReplace(prep_preg_replace(args, posix_ci, delimited))
        }
        Some(Model::Sprintf) => CallPrep::Sprintf(
            args.first()
                .and_then(const_bytes_static)
                .map(|fmt| sprintf_plan(&fmt)),
        ),
        Some(Model::Implode) => CallPrep::Implode(args.first().and_then(const_bytes_static)),
        Some(Model::Explode) => CallPrep::Explode(
            args.first()
                .and_then(const_bytes_static)
                .map(|d| Arc::new(explode_piece_fst(&d))),
        ),
        Some(Model::StrRepeat) => {
            let count = args
                .get(1)
                .and_then(const_bytes_static)
                .and_then(|b| String::from_utf8_lossy(&b).parse::<usize>().ok());
            CallPrep::Repeat(match count {
                Some(n) if n <= 16 => Some(n),
                _ => None,
            })
        }
        _ => CallPrep::None,
    }
}

fn prep_str_replace(args: &[Expr]) -> Option<Vec<Arc<Fst>>> {
    if args.len() < 3 {
        return None;
    }
    let pats = const_list(&args[0])?;
    let reps = const_list(&args[1])?;
    literal_replace_chain(&pats, &reps)
}

/// Builds the `str_replace` transducer chain from constant-folded
/// pattern/replacement lists (the frontend-independent core: each
/// frontend folds its own AST, every frontend shares this payload).
pub(crate) fn literal_replace_chain(
    pats: &[Vec<u8>],
    reps: &[Vec<u8>],
) -> Option<Vec<Arc<Fst>>> {
    if pats.is_empty() || pats.iter().any(|p| p.is_empty()) {
        return None;
    }
    // PHP semantics: pattern i is replaced by replacement i (or "" /
    // the scalar). Applied sequentially at emit.
    Some(
        pats.iter()
            .enumerate()
            .map(|(i, pat)| {
                let rep = if reps.len() == 1 {
                    reps[0].clone()
                } else {
                    reps.get(i).cloned().unwrap_or_default()
                };
                Arc::new(strtaint_automata::fst::builders::replace_literal(pat, &rep))
            })
            .collect(),
    )
}

fn prep_preg_replace(args: &[Expr], posix_ci: bool, delimited: bool) -> Option<Arc<Fst>> {
    if args.len() < 3 {
        return None;
    }
    let pat = const_bytes_static(&args[0])?;
    let rep = const_bytes_static(&args[1])?;
    regex_replace_fst(&pat, &rep, posix_ci, delimited)
}

/// Builds the `preg_replace`/`ereg_replace` transducer from a
/// constant-folded pattern and replacement (frontend-independent core,
/// like [`literal_replace_chain`]).
pub(crate) fn regex_replace_fst(
    pat: &[u8],
    rep: &[u8],
    posix_ci: bool,
    delimited: bool,
) -> Option<Arc<Fst>> {
    let pat_str = String::from_utf8_lossy(pat).into_owned();
    let re = if delimited {
        Regex::new_delimited(&pat_str)
    } else {
        Regex::with_flags(&pat_str, posix_ci)
    }
    .ok()?;
    let has_backref = rep
        .windows(2)
        .any(|w| (w[0] == b'\\' || w[0] == b'$') && w[1].is_ascii_digit());
    use strtaint_automata::regex::Anchoring;
    if has_backref || re.ast().anchoring() != Anchoring::None {
        return None;
    }
    let dfa = Dfa::from_nfa(&re.anchored_nfa()).minimize();
    Some(Arc::new(strtaint_automata::fst::builders::replace_regex(
        &dfa, rep,
    )))
}

pub(crate) fn sprintf_plan(fmt: &[u8]) -> SprintfPlan {
    let mut parts: Vec<SprintfPart> = Vec::new();
    let mut lit: Vec<u8> = Vec::new();
    let mut arg_idx = 1usize;
    let mut i = 0usize;
    let mut ok = true;
    macro_rules! flush_lit {
        () => {
            if !lit.is_empty() {
                parts.push(SprintfPart::Lit(std::mem::take(&mut lit)));
            }
        };
    }
    while i < fmt.len() {
        let b = fmt[i];
        if b != b'%' {
            lit.push(b);
            i += 1;
            continue;
        }
        i += 1;
        if i >= fmt.len() {
            break;
        }
        // Skip flags/width/precision.
        while i < fmt.len()
            && (fmt[i].is_ascii_digit()
                || matches!(fmt[i], b'-' | b'+' | b' ' | b'0' | b'.' | b'\''))
        {
            i += 1;
        }
        if i >= fmt.len() {
            ok = false;
            break;
        }
        match fmt[i] {
            b'%' => lit.push(b'%'),
            b's' => {
                flush_lit!();
                parts.push(SprintfPart::Str(arg_idx));
                arg_idx += 1;
            }
            b'd' | b'u' | b'i' | b'f' | b'F' | b'e' | b'g' => {
                flush_lit!();
                parts.push(SprintfPart::Num(arg_idx));
                arg_idx += 1;
            }
            b'x' | b'X' | b'o' | b'b' => {
                flush_lit!();
                parts.push(SprintfPart::Hex(arg_idx));
                arg_idx += 1;
            }
            _ => {
                ok = false;
                break;
            }
        }
        i += 1;
    }
    flush_lit!();
    SprintfPlan {
        parts,
        consumed: arg_idx,
        ok,
    }
}

/// Builds the `explode` piece transducer for a delimiter: relates the
/// subject to each returned array element (superset when the delimiter
/// is multi-byte; paper Fig. 8 / Minamide's two-FST construction).
pub(crate) fn explode_piece_fst(delim: &[u8]) -> Fst {
    use strtaint_automata::{ByteSet, OutSym};
    let mut f = Fst::new();
    let skip_pre = f.start();
    let piece = f.add_state();
    let skip_post = f.add_state();
    f.add_arc(skip_pre, ByteSet::FULL, Vec::new(), skip_pre);
    let copyable = if delim.len() == 1 {
        ByteSet::singleton(delim[0]).complement()
    } else {
        ByteSet::FULL
    };
    // Enter the piece by copying its first byte.
    f.add_arc(skip_pre, copyable, vec![OutSym::Copy], piece);
    f.add_arc(piece, copyable, vec![OutSym::Copy], piece);
    // Leave the piece on a delimiter-ish byte.
    let leave = if delim.len() == 1 {
        ByteSet::singleton(delim[0])
    } else {
        ByteSet::FULL
    };
    f.add_arc(piece, leave, Vec::new(), skip_post);
    f.add_arc(skip_post, ByteSet::FULL, Vec::new(), skip_post);
    // Empty piece (delimiter at the edge) and full-piece cases.
    f.set_final(skip_pre, Vec::new());
    f.set_final(piece, Vec::new());
    f.set_final(skip_post, Vec::new());
    f
}

// ------------------------------------------------------ shared folds

/// Canonical environment key for an lvalue expression, if it has one.
/// The single implementation shared by lowering proper and the loop
/// φ-set pre-scan.
pub(crate) fn lvalue_key(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Var(v) => Some(v.clone()),
        ExprKind::Index(base, idx) => {
            let base_key = lvalue_key(base)?;
            let key = match idx {
                None => "*".to_owned(),
                Some(i) => match const_bytes_static(i) {
                    Some(b) => String::from_utf8_lossy(&b).into_owned(),
                    None => "*".to_owned(),
                },
            };
            Some(format!("{base_key}{KEY_SEP}{key}"))
        }
        ExprKind::Prop(base, p) => {
            let base_key = lvalue_key(base)?;
            Some(format!("{base_key}->{p}"))
        }
        _ => None,
    }
}

/// Constant-folds an expression to bytes when it is a literal (string,
/// int, float, escape-free interpolation, or concatenation of such).
pub(crate) fn const_bytes_static(e: &Expr) -> Option<Vec<u8>> {
    match &e.kind {
        ExprKind::Str(s) => Some(s.clone()),
        ExprKind::Int(i) => Some(i.to_string().into_bytes()),
        ExprKind::Float(x) => Some(format!("{x}").into_bytes()),
        ExprKind::Bool(true) => Some(b"1".to_vec()),
        ExprKind::Bool(false) | ExprKind::Null => Some(Vec::new()),
        ExprKind::Interp(parts) => {
            let mut out = Vec::new();
            for p in parts {
                match p {
                    StrPart::Lit(b) => out.extend_from_slice(b),
                    _ => return None,
                }
            }
            Some(out)
        }
        ExprKind::Binary(BinOp::Concat, a, b) => {
            let mut out = const_bytes_static(a)?;
            out.extend(const_bytes_static(b)?);
            Some(out)
        }
        _ => None,
    }
}

/// Constant-folds either a scalar literal (one-element list) or an
/// `array(...)` of literals.
fn const_list(e: &Expr) -> Option<Vec<Vec<u8>>> {
    if let ExprKind::Array(items) = &e.kind {
        let mut out = Vec::new();
        for (_, v) in items {
            out.push(const_bytes_static(v)?);
        }
        return Some(out);
    }
    const_bytes_static(e).map(|b| vec![b])
}

// ------------------------------------------------------- φ pre-scan

/// Collects the environment keys assigned anywhere in a statement list
/// (loop pre-scan for φ-header creation).
fn collect_assigned(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Expr(e) | StmtKind::Return(Some(e)) | StmtKind::Exit(Some(e)) => {
                collect_assigned_expr(e, out)
            }
            StmtKind::Echo(es) | StmtKind::Unset(es) => {
                for e in es {
                    collect_assigned_expr(e, out);
                }
            }
            StmtKind::If {
                cond,
                then,
                elifs,
                els,
            } => {
                collect_assigned_expr(cond, out);
                collect_assigned(then, out);
                for (c, b) in elifs {
                    collect_assigned_expr(c, out);
                    collect_assigned(b, out);
                }
                if let Some(b) = els {
                    collect_assigned(b, out);
                }
            }
            StmtKind::While { cond, body } => {
                collect_assigned_expr(cond, out);
                collect_assigned(body, out);
            }
            StmtKind::DoWhile { body, cond } => {
                collect_assigned(body, out);
                collect_assigned_expr(cond, out);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init.iter().chain(step.iter()) {
                    collect_assigned_expr(e, out);
                }
                if let Some(c) = cond {
                    collect_assigned_expr(c, out);
                }
                collect_assigned(body, out);
            }
            StmtKind::Foreach {
                subject,
                key,
                value,
                body,
            } => {
                collect_assigned_expr(subject, out);
                if let Some(k) = key {
                    out.insert(k.clone());
                }
                out.insert(value.clone());
                collect_assigned(body, out);
            }
            StmtKind::Switch { subject, cases } => {
                collect_assigned_expr(subject, out);
                for (l, b) in cases {
                    if let Some(l) = l {
                        collect_assigned_expr(l, out);
                    }
                    collect_assigned(b, out);
                }
            }
            StmtKind::Block(b) => collect_assigned(b, out),
            StmtKind::Global(names) => {
                for n in names {
                    out.insert(n.clone());
                }
            }
            StmtKind::Include { arg, .. } => collect_assigned_expr(arg, out),
            _ => {}
        }
    }
}

fn collect_assigned_expr(e: &Expr, out: &mut BTreeSet<String>) {
    match &e.kind {
        ExprKind::Assign(lhs, _, rhs) => {
            if let Some(key) = lvalue_key(lhs) {
                out.insert(key);
            }
            collect_assigned_expr(rhs, out);
        }
        ExprKind::IncDec { target, .. } => {
            if let Some(key) = lvalue_key(target) {
                out.insert(key);
            }
        }
        ExprKind::Binary(_, a, b) => {
            collect_assigned_expr(a, out);
            collect_assigned_expr(b, out);
        }
        ExprKind::Unary(_, a) | ExprKind::Suppress(a) | ExprKind::Empty(a) => {
            collect_assigned_expr(a, out)
        }
        ExprKind::Cast(_, a) => collect_assigned_expr(a, out),
        ExprKind::Ternary(c, t, f) => {
            collect_assigned_expr(c, out);
            if let Some(t) = t {
                collect_assigned_expr(t, out);
            }
            collect_assigned_expr(f, out);
        }
        ExprKind::Call(_, args) | ExprKind::Isset(args) | ExprKind::New(_, args) => {
            for a in args {
                collect_assigned_expr(a, out);
            }
        }
        ExprKind::MethodCall(obj, _, args) => {
            collect_assigned_expr(obj, out);
            for a in args {
                collect_assigned_expr(a, out);
            }
        }
        ExprKind::Index(b, i) => {
            collect_assigned_expr(b, out);
            if let Some(i) = i {
                collect_assigned_expr(i, out);
            }
        }
        ExprKind::Array(items) => {
            for (k, v) in items {
                if let Some(k) = k {
                    collect_assigned_expr(k, out);
                }
                collect_assigned_expr(v, out);
            }
        }
        _ => {}
    }
}
