//! The SSA-style dataflow IR between the PHP AST and the grammar.
//!
//! The paper (§3.1) derives its grammar from programs "in SSA form" —
//! one nonterminal per variable version. This module makes that stage
//! explicit: [`crate::lower`] translates a parsed file into the
//! instructions below once, and [`crate::emit`] interprets them
//! against a flow-sensitive environment to produce CFG productions.
//! The split buys reuse: a file's IR ([`FileSummary`]) depends only on
//! its source bytes, so shared includes and library functions are
//! lowered once per application (see [`crate::summary`]) instead of
//! once per page per include site.
//!
//! Instruction vocabulary (paper / ISSUE naming):
//!
//! - **Const** — [`IrExpr::Const`], a literal byte string;
//! - **Source** — materialized at emit time when a read of a
//!   configured superglobal ([`IrExpr::Var`] / [`IrExpr::Index`] /
//!   [`IrExpr::Prop`]) misses the environment, or from a configured
//!   fetch function; sources carry the `direct`/`indirect` taint;
//! - **Concat** — [`IrExpr::Concat`] and interpolations;
//! - **Apply(fst)** — [`CallPrep::Apply`] and the other prepared
//!   transducer payloads: the finite-state transducer for a string
//!   library call, prebuilt at lowering;
//! - **Refine(dfa)** — [`Refine::Dfa`]: a branch condition compiled to
//!   the DFA the matching environment entry is intersected with
//!   (§3.1.2);
//! - **Phi** — the `phis` lists on [`IrStmt::Loop`] /
//!   [`IrStmt::Foreach`]: variables assigned in a loop body, which
//!   receive recursive header nonterminals (the loop fixpoint);
//!   branch joins are φ-nodes too, created implicitly by
//!   [`crate::env::Env::join_all`] at emit time;
//! - **Call** — [`IrExpr::Call`] / [`IrExpr::MethodCall`], late-bound
//!   at emit time (user functions shadow builtins, as in PHP);
//! - **Sink** — [`IrStmt::Sink`] (`echo`/`print`) and hotspot calls,
//!   classified at emit time from the configured hotspot lists.
//!
//! Everything that can be decided from the source text alone is
//! decided here (environment keys, constant folding, transducer and
//! refinement compilation); everything that depends on the
//! environment, the configuration, or the grammar budget stays in the
//! emitter. That invariant is what makes a summary reusable across
//! pages and configurations.

use std::sync::Arc;

use strtaint_automata::{Dfa, Fst};
use strtaint_php::ast::IncludeKind;
use strtaint_php::Span;

/// One lowered statement.
#[derive(Debug, Clone)]
pub enum IrStmt {
    /// Expression statement, evaluated for its effects.
    Eval(IrExpr),
    /// `echo`/`print` output sink; each argument keeps its own span
    /// for finding provenance.
    Sink {
        /// Arguments with their source spans.
        args: Vec<(IrExpr, Span)>,
        /// Span of the whole statement.
        span: Span,
    },
    /// Brace block.
    Block(Vec<IrStmt>),
    /// `if` / `elseif` / `else` chain.
    If {
        /// Main condition.
        cond: Cond,
        /// Then branch.
        then: Vec<IrStmt>,
        /// `elseif` branches.
        elifs: Vec<(Cond, Vec<IrStmt>)>,
        /// `else` branch.
        els: Option<Vec<IrStmt>>,
    },
    /// Unified `while` / `do-while` / `for` loop.
    Loop {
        /// `for` initializers (empty otherwise).
        init: Vec<IrExpr>,
        /// Loop condition, if any.
        cond: Option<Cond>,
        /// `for` step expressions (empty otherwise).
        step: Vec<IrExpr>,
        /// Body.
        body: Vec<IrStmt>,
        /// φ set: variables assigned in the body or step, which get
        /// recursive `var@loop` header nonterminals.
        phis: Vec<String>,
    },
    /// `foreach ($subject as $key => $value)`.
    Foreach {
        /// Iterated expression.
        subject: IrExpr,
        /// Key variable, if destructured.
        key: Option<String>,
        /// Value variable.
        value: String,
        /// Body.
        body: Vec<IrStmt>,
        /// φ set for the body.
        phis: Vec<String>,
    },
    /// `switch`.
    Switch {
        /// Scrutinee.
        subject: IrExpr,
        /// Environment key of the scrutinee, for `case` refinement.
        subject_key: Option<String>,
        /// Cases in order.
        cases: Vec<IrCase>,
    },
    /// `return e?;`
    Return(Option<IrExpr>),
    /// `exit` / `die`.
    Exit(Option<IrExpr>),
    /// `break` (loop bodies are analyzed once; no-op).
    Break,
    /// `continue`.
    Continue,
    /// Function declaration.
    DeclFunc(Arc<FuncIr>),
    /// Class declaration, reduced to its methods.
    DeclClass(Vec<Arc<FuncIr>>),
    /// `global $a, $b;`
    Global(Vec<String>),
    /// `unset(...)`, reduced to the resolvable environment keys.
    Unset(Vec<String>),
    /// `include` / `require` and their `_once` forms.
    Include {
        /// Which include flavor.
        kind: IncludeKind,
        /// The path expression.
        arg: IrExpr,
        /// Source line of the statement (combined with the emitting
        /// file at emit time to form the override site `file:line`).
        line: u32,
    },
    /// Statement with no dataflow effect (inline HTML).
    Nop,
}

/// One `switch` case.
#[derive(Debug, Clone)]
pub struct IrCase {
    /// `None` = `default`.
    pub label: Option<IrCaseLabel>,
    /// Case body.
    pub body: Vec<IrStmt>,
}

/// A non-default `case` label.
#[derive(Debug, Clone)]
pub struct IrCaseLabel {
    /// The label expression (evaluated for effects).
    pub expr: IrExpr,
    /// Constant-folded label bytes, when the label is a literal —
    /// enables scrutinee refinement.
    pub lit: Option<Vec<u8>>,
}

/// A compiled branch condition: the expression to evaluate plus the
/// refinement to apply to each arm's environment.
#[derive(Debug, Clone)]
pub struct Cond {
    /// The condition expression (evaluated once, for value/effects).
    pub pre: IrExpr,
    /// The compiled refinement (paper §3.1.2).
    pub refine: Refine,
}

/// A compiled condition refinement, applied to an environment with a
/// polarity (`positive` = the condition held).
#[derive(Debug, Clone)]
pub enum Refine {
    /// Refines nothing (sound for unrecognized conditions).
    None,
    /// Negation: flips the polarity.
    Not(Box<Refine>),
    /// Conjunction: refines both only on the positive branch
    /// (¬(a ∧ b) is a disjunction — no single-env refinement).
    AndPos(Box<Refine>, Box<Refine>),
    /// Disjunction: refines both only on the negative branch.
    OrNeg(Box<Refine>, Box<Refine>),
    /// Truthiness test (falsy strings are `""` and `"0"`); `invert`
    /// flips the tested sense (e.g. `empty($x)`).
    Truthy {
        /// Environment key of the tested lvalue.
        key: String,
        /// The tested expression, re-evaluated only to materialize a
        /// superglobal source when the key is unbound.
        target: Box<IrExpr>,
        /// `true` when the test is for falsiness.
        invert: bool,
    },
    /// Equality with a constant: the positive branch narrows to the
    /// literal (keeping taint), the negative branch intersects with
    /// the literal's complement.
    EqLit {
        /// Environment key of the compared lvalue.
        key: String,
        /// The compared expression (for source materialization).
        target: Box<IrExpr>,
        /// The constant bytes.
        bytes: Vec<u8>,
    },
    /// Intersection with a compiled DFA — regex matches
    /// (`preg_match`, `ereg`), type predicates (`is_numeric`,
    /// `ctype_*`), `in_array` with a literal list. The negative branch
    /// intersects with the complement.
    Dfa {
        /// Environment key of the refined lvalue.
        key: String,
        /// The refined expression (for source materialization).
        target: Box<IrExpr>,
        /// Language of the positive branch.
        dfa: Arc<Dfa>,
        /// Degradation label for the positive branch.
        pos_what: &'static str,
        /// Degradation label for the negative branch.
        neg_what: &'static str,
    },
}

/// One lowered expression.
#[derive(Debug, Clone)]
pub enum IrExpr {
    /// PHP's empty value (`null`, `false`, unset) — the ε nonterminal.
    Empty,
    /// A literal byte string (**Const**).
    Const(Vec<u8>),
    /// Bare-constant fetch, resolved against `define()`d constants at
    /// emit time.
    ConstFetch(String),
    /// Interpolated string (**Concat** of parts).
    Interp(Vec<IrPart>),
    /// Variable read; superglobal reads materialize **Source**
    /// nonterminals at emit time.
    Var(String),
    /// Array element read.
    Index {
        /// Dynamic index expression, evaluated for effects (present
        /// only when the index does not constant-fold).
        side: Option<Box<IrExpr>>,
        /// `(full, base)` environment keys when the lvalue is
        /// canonicalizable.
        key: Option<(String, String)>,
        /// Base expression (for the fallback and `elements_of`).
        base: Box<IrExpr>,
    },
    /// Object property read.
    Prop {
        /// Environment key when canonicalizable.
        key: Option<String>,
        /// Base expression for the fallback.
        base: Box<IrExpr>,
    },
    /// Assignment to a canonicalized lvalue.
    Assign {
        /// Environment key of the target (`None` = unsupported
        /// lvalue, warned at emit time).
        key: Option<String>,
        /// Plain, `.=` or arithmetic compound.
        op: AssignOp,
        /// Right-hand side.
        rhs: Box<IrExpr>,
    },
    /// `list($a, $b) = rhs` — every target receives the collapsed
    /// element language.
    AssignList {
        /// Target keys (unresolvable targets are `None`).
        keys: Vec<Option<String>>,
        /// Right-hand side.
        rhs: Box<IrExpr>,
    },
    /// `$a = array(...)` — distributes over elements.
    AssignArrayLit {
        /// The array variable's key.
        base_key: String,
        /// `(element key, value)` pairs; literal keys are folded,
        /// dynamic ones become `*`, missing ones auto-number.
        items: Vec<(String, IrExpr)>,
    },
    /// `++$x` / `$x--` — numeric result keeping the target's taint.
    IncDec {
        /// Environment key of the target.
        key: Option<String>,
    },
    /// `cond ? then : else`; `then` is `None` for the `?:` shorthand.
    Ternary {
        /// Compiled condition.
        cond: Box<Cond>,
        /// Then value.
        then: Option<Box<IrExpr>>,
        /// Else value.
        els: Box<IrExpr>,
    },
    /// String concatenation (**Concat**).
    Concat(Box<IrExpr>, Box<IrExpr>),
    /// Numeric-valued operation over the arguments (keeps taint).
    Numeric(Vec<IrExpr>),
    /// Boolean-valued operation over the arguments.
    BoolOf(Vec<IrExpr>),
    /// `array(...)` in expression position.
    ArrayLit(Vec<(Option<IrExpr>, IrExpr)>),
    /// `new C(...)` — arguments evaluated, object value is Σ*.
    New(Vec<IrExpr>),
    /// Free-function call (**Call**/**Sink**), late-bound at emit.
    Call(Box<CallIr>),
    /// Method call, late-bound at emit.
    MethodCall(Box<MethodCallIr>),
}

/// A piece of an interpolated string.
#[derive(Debug, Clone)]
pub enum IrPart {
    /// Literal bytes.
    Lit(Vec<u8>),
    /// Interpolated sub-expression.
    Expr(IrExpr),
}

/// Assignment operator class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Plain,
    /// `.=`
    Concat,
    /// `+=`, `-=`, … — numeric result.
    Arith,
}

/// A lowered free-function call site.
#[derive(Debug, Clone)]
pub struct CallIr {
    /// Callee name.
    pub name: String,
    /// Arguments.
    pub args: Vec<IrExpr>,
    /// Per-argument environment keys (for by-reference write-back).
    pub arg_keys: Vec<Option<String>>,
    /// Span of the first argument (finding provenance).
    pub arg_span: Option<Span>,
    /// Call span.
    pub span: Span,
    /// Prepared builtin payload — used only when emit dispatches to
    /// the matching builtin model (user functions shadow builtins).
    pub prep: CallPrep,
}

/// A lowered method call site.
#[derive(Debug, Clone)]
pub struct MethodCallIr {
    /// Bare method name.
    pub method: String,
    /// Receiver expression.
    pub obj: IrExpr,
    /// Arguments.
    pub args: Vec<IrExpr>,
    /// Per-argument environment keys.
    pub arg_keys: Vec<Option<String>>,
    /// Span of the first argument.
    pub arg_span: Option<Span>,
    /// Call span.
    pub span: Span,
}

/// Speculatively prepared payload for a builtin call site. `None`
/// inside a variant means the fallback (widening) path — the
/// structural arguments did not constant-fold.
#[derive(Debug, Clone)]
pub enum CallPrep {
    /// No preparation applies.
    None,
    /// `define(NAME, value)` with a constant name.
    Define(String),
    /// Prebuilt transducer for a [`crate::builtins::Model::Transducer`]
    /// builtin (**Apply(fst)**).
    Apply(Arc<Fst>),
    /// `str_replace` with literal patterns: the sequential
    /// replacement chain.
    ReplaceChain(Option<Vec<Arc<Fst>>>),
    /// `preg_replace`-family with a compilable pattern.
    RegexReplace(Option<Arc<Fst>>),
    /// `explode` with a literal delimiter: the piece transducer.
    Explode(Option<Arc<Fst>>),
    /// `sprintf` with a literal format.
    Sprintf(Option<SprintfPlan>),
    /// `implode` with a literal glue.
    Implode(Option<Vec<u8>>),
    /// `str_repeat` with a small constant count.
    Repeat(Option<usize>),
}

/// A compiled `sprintf` format: literal runs interleaved with typed
/// argument slots.
#[derive(Debug, Clone)]
pub struct SprintfPlan {
    /// Format pieces in order.
    pub parts: Vec<SprintfPart>,
    /// Number of leading arguments consumed by the format (including
    /// the format string itself).
    pub consumed: usize,
    /// `false` when the format had an unsupported conversion — the
    /// emitter evaluates the scanned slots for effects, then widens.
    pub ok: bool,
}

/// One piece of a compiled `sprintf` format.
#[derive(Debug, Clone)]
pub enum SprintfPart {
    /// Literal bytes.
    Lit(Vec<u8>),
    /// `%s` consuming argument `idx`.
    Str(usize),
    /// `%d`-family consuming argument `idx` (numeric result, taint
    /// kept).
    Num(usize),
    /// `%x`-family consuming argument `idx` (hex language).
    Hex(usize),
}

/// A lowered function (or method) body.
#[derive(Debug)]
pub struct FuncIr {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<ParamIr>,
    /// Body.
    pub body: Vec<IrStmt>,
}

/// A lowered parameter.
#[derive(Debug)]
pub struct ParamIr {
    /// Parameter name.
    pub name: String,
    /// `&$p` by-reference marker.
    pub by_ref: bool,
    /// Default value, evaluated in the caller when the argument is
    /// missing.
    pub default: Option<IrExpr>,
}

/// The lowered IR of one file — the unit cached by
/// [`crate::summary::SummaryCache`]. Deliberately path-free: the same
/// content at two paths shares one summary (file attribution for
/// hotspots and warnings happens at emit time).
#[derive(Debug)]
pub struct FileSummary {
    /// Top-level statements.
    pub body: Vec<IrStmt>,
    /// Hash of the source bytes this summary was lowered from.
    pub content_hash: u64,
}
