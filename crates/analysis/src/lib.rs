//! String-taint analysis for PHP web applications (paper §3.1).
//!
//! This crate implements the first phase of **strtaint**: it walks a
//! PHP application starting from a page's top-level file and produces a
//! context-free grammar that conservatively derives every SQL query
//! string the application can send to its database, with nonterminals
//! labeled `direct`/`indirect` where the derived strings come from
//! user-controlled sources.
//!
//! Key pieces (a staged pipeline — see DESIGN.md §Pipeline):
//!
//! - [`lower`]: AST → dataflow IR (control-flow shape, loop φ-sets,
//!   condition refinements, prepared transducers);
//! - [`summary`]: per-file IR summaries memoized by content hash, so
//!   shared includes lower once per app instead of once per page;
//! - [`emit`](crate::builder): IR → grammar productions — assignments,
//!   joins, loop fixpoints, interprocedural inlining — reached through
//!   [`builder::analyze`] / [`builder::analyze_cached`];
//! - [`builtins`]: models for ~250 PHP library functions, with precise
//!   transducers for the sanitization-relevant ones;
//! - condition refinement (paper §3.1.2): regex conditionals intersect
//!   variable grammars, which is how the analyzer distinguishes the
//!   anchored `preg_match('/^[\d]+$/', $id)` from the paper's
//!   Figure 2 bug `eregi('[0-9]+', $id)`;
//! - dynamic include resolution through the filesystem layout (§4).
//!
//! # Examples
//!
//! ```
//! use strtaint_analysis::{analyze, Config, Vfs};
//!
//! let mut vfs = Vfs::new();
//! vfs.add("page.php", r#"<?php
//! $id = $_GET['id'];
//! $r = $DB->query("SELECT * FROM t WHERE id='$id'");
//! "#);
//! let analysis = analyze(&vfs, "page.php", &Config::default()).unwrap();
//! assert_eq!(analysis.hotspots.len(), 1);
//! let root = analysis.hotspots[0].root;
//! assert!(analysis
//!     .cfg
//!     .derives(root, b"SELECT * FROM t WHERE id='1; DROP TABLE t'"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod builtins;
pub mod config;
mod emit;
mod emit_expr;
mod emit_include;
pub mod env;
pub mod frontend;
pub mod ir;
pub mod lower;
mod refine;
pub mod relevance;
mod sinks;
pub mod summary;
pub mod vfs;

pub use builder::{
    analyze, analyze_cached, analyze_with, Analysis, AnalyzeError, Hotspot, Provenance,
};
pub use frontend::{Frontend, FrontendError, FrontendSet, PhpFrontend, TplFrontend};
pub use summary::SummaryCache;
pub use config::Config;
pub use env::Env;
pub use vfs::Vfs;
