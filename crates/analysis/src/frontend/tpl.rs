//! The template/JS-flavored frontend: `strtaint-tpl` parsing plus its
//! own AST→IR walk, behind the [`Frontend`] trait.
//!
//! The lowering honors the same contract as [`crate::lower`] (see the
//! module docs there): it is config-independent, decides everything
//! decidable from source text alone (environment keys, constant
//! folding, φ pre-scans, refinement DFAs, transducer payloads), and
//! expresses sources and sinks in shared IR vocabulary so the emitter,
//! the [`SinkTable`](crate::sinks), and all policy checkers apply
//! unchanged:
//!
//! - **Sources**: `req.query.x` lowers to the same `IrExpr::Index`
//!   shape as PHP's `$_GET['x']` (environment key `_GET␀x`), so the
//!   emitter's superglobal recognition materializes the taint source.
//!   `req.body`→`_POST`, `req.cookies`→`_COOKIE`, `req.params`→
//!   `_REQUEST`, `req.headers`→`_SERVER`, and `session.x`→`_SESSION`
//!   (indirect taint) follow the same rule.
//! - **Sinks**: `{{ e }}` and `echo e` lower to [`IrStmt::Sink`]
//!   (the XSS/echo sink); `db.query(q)` keeps its method name so the
//!   configured `hotspot_methods` recognize it; `system`/`exec`/
//!   `eval`/`readfile`/... keep their names for the policy registry.
//! - **Sanitizers**: JS-flavored aliases canonicalize to the builtin
//!   model names (`escapeHtml`→`htmlspecialchars`, `escapeSql`→
//!   `addslashes`, `matches`→`preg_match`, ...), so the shared
//!   transducer/refinement machinery applies.
//! - **Concat**: `+` is string concatenation (`IrExpr::Concat`), the
//!   JS-flavored reading that is also the sound one for taint.

use std::collections::BTreeSet;
use std::sync::Arc;

use strtaint_automata::Regex;
use strtaint_php::ast::IncludeKind;
use strtaint_tpl::ast::{
    AssignOp as TAssign, BinOp as TBin, Expr as TExpr, ExprKind as TK, Stmt as TStmt,
    StmtKind as TS, Template, UnaryOp as TUnary,
};

use crate::builtins::{self, Model};
use crate::env::KEY_SEP;
use crate::ir::*;
use crate::lower;

use super::{fingerprint_of, Frontend, FrontendError};

/// Bump when template lowering output changes (invalidates cached
/// summaries lowered under the old semantics).
const LOWERING_VERSION: u32 = 1;

/// The template-language frontend.
#[derive(Debug, Clone, Copy, Default)]
pub struct TplFrontend;

impl Frontend for TplFrontend {
    fn id(&self) -> &'static str {
        "tpl"
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["tpl"]
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_of("tpl", LOWERING_VERSION)
    }

    fn lower(&self, src: &[u8]) -> Result<Vec<IrStmt>, FrontendError> {
        let template = strtaint_tpl::parse(src)?;
        Ok(lower_template(&template))
    }
}

fn span(s: strtaint_tpl::Span) -> strtaint_php::Span {
    strtaint_php::Span::new(s.line, s.col)
}

/// Maps a request/session accessor expression to the superglobal root
/// the emitter recognizes as a taint source.
fn resolve_root(e: &TExpr) -> Option<&'static str> {
    match &e.kind {
        TK::Ident(n) if n == "session" => Some("_SESSION"),
        TK::Member(base, name) => {
            if !matches!(&base.kind, TK::Ident(b) if b == "req" || b == "request") {
                return None;
            }
            match name.as_str() {
                "query" | "get" => Some("_GET"),
                "body" | "post" | "form" => Some("_POST"),
                "cookies" | "cookie" => Some("_COOKIE"),
                "params" => Some("_REQUEST"),
                "headers" => Some("_SERVER"),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Canonicalizes JS-flavored library names to the builtin-model (PHP)
/// names the shared sanitizer/transducer tables use.
fn canon_name(name: &str) -> &str {
    match name {
        "escapeHtml" | "escape_html" => "htmlspecialchars",
        "escapeSql" | "escape_sql" => "addslashes",
        "escapeShell" | "escape_shell" => "escapeshellarg",
        "parseInt" | "toInt" | "to_int" => "intval",
        "matches" => "preg_match",
        "replace" => "str_replace",
        "regexReplace" => "preg_replace",
        "toLowerCase" | "lowercase" => "strtolower",
        "toUpperCase" | "uppercase" => "strtoupper",
        "isNumeric" => "is_numeric",
        _ => name,
    }
}

/// Lowers a parsed template to IR.
pub(crate) fn lower_template(t: &Template) -> Vec<IrStmt> {
    lower_stmts(&t.stmts)
}

fn lower_stmts(stmts: &[TStmt]) -> Vec<IrStmt> {
    stmts.iter().map(lower_stmt).collect()
}

fn lower_stmt(s: &TStmt) -> IrStmt {
    match &s.kind {
        // Literal template text is constant output — like PHP inline
        // HTML, it can never carry taint and lowers to a no-op.
        TS::Text(_) => IrStmt::Nop,
        TS::Output(e) | TS::Echo(e) => IrStmt::Sink {
            args: vec![(lower_expr(e), span(e.span))],
            span: span(s.span),
        },
        TS::Var { name, init } => IrStmt::Eval(IrExpr::Assign {
            key: Some(name.clone()),
            op: AssignOp::Plain,
            rhs: Box::new(init.as_ref().map_or(IrExpr::Empty, lower_expr)),
        }),
        TS::Expr(e) => IrStmt::Eval(lower_expr(e)),
        TS::If {
            cond,
            then,
            elifs,
            els,
        } => IrStmt::If {
            cond: lower_cond(cond),
            then: lower_stmts(then),
            elifs: elifs
                .iter()
                .map(|(c, b)| (lower_cond(c), lower_stmts(b)))
                .collect(),
            els: els.as_ref().map(|b| lower_stmts(b)),
        },
        TS::While { cond, body } => {
            let mut assigned = BTreeSet::new();
            collect_assigned(body, &mut assigned);
            IrStmt::Loop {
                init: Vec::new(),
                cond: Some(lower_cond(cond)),
                step: Vec::new(),
                body: lower_stmts(body),
                phis: assigned.into_iter().collect(),
            }
        }
        TS::For { var, subject, body } => {
            let mut assigned = BTreeSet::new();
            collect_assigned(body, &mut assigned);
            IrStmt::Foreach {
                subject: lower_expr(subject),
                key: None,
                value: var.clone(),
                body: lower_stmts(body),
                phis: assigned.into_iter().collect(),
            }
        }
        TS::Func(f) => IrStmt::DeclFunc(Arc::new(FuncIr {
            name: f.name.clone(),
            params: f
                .params
                .iter()
                .map(|p| ParamIr {
                    name: p.clone(),
                    by_ref: false,
                    default: None,
                })
                .collect(),
            body: lower_stmts(&f.body),
        })),
        TS::Return(v) => IrStmt::Return(v.as_ref().map(lower_expr)),
        TS::Include(arg) => IrStmt::Include {
            kind: IncludeKind::Include,
            arg: lower_expr(arg),
            line: s.span.line,
        },
        TS::Exit => IrStmt::Exit(None),
        TS::Break => IrStmt::Break,
        TS::Continue => IrStmt::Continue,
    }
}

fn lower_expr(e: &TExpr) -> IrExpr {
    match &e.kind {
        TK::Null | TK::False => IrExpr::Empty,
        TK::True => IrExpr::Const(b"1".to_vec()),
        TK::Num(raw) => IrExpr::Const(raw.clone().into_bytes()),
        TK::Str(s) => IrExpr::Const(s.clone()),
        TK::Ident(n) => match resolve_root(e) {
            Some(root) => IrExpr::Var(root.to_owned()),
            None => IrExpr::Var(n.clone()),
        },
        TK::Member(base, name) => {
            // `req.query` alone reads the whole parameter map.
            if let Some(root) = resolve_root(e) {
                return IrExpr::Var(root.to_owned());
            }
            // `req.query.x` — same Index shape as PHP's `$_GET['x']`.
            if let Some(root) = resolve_root(base) {
                return IrExpr::Index {
                    side: None,
                    key: Some((format!("{root}{KEY_SEP}{name}"), root.to_owned())),
                    base: Box::new(IrExpr::Var(root.to_owned())),
                };
            }
            IrExpr::Prop {
                key: lvalue_key(e),
                base: Box::new(lower_expr(base)),
            }
        }
        TK::Index(base, idx) => {
            let side = match const_bytes(idx) {
                None => Some(Box::new(lower_expr(idx))),
                Some(_) => None,
            };
            let key = match (lvalue_key(e), lvalue_key(base)) {
                (Some(full), Some(b)) => Some((full, b)),
                _ => None,
            };
            IrExpr::Index {
                side,
                key,
                base: Box::new(lower_expr(base)),
            }
        }
        TK::Call(callee, args) => match &callee.kind {
            TK::Ident(name) => {
                let cname = canon_name(name);
                IrExpr::Call(Box::new(CallIr {
                    name: cname.to_owned(),
                    args: args.iter().map(lower_expr).collect(),
                    arg_keys: args.iter().map(lvalue_key).collect(),
                    arg_span: args.first().map(|a| span(a.span)),
                    span: span(e.span),
                    prep: call_prep(cname, args),
                }))
            }
            TK::Member(obj, m) => IrExpr::MethodCall(Box::new(MethodCallIr {
                method: m.clone(),
                obj: lower_expr(obj),
                args: args.iter().map(lower_expr).collect(),
                arg_keys: args.iter().map(lvalue_key).collect(),
                arg_span: args.first().map(|a| span(a.span)),
                span: span(e.span),
            })),
            // The parser only accepts names and members as callees.
            _ => IrExpr::BoolOf(args.iter().map(lower_expr).collect()),
        },
        TK::Unary(TUnary::Not, inner) => IrExpr::BoolOf(vec![lower_expr(inner)]),
        TK::Unary(TUnary::Neg, inner) => IrExpr::Numeric(vec![lower_expr(inner)]),
        TK::Binary(op, a, b) => match op {
            // `+` is string concatenation (JS-flavored; also the sound
            // reading for taint tracking).
            TBin::Add => IrExpr::Concat(Box::new(lower_expr(a)), Box::new(lower_expr(b))),
            TBin::Sub | TBin::Mul | TBin::Div | TBin::Mod => {
                IrExpr::Numeric(vec![lower_expr(a), lower_expr(b)])
            }
            _ => IrExpr::BoolOf(vec![lower_expr(a), lower_expr(b)]),
        },
        TK::Ternary(c, t, f) => IrExpr::Ternary {
            cond: Box::new(lower_cond(c)),
            then: Some(Box::new(lower_expr(t))),
            els: Box::new(lower_expr(f)),
        },
        TK::Assign { target, op, value } => IrExpr::Assign {
            key: lvalue_key(target),
            op: match op {
                TAssign::Assign => AssignOp::Plain,
                TAssign::AddAssign => AssignOp::Concat,
            },
            rhs: Box::new(lower_expr(value)),
        },
    }
}

/// Canonical environment key for a template lvalue (same key grammar
/// as the PHP frontend: `base␀index` elements, `base->member` props,
/// superglobal roots for request/session accessors).
fn lvalue_key(e: &TExpr) -> Option<String> {
    match &e.kind {
        TK::Ident(n) => Some(match resolve_root(e) {
            Some(root) => root.to_owned(),
            None => n.clone(),
        }),
        TK::Member(base, name) => {
            if let Some(root) = resolve_root(e) {
                return Some(root.to_owned());
            }
            if let Some(root) = resolve_root(base) {
                return Some(format!("{root}{KEY_SEP}{name}"));
            }
            let base_key = lvalue_key(base)?;
            Some(format!("{base_key}->{name}"))
        }
        TK::Index(base, idx) => {
            let base_key = lvalue_key(base)?;
            let key = match const_bytes(idx) {
                Some(b) => String::from_utf8_lossy(&b).into_owned(),
                None => "*".to_owned(),
            };
            Some(format!("{base_key}{KEY_SEP}{key}"))
        }
        _ => None,
    }
}

/// Constant-folds a template expression to bytes when it is a literal
/// or a concatenation of literals.
fn const_bytes(e: &TExpr) -> Option<Vec<u8>> {
    match &e.kind {
        TK::Str(s) => Some(s.clone()),
        TK::Num(raw) => Some(raw.clone().into_bytes()),
        TK::True => Some(b"1".to_vec()),
        TK::False | TK::Null => Some(Vec::new()),
        TK::Binary(TBin::Add, a, b) => {
            let mut out = const_bytes(a)?;
            out.extend(const_bytes(b)?);
            Some(out)
        }
        _ => None,
    }
}

// ------------------------------------------------------- conditions

fn lower_cond(e: &TExpr) -> Cond {
    Cond {
        pre: lower_expr(e),
        refine: lower_refine(e),
    }
}

fn lower_refine(e: &TExpr) -> Refine {
    match &e.kind {
        TK::Unary(TUnary::Not, inner) => Refine::Not(Box::new(lower_refine(inner))),
        TK::Binary(TBin::And, a, b) => {
            Refine::AndPos(Box::new(lower_refine(a)), Box::new(lower_refine(b)))
        }
        TK::Binary(TBin::Or, a, b) => {
            Refine::OrNeg(Box::new(lower_refine(a)), Box::new(lower_refine(b)))
        }
        TK::Binary(TBin::Eq | TBin::StrictEq, a, b) => lower_refine_eq(a, b),
        TK::Binary(TBin::Neq | TBin::StrictNeq, a, b) => {
            Refine::Not(Box::new(lower_refine_eq(a, b)))
        }
        TK::Call(callee, args) => match &callee.kind {
            TK::Ident(name) => lower_refine_call(canon_name(name), args),
            _ => Refine::None,
        },
        TK::Ident(_) | TK::Member(..) | TK::Index(..) => truthy_refine(e, false),
        TK::Assign {
            target,
            op: TAssign::Assign,
            ..
        } => truthy_refine(target, false),
        _ => Refine::None,
    }
}

fn truthy_refine(target: &TExpr, invert: bool) -> Refine {
    match lvalue_key(target) {
        Some(key) => Refine::Truthy {
            key,
            target: Box::new(lower_expr(target)),
            invert,
        },
        None => Refine::None,
    }
}

fn lower_refine_eq(a: &TExpr, b: &TExpr) -> Refine {
    // Comparisons against boolean literals are truthiness tests.
    let bool_of = |e: &TExpr| match e.kind {
        TK::True => Some(true),
        TK::False => Some(false),
        _ => None,
    };
    if let Some(v) = bool_of(a) {
        return truthy_refine(b, !v);
    }
    if let Some(v) = bool_of(b) {
        return truthy_refine(a, !v);
    }
    let (var_side, c) = match (const_bytes(a), const_bytes(b)) {
        (None, Some(c)) => (a, c),
        (Some(c), None) => (b, c),
        _ => return Refine::None,
    };
    match lvalue_key(var_side) {
        Some(key) => Refine::EqLit {
            key,
            target: Box::new(lower_expr(var_side)),
            bytes: c,
        },
        None => Refine::None,
    }
}

fn lower_refine_call(name: &str, args: &[TExpr]) -> Refine {
    match name {
        "preg_match" if args.len() >= 2 => {
            let Some(pat) = const_bytes(&args[0]) else {
                return Refine::None;
            };
            let pat = String::from_utf8_lossy(&pat).into_owned();
            match Regex::new_delimited(&pat) {
                Ok(re) => dfa_refine(&args[1], re.match_dfa(), "regex", "¬regex"),
                Err(_) => Refine::None,
            }
        }
        "is_numeric" if !args.is_empty() => {
            pattern_refine(&args[0], r"^\s*-?[0-9]+(\.[0-9]+)?\s*$")
        }
        "ctype_digit" if !args.is_empty() => pattern_refine(&args[0], "^[0-9]+$"),
        "ctype_alpha" if !args.is_empty() => pattern_refine(&args[0], "^[A-Za-z]+$"),
        "ctype_alnum" if !args.is_empty() => pattern_refine(&args[0], "^[A-Za-z0-9]+$"),
        "ctype_xdigit" if !args.is_empty() => pattern_refine(&args[0], "^[0-9A-Fa-f]+$"),
        "empty" if !args.is_empty() => truthy_refine(&args[0], true),
        _ => Refine::None,
    }
}

fn pattern_refine(target: &TExpr, pattern: &str) -> Refine {
    let re = Regex::new(pattern).expect("builtin refinement patterns are valid");
    dfa_refine(target, re.match_dfa(), "regex", "¬regex")
}

fn dfa_refine(
    target: &TExpr,
    dfa: strtaint_automata::Dfa,
    pos_what: &'static str,
    neg_what: &'static str,
) -> Refine {
    match lvalue_key(target) {
        Some(key) => Refine::Dfa {
            key,
            target: Box::new(lower_expr(target)),
            dfa: Arc::new(dfa),
            pos_what,
            neg_what,
        },
        None => Refine::None,
    }
}

// ------------------------------------------------------------ calls

fn call_prep(name: &str, args: &[TExpr]) -> CallPrep {
    if name == "define" && args.len() >= 2 {
        if let Some(cname) = const_bytes(&args[0]) {
            return CallPrep::Define(String::from_utf8_lossy(&cname).into_owned());
        }
    }
    match builtins::lookup(name) {
        Some(Model::Transducer(kind)) => {
            CallPrep::Apply(Arc::new(builtins::transducer_fst(kind)))
        }
        Some(Model::StrReplace) => CallPrep::ReplaceChain(prep_str_replace(args)),
        Some(Model::PregReplace { posix_ci, delimited }) => {
            CallPrep::RegexReplace(prep_preg_replace(args, posix_ci, delimited))
        }
        Some(Model::Sprintf) => CallPrep::Sprintf(
            args.first()
                .and_then(const_bytes)
                .map(|fmt| lower::sprintf_plan(&fmt)),
        ),
        Some(Model::Implode) => CallPrep::Implode(args.first().and_then(const_bytes)),
        Some(Model::Explode) => CallPrep::Explode(
            args.first()
                .and_then(const_bytes)
                .map(|d| Arc::new(lower::explode_piece_fst(&d))),
        ),
        Some(Model::StrRepeat) => {
            let count = args
                .get(1)
                .and_then(const_bytes)
                .and_then(|b| String::from_utf8_lossy(&b).parse::<usize>().ok());
            CallPrep::Repeat(match count {
                Some(n) if n <= 16 => Some(n),
                _ => None,
            })
        }
        _ => CallPrep::None,
    }
}

fn prep_str_replace(args: &[TExpr]) -> Option<Vec<Arc<strtaint_automata::Fst>>> {
    if args.len() < 3 {
        return None;
    }
    // The template language has no array literals: scalar pattern and
    // replacement only.
    let pats = vec![const_bytes(&args[0])?];
    let reps = vec![const_bytes(&args[1])?];
    lower::literal_replace_chain(&pats, &reps)
}

fn prep_preg_replace(
    args: &[TExpr],
    posix_ci: bool,
    delimited: bool,
) -> Option<Arc<strtaint_automata::Fst>> {
    if args.len() < 3 {
        return None;
    }
    let pat = const_bytes(&args[0])?;
    let rep = const_bytes(&args[1])?;
    lower::regex_replace_fst(&pat, &rep, posix_ci, delimited)
}

// ------------------------------------------------------- φ pre-scan

fn collect_assigned(stmts: &[TStmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match &s.kind {
            TS::Var { name, init } => {
                out.insert(name.clone());
                if let Some(e) = init {
                    collect_assigned_expr(e, out);
                }
            }
            TS::Expr(e) | TS::Output(e) | TS::Echo(e) | TS::Include(e) => {
                collect_assigned_expr(e, out);
            }
            TS::If {
                cond,
                then,
                elifs,
                els,
            } => {
                collect_assigned_expr(cond, out);
                collect_assigned(then, out);
                for (c, b) in elifs {
                    collect_assigned_expr(c, out);
                    collect_assigned(b, out);
                }
                if let Some(b) = els {
                    collect_assigned(b, out);
                }
            }
            TS::While { cond, body } => {
                collect_assigned_expr(cond, out);
                collect_assigned(body, out);
            }
            TS::For { var, subject, body } => {
                out.insert(var.clone());
                collect_assigned_expr(subject, out);
                collect_assigned(body, out);
            }
            TS::Return(Some(e)) => collect_assigned_expr(e, out),
            // Function declarations assign in their own scope.
            TS::Func(_)
            | TS::Text(_)
            | TS::Return(None)
            | TS::Exit
            | TS::Break
            | TS::Continue => {}
        }
    }
}

fn collect_assigned_expr(e: &TExpr, out: &mut BTreeSet<String>) {
    match &e.kind {
        TK::Assign { target, value, .. } => {
            if let Some(k) = lvalue_key(target) {
                out.insert(k);
            }
            collect_assigned_expr(value, out);
        }
        TK::Binary(_, a, b) | TK::Index(a, b) => {
            collect_assigned_expr(a, out);
            collect_assigned_expr(b, out);
        }
        TK::Member(a, _) | TK::Unary(_, a) => collect_assigned_expr(a, out),
        TK::Ternary(c, t, f) => {
            collect_assigned_expr(c, out);
            collect_assigned_expr(t, out);
            collect_assigned_expr(f, out);
        }
        TK::Call(callee, args) => {
            collect_assigned_expr(callee, out);
            for a in args {
                collect_assigned_expr(a, out);
            }
        }
        TK::Null
        | TK::True
        | TK::False
        | TK::Num(_)
        | TK::Str(_)
        | TK::Ident(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_src(src: &[u8]) -> Vec<IrStmt> {
        match TplFrontend.lower(src) {
            Ok(ir) => ir,
            Err(e) => panic!("lowering failed: {e}"),
        }
    }

    #[test]
    fn request_params_lower_to_superglobal_index() {
        let ir = lower_src(b"{% var id = req.query.id %}");
        let IrStmt::Eval(IrExpr::Assign { key, rhs, .. }) = &ir[0] else {
            panic!("expected assignment, got {:?}", ir[0]);
        };
        assert_eq!(key.as_deref(), Some("id"));
        let IrExpr::Index { key: Some((full, base)), .. } = rhs.as_ref() else {
            panic!("expected index, got {rhs:?}");
        };
        assert_eq!(full, &format!("_GET{KEY_SEP}id"));
        assert_eq!(base, "_GET");
    }

    #[test]
    fn session_reads_use_the_indirect_root() {
        let ir = lower_src(b"{% var u = session.user %}");
        let IrStmt::Eval(IrExpr::Assign { rhs, .. }) = &ir[0] else {
            panic!("expected assignment");
        };
        let IrExpr::Index { key: Some((full, base)), .. } = rhs.as_ref() else {
            panic!("expected index, got {rhs:?}");
        };
        assert_eq!(full, &format!("_SESSION{KEY_SEP}user"));
        assert_eq!(base, "_SESSION");
    }

    #[test]
    fn interpolation_is_a_sink_and_text_is_not() {
        let ir = lower_src(b"hello {{ name }}");
        assert!(matches!(ir[0], IrStmt::Nop));
        assert!(matches!(&ir[1], IrStmt::Sink { args, .. } if args.len() == 1));
    }

    #[test]
    fn method_calls_keep_their_names_for_sink_tables() {
        let ir = lower_src(b"{% db.query(q) %}");
        let IrStmt::Eval(IrExpr::MethodCall(mc)) = &ir[0] else {
            panic!("expected method call");
        };
        assert_eq!(mc.method, "query");
    }

    #[test]
    fn sanitizer_aliases_canonicalize_to_builtin_models() {
        let ir = lower_src(b"{% var s = escapeHtml(x) %}");
        let IrStmt::Eval(IrExpr::Assign { rhs, .. }) = &ir[0] else {
            panic!("expected assignment");
        };
        let IrExpr::Call(call) = rhs.as_ref() else {
            panic!("expected call, got {rhs:?}");
        };
        assert_eq!(call.name, "htmlspecialchars");
        assert!(matches!(call.prep, CallPrep::Apply(_)));
    }

    #[test]
    fn matches_compiles_to_a_dfa_refinement() {
        let ir = lower_src(b"{% if matches(\"/^[a-z]+$/\", f) %}{{ f }}{% end %}");
        let IrStmt::If { cond, .. } = &ir[0] else {
            panic!("expected if");
        };
        assert!(matches!(cond.refine, Refine::Dfa { .. }), "{:?}", cond.refine);
    }

    #[test]
    fn plus_is_concat_and_loops_get_phis() {
        let ir = lower_src(b"{% while x %}{% q = q + \"a\" %}{% end %}");
        let IrStmt::Loop { phis, .. } = &ir[0] else {
            panic!("expected loop");
        };
        assert_eq!(phis, &["q".to_owned()]);
        let ir = lower_src(b"{% var q = a + b %}");
        let IrStmt::Eval(IrExpr::Assign { rhs, .. }) = &ir[0] else {
            panic!("expected assignment");
        };
        assert!(matches!(rhs.as_ref(), IrExpr::Concat(..)));
    }

    #[test]
    fn for_lowers_to_foreach_with_value_phi() {
        let ir = lower_src(b"{% for row in rows %}{{ row }}{% end %}");
        let IrStmt::Foreach { value, key, .. } = &ir[0] else {
            panic!("expected foreach");
        };
        assert_eq!(value, "row");
        assert!(key.is_none());
    }

    #[test]
    fn include_records_its_line() {
        let ir = lower_src(b"\n\n{% include \"header.tpl\" %}");
        let IrStmt::Include { kind, line, .. } = &ir[1] else {
            panic!("expected include, got {:?}", ir[1]);
        };
        assert_eq!(*kind, IncludeKind::Include);
        assert_eq!(*line, 3);
    }
}
