//! The PHP frontend: `strtaint-php` parsing + the original
//! [`crate::lower`] AST walk, behind the [`Frontend`] trait.
//!
//! This impl is a thin adapter — the parse and lowering code paths are
//! exactly the ones the analyzer has always run, so IR output (and
//! therefore every downstream grammar, verdict, and SARIF byte) is
//! identical to the pre-trait analyzer.

use crate::ir::IrStmt;
use crate::lower;

use super::{fingerprint_of, Frontend, FrontendError};

/// Bump when PHP lowering output changes (invalidates cached
/// summaries lowered under the old semantics).
const LOWERING_VERSION: u32 = 1;

/// The PHP language frontend.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhpFrontend;

impl Frontend for PhpFrontend {
    fn id(&self) -> &'static str {
        "php"
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["php"]
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_of("php", LOWERING_VERSION)
    }

    fn lower(&self, src: &[u8]) -> Result<Vec<IrStmt>, FrontendError> {
        let file = strtaint_php::parse(src)?;
        Ok(lower::lower_file(&file))
    }
}
