//! Frontend abstraction: language → dataflow IR.
//!
//! The paper's pipeline (program → dataflow IR → context-free grammar →
//! policy-automaton conformance) is language-agnostic from the IR on
//! down. This module makes that boundary a real trait: a [`Frontend`]
//! parses one source language and lowers it to the shared IR
//! ([`crate::ir`]) with source spans; everything behind the IR —
//! summaries, the [`crate::SummaryCache`], sink recognition, grammar
//! extraction, the prepared engine, the query cache, the daemon —
//! is frontend-independent.
//!
//! The contract a frontend must honor (see DESIGN.md §14):
//!
//! - **Lowering is config-independent.** All configuration (source
//!   lists, sink tables, policies) is consulted at emit, never during
//!   lowering, so one lowered summary serves every page and config.
//! - **Spans are 1-based `line:col`** pointing into the file the
//!   frontend parsed; the emitter attaches file paths.
//! - **Sources and sinks are expressed in IR vocabulary**, not new
//!   node kinds: a request parameter lowers to the same
//!   `Var`/`Index` shapes the PHP superglobals use (so the emitter's
//!   taint-source recognition applies unchanged), output statements
//!   lower to `IrStmt::Sink`, and calls keep their (canonicalized)
//!   names so the shared [`SinkTable`](crate::sinks) and builtin
//!   models apply.
//! - **The fingerprint names the lowering.** [`Frontend::fingerprint`]
//!   must change whenever the frontend's lowering semantics change;
//!   it keys the summary cache alongside the content hash and is
//!   folded into [`crate::Config::fingerprint`].
//! - **Errors render as `parse error at L:C: message`** so analysis
//!   warnings are byte-identical across frontends.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::config::Config;
use crate::ir::IrStmt;

mod php;
mod tpl;

pub use php::PhpFrontend;
pub use tpl::TplFrontend;

/// A parse/lowering failure in some frontend.
///
/// Renders exactly like the PHP frontend's parse error
/// (`parse error at L:C: message`) so warning text stays
/// byte-identical regardless of which frontend produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendError {
    /// What went wrong.
    pub message: String,
    /// Where (1-based line/column).
    pub span: strtaint_php::Span,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for FrontendError {}

impl From<strtaint_php::ParsePhpError> for FrontendError {
    fn from(e: strtaint_php::ParsePhpError) -> Self {
        FrontendError {
            message: e.message,
            span: e.span,
        }
    }
}

impl From<strtaint_tpl::ParseTplError> for FrontendError {
    fn from(e: strtaint_tpl::ParseTplError) -> Self {
        FrontendError {
            message: e.message,
            span: strtaint_php::Span::new(e.span.line, e.span.col),
        }
    }
}

/// One source language: parse + lower to the shared dataflow IR.
///
/// Implementations must be pure functions of the source bytes (no
/// config, no filesystem): that is what lets the summary cache share
/// one lowering across pages, configs, and daemon requests.
pub trait Frontend: Send + Sync + fmt::Debug {
    /// Stable identifier (`"php"`, `"tpl"`) — used in config frontend
    /// lists, extension overrides, and daemon verdict evidence.
    fn id(&self) -> &'static str;

    /// File extensions this frontend claims by default (lowercase,
    /// without the dot).
    fn extensions(&self) -> &'static [&'static str];

    /// Fingerprint of this frontend's lowering semantics. Keys the
    /// summary cache next to the content hash and is folded into
    /// [`Config::fingerprint`]; bump the internal version constant
    /// whenever lowering output changes.
    fn fingerprint(&self) -> u64;

    /// Parses and lowers one file to IR statements.
    fn lower(&self, src: &[u8]) -> Result<Vec<IrStmt>, FrontendError>;
}

/// Hashes a frontend's `(id, lowering-version)` pair into its
/// fingerprint (helper for implementations).
pub(crate) fn fingerprint_of(id: &str, version: u32) -> u64 {
    let mut h = DefaultHasher::new();
    id.hash(&mut h);
    version.hash(&mut h);
    h.finish()
}

/// The resolved set of frontends for one analysis: which languages are
/// enabled and which file extension dispatches to which frontend.
///
/// Unknown extensions fall back to PHP — the behavior the analyzer has
/// always had — so pure-PHP trees are lowered exactly as before the
/// frontend abstraction existed.
#[derive(Debug, Clone)]
pub struct FrontendSet {
    frontends: Vec<Arc<dyn Frontend>>,
    by_ext: HashMap<String, usize>,
    default: usize,
}

impl FrontendSet {
    /// Builds the frontend set a config selects: `config.frontends`
    /// names the languages, `config.extension_overrides` remaps file
    /// extensions. PHP is always present (it is the fallback).
    pub fn from_config(config: &Config) -> Self {
        let mut frontends: Vec<Arc<dyn Frontend>> = Vec::new();
        let push = |f: Arc<dyn Frontend>, frontends: &mut Vec<Arc<dyn Frontend>>| {
            if !frontends.iter().any(|g| g.id() == f.id()) {
                frontends.push(f);
            }
        };
        for name in &config.frontends {
            match name.as_str() {
                "php" => push(Arc::new(PhpFrontend), &mut frontends),
                "tpl" => push(Arc::new(TplFrontend), &mut frontends),
                // Unknown names are ignored: config fingerprints still
                // change, and the PHP fallback keeps analysis total.
                _ => {}
            }
        }
        if !frontends.iter().any(|f| f.id() == "php") {
            frontends.insert(0, Arc::new(PhpFrontend));
        }
        let mut by_ext = HashMap::new();
        for (i, f) in frontends.iter().enumerate() {
            for ext in f.extensions() {
                by_ext.insert((*ext).to_owned(), i);
            }
        }
        for (ext, id) in &config.extension_overrides {
            if let Some(i) = frontends.iter().position(|f| f.id() == id) {
                by_ext.insert(ext.to_lowercase(), i);
            }
        }
        let default = frontends
            .iter()
            .position(|f| f.id() == "php")
            .unwrap_or(0);
        FrontendSet {
            frontends,
            by_ext,
            default,
        }
    }

    /// The frontend responsible for `path`, by file extension
    /// (PHP for unknown extensions).
    pub fn for_path(&self, path: &str) -> &dyn Frontend {
        let ext = path
            .rsplit('/')
            .next()
            .and_then(|name| name.rsplit_once('.'))
            .map(|(_, e)| e.to_lowercase());
        let idx = ext
            .and_then(|e| self.by_ext.get(&e).copied())
            .unwrap_or(self.default);
        self.frontends[idx].as_ref()
    }

    /// Looks a frontend up by id.
    pub fn by_id(&self, id: &str) -> Option<&dyn Frontend> {
        self.frontends
            .iter()
            .find(|f| f.id() == id)
            .map(|f| f.as_ref())
    }

    /// All enabled frontends, in config order (PHP guaranteed).
    pub fn all(&self) -> impl Iterator<Item = &dyn Frontend> {
        self.frontends.iter().map(|f| f.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn php_is_the_fallback_for_unknown_extensions() {
        let set = FrontendSet::from_config(&Config::default());
        assert_eq!(set.for_path("a/b/page.php").id(), "php");
        assert_eq!(set.for_path("a/b/page.tpl").id(), "tpl");
        assert_eq!(set.for_path("README.txt").id(), "php");
        assert_eq!(set.for_path("no_extension").id(), "php");
    }

    #[test]
    fn extension_overrides_remap_dispatch() {
        let mut config = Config::default();
        config
            .extension_overrides
            .insert("html".to_owned(), "tpl".to_owned());
        let set = FrontendSet::from_config(&config);
        assert_eq!(set.for_path("page.html").id(), "tpl");
        // Overriding to an unknown frontend id is ignored.
        config
            .extension_overrides
            .insert("php".to_owned(), "cobol".to_owned());
        let set = FrontendSet::from_config(&config);
        assert_eq!(set.for_path("page.php").id(), "php");
    }

    #[test]
    fn php_is_always_present_even_if_not_listed() {
        let config = Config {
            frontends: vec!["tpl".to_owned()],
            ..Config::default()
        };
        let set = FrontendSet::from_config(&config);
        assert!(set.by_id("php").is_some());
        assert_eq!(set.for_path("x.weird").id(), "php");
    }

    #[test]
    fn fingerprints_are_distinct_per_frontend() {
        let set = FrontendSet::from_config(&Config::default());
        let php = set.by_id("php").map(|f| f.fingerprint());
        let tpl = set.by_id("tpl").map(|f| f.fingerprint());
        assert!(php.is_some() && tpl.is_some() && php != tpl);
    }

    #[test]
    fn error_display_is_php_format_identical() {
        let php_err = strtaint_php::parse(b"<?php $x = ;").map(|_| ());
        let tpl_err = strtaint_tpl::parse(b"{{ }}").map(|_| ());
        let (Err(p), Err(t)) = (php_err, tpl_err) else {
            panic!("both parsers must reject");
        };
        let p = FrontendError::from(p).to_string();
        let t = FrontendError::from(t).to_string();
        assert!(p.starts_with("parse error at "), "{p}");
        assert!(t.starts_with("parse error at "), "{t}");
    }
}
