//! Include handling for the [`Emitter`]: dynamic include resolution
//! through the filesystem layout (paper §4), manual overrides,
//! `*_once` guards — and, when the path-traversal policy is enabled,
//! the include argument itself as a policy hotspot (a tainted include
//! path is the canonical local-file-inclusion sink).

use std::rc::Rc;

use strtaint_automata::{Dfa, Nfa};
use strtaint_grammar::budget::DegradeAction;
use strtaint_grammar::intersect::intersect_with;
use strtaint_grammar::lang::bounded_language;
use strtaint_php::ast::IncludeKind;
use strtaint_php::Span;

use crate::builder::{Hotspot, Provenance};
use crate::emit::Emitter;
use crate::env::Env;
use crate::ir::IrExpr;
use crate::vfs::normalize;

impl Emitter<'_> {
    fn layout_dfa(&mut self) -> Rc<Dfa> {
        if let Some(d) = &self.layout {
            return Rc::clone(d);
        }
        let mut nfa = Nfa::empty();
        for p in self.vfs.paths() {
            nfa = nfa.union(&Nfa::literal(p.as_bytes()));
            // Also accept the common "./path" spelling.
            let dotted = format!("./{p}");
            nfa = nfa.union(&Nfa::literal(dotted.as_bytes()));
        }
        let d = Rc::new(Dfa::from_nfa(&nfa).minimize());
        self.layout = Some(Rc::clone(&d));
        d
    }

    pub(crate) fn handle_include(
        &mut self,
        kind: IncludeKind,
        arg: &IrExpr,
        line: u32,
        env: &mut Env,
    ) {
        let nt = self.eval(arg, env);
        // Path policy: the include argument is a sink in its own right,
        // checked against the traversal cascade regardless of whether
        // the layout intersection below manages to resolve it.
        if let Some(policy) = self.sinks.include_policy {
            self.hotspots.push(Hotspot {
                file: self.cur_file.clone(),
                span: Span::new(line, 1),
                label: "include".to_owned(),
                root: nt,
                policy: policy.to_owned(),
                provenance: Provenance {
                    summary: self.cur_summary,
                    arg_span: None,
                },
            });
        }
        let site = format!("{}:{}", self.cur_file, line);
        let paths: Vec<String> = if let Some(ovr) = self.config.include_overrides.get(&site)
        {
            ovr.clone()
        } else if self.reaches_open_header(nt) {
            self.warn(format!("dynamic include at {site} inside loop skipped"));
            return;
        } else {
            let direct = bounded_language(&self.cfg, nt, self.config.max_include_fanout);
            let lang = match direct {
                Some(l) => Some(l),
                None => {
                    // §4: intersect with the filesystem layout, treating
                    // the directory tree as part of the specification.
                    let layout = self.layout_dfa();
                    let budget = self.budget.clone();
                    match intersect_with(&self.cfg, nt, &layout, &budget) {
                        Ok((g2, r2)) => {
                            bounded_language(&g2, r2, self.config.max_include_fanout)
                        }
                        Err(err) => {
                            self.degrade(
                                err,
                                &format!("include@{site}"),
                                DegradeAction::KeptUnrefined,
                            );
                            // Fall through to the unresolved-include
                            // warning below.
                            None
                        }
                    }
                }
            };
            match lang {
                Some(l) if !l.is_empty() => l
                    .into_iter()
                    .map(|b| String::from_utf8_lossy(&b).into_owned())
                    .collect(),
                Some(_) => {
                    self.warn(format!(
                        "dynamic include at {site} matches no file in the layout"
                    ));
                    return;
                }
                None => {
                    self.warn(format!(
                        "dynamic include at {site} unresolved (provide an override)"
                    ));
                    return;
                }
            }
        };
        for p in paths {
            self.include_file(&p, kind, env);
        }
    }

    fn include_file(&mut self, path: &str, kind: IncludeKind, env: &mut Env) {
        let norm = normalize(path);
        let once = matches!(kind, IncludeKind::IncludeOnce | IncludeKind::RequireOnce);
        if once && self.include_once.contains(&norm) {
            return;
        }
        let Some(src) = self.vfs.get(&norm) else {
            self.warn(format!("included file not found: {norm}"));
            return;
        };
        if once {
            self.include_once.insert(norm.clone());
        }
        // The summary cache replaces the per-analyzer parse cache: a
        // repeated include re-emits the shared IR instead of re-walking
        // a re-parsed AST. Parse failures are not cached and re-warn on
        // every occurrence, exactly like the single-pass builder. The
        // included file's extension picks its frontend, so a PHP page
        // can include a template partial and vice versa.
        let frontend = self.frontends.for_path(&norm);
        let summary = match self.summaries.get_or_lower(frontend, src, self.config) {
            Ok(s) => s,
            Err(e) => {
                self.warn(format!("included file {norm} failed to parse: {e}"));
                return;
            }
        };
        let prev = std::mem::replace(&mut self.cur_file, norm);
        let prev_summary = std::mem::replace(&mut self.cur_summary, summary.content_hash);
        self.files_analyzed += 1;
        self.inputs.insert(self.cur_file.clone());
        self.register_functions(&summary.body);
        self.emit_stmts(&summary.body, env);
        self.cur_file = prev;
        self.cur_summary = prev_summary;
    }
}
