//! Conditional refinement (paper §3.1.2, last paragraph).
//!
//! When a branch condition constrains a string variable — a regex
//! match, an equality test, a type predicate — the analysis intersects
//! the variable's grammar with the condition's language on the `then`
//! branch and with its complement on the `else` branch. This is what
//! lets the analyzer *prove* code safe when the filter is right
//! (`preg_match('/^[\d]+$/', $id)`) and *keep the attack strings* when
//! it is not (`eregi('[0-9]+', $id)`, the paper's Figure 2 bug).
//!
//! The condition's *shape* — which variable is constrained and by what
//! language — is recognized once at lowering into a [`Refine`] tree;
//! this module interprets that tree against the current environment,
//! building the branch-polarity DFA and performing the grammar
//! intersection (the only parts that need the emitter's state).

use strtaint_automata::{Dfa, Nfa};
use strtaint_grammar::Symbol;

use crate::emit::Emitter;
use crate::env::Env;
use crate::ir::{IrExpr, Refine};

impl Emitter<'_> {
    /// Refines `env` under the assumption that the condition carrying
    /// `r` evaluated to `positive`. `Refine::None` refines nothing
    /// (sound).
    pub(crate) fn apply_refine(&mut self, r: &Refine, env: &mut Env, positive: bool) {
        match r {
            Refine::None => {}
            Refine::Not(inner) => self.apply_refine(inner, env, !positive),
            Refine::AndPos(a, b) => {
                if positive {
                    self.apply_refine(a, env, true);
                    self.apply_refine(b, env, true);
                }
                // ¬(a ∧ b) is a disjunction — no single-env refinement.
                // (This is exactly the imprecision behind the paper's
                // Figure 9 false positive.)
            }
            Refine::OrNeg(a, b) => {
                if !positive {
                    self.apply_refine(a, env, false);
                    self.apply_refine(b, env, false);
                }
            }
            Refine::Truthy {
                key,
                target,
                invert,
            } => {
                let truthy = positive != *invert;
                self.refine_truthiness(key, target, env, truthy);
            }
            Refine::EqLit { key, target, bytes } => {
                if positive {
                    self.refine_to_literal(key, bytes, env);
                } else {
                    // Intersect with the complement of {bytes}.
                    let lit_dfa = Dfa::from_nfa(&Nfa::literal(bytes)).complement();
                    self.refine_with_dfa(key, target, &lit_dfa, env, "≠literal");
                }
            }
            Refine::Dfa {
                key,
                target,
                dfa,
                pos_what,
                neg_what,
            } => {
                if positive {
                    self.refine_with_dfa(key, target, dfa, env, pos_what);
                } else {
                    let c = dfa.complement();
                    self.refine_with_dfa(key, target, &c, env, neg_what);
                }
            }
        }
    }

    /// Narrows `key`'s binding to a constant (`case` labels, `==`
    /// against a literal). Reads the existing binding only — a missing
    /// binding (an unread superglobal, say) refines nothing.
    pub(crate) fn refine_to_literal(&mut self, key: &str, bytes: &[u8], env: &mut Env) {
        let Some(old) = env.get(key) else { return };
        // The refined value is the constant, but it still carries the
        // variable's taint (a user-chosen value that happens to equal
        // the constant).
        let taint = self.reachable_taint(old);
        let lit = self.literal_nt(bytes);
        if taint.is_empty() {
            env.set(key.to_owned(), lit);
        } else {
            let nt = self.cfg.add_nonterminal(format!("{key}=lit"));
            self.cfg.add_production(nt, vec![Symbol::N(lit)]);
            self.cfg.set_taint(nt, taint);
            env.set(key.to_owned(), nt);
        }
    }

    fn refine_truthiness(&mut self, key: &str, target: &IrExpr, env: &mut Env, truthy: bool) {
        // Falsy strings: "" and "0".
        let falsy = Nfa::literal(b"").union(&Nfa::literal(b"0"));
        let dfa = if truthy {
            Dfa::from_nfa(&falsy).complement()
        } else {
            Dfa::from_nfa(&falsy)
        };
        self.refine_with_dfa(key, target, &dfa, env, "truthiness");
    }

    fn refine_with_dfa(
        &mut self,
        key: &str,
        target: &IrExpr,
        dfa: &Dfa,
        env: &mut Env,
        what: &str,
    ) {
        let _span = strtaint_obs::Span::enter_with("refine", || what.to_owned());
        // Materialize superglobal reads so the refinement has a binding
        // to narrow.
        if env.get(key).is_none() {
            let mut scratch = env.clone();
            let _ = self.eval(target, &mut scratch);
            *env = scratch;
        }
        let Some(old) = env.get(key) else { return };
        let new = self.intersect_nt(old, dfa, what);
        env.set(key.to_owned(), new);
    }
}
