//! Conditional refinement (paper §3.1.2, last paragraph).
//!
//! When a branch condition constrains a string variable — a regex
//! match, an equality test, a type predicate — the analysis intersects
//! the variable's grammar with the condition's language on the `then`
//! branch and with its complement on the `else` branch. This is what
//! lets the analyzer *prove* code safe when the filter is right
//! (`preg_match('/^[\d]+$/', $id)`) and *keep the attack strings* when
//! it is not (`eregi('[0-9]+', $id)`, the paper's Figure 2 bug).

use strtaint_automata::{Dfa, Nfa, Regex};
use strtaint_grammar::Taint;
use strtaint_php::ast::*;

use crate::builder::{const_bytes_static, Analyzer};
use crate::env::Env;

impl Analyzer<'_> {
    /// Refines `env` under the assumption that `cond` evaluated to
    /// `positive`. Unrecognized conditions refine nothing (sound).
    pub(crate) fn refine(&mut self, cond: &Expr, env: &mut Env, positive: bool) {
        match &cond.kind {
            ExprKind::Unary(UnaryOp::Not, inner) => self.refine(inner, env, !positive),
            ExprKind::Suppress(inner) => self.refine(inner, env, positive),
            ExprKind::Binary(BinOp::And, a, b) => {
                if positive {
                    self.refine(a, env, true);
                    self.refine(b, env, true);
                }
                // ¬(a ∧ b) is a disjunction — no single-env refinement.
                // (This is exactly the imprecision behind the paper's
                // Figure 9 false positive.)
            }
            ExprKind::Binary(BinOp::Or, a, b) => {
                if !positive {
                    self.refine(a, env, false);
                    self.refine(b, env, false);
                }
            }
            ExprKind::Binary(op @ (BinOp::Eq | BinOp::Identical), a, b) => {
                self.refine_equality(a, b, env, positive, *op);
            }
            ExprKind::Binary(op @ (BinOp::Neq | BinOp::NotIdentical), a, b) => {
                let eq_op = if *op == BinOp::Neq {
                    BinOp::Eq
                } else {
                    BinOp::Identical
                };
                self.refine_equality(a, b, env, !positive, eq_op);
            }
            ExprKind::Call(name, args) => self.refine_call(name, args, env, positive),
            ExprKind::Var(_) | ExprKind::Index(..) | ExprKind::Prop(..) => {
                // Truthiness: falsy strings are "" and "0".
                self.refine_truthiness(cond, env, positive);
            }
            ExprKind::Assign(lhs, None, _) => {
                // `if ($r = f(...))` — refine the assigned variable's
                // truthiness.
                self.refine_truthiness(lhs, env, positive);
            }
            _ => {}
        }
    }

    /// `case` label refinement in `switch`.
    pub(crate) fn refine_case(&mut self, subject: &Expr, label: &Expr, env: &mut Env) {
        if let Some(bytes) = const_bytes_static(label) {
            self.refine_to_literal(subject, &bytes, env);
        }
    }

    fn refine_equality(
        &mut self,
        a: &Expr,
        b: &Expr,
        env: &mut Env,
        equal: bool,
        _op: BinOp,
    ) {
        // Normalize so the variable is on the left.
        let (var_side, const_side) = match (const_bytes_static(a), const_bytes_static(b)) {
            (None, Some(c)) => (a, Some(c)),
            (Some(c), None) => (b, Some(c)),
            _ => (a, None),
        };
        // Comparisons against boolean literals are truthiness tests.
        if matches!(
            (&a.kind, &b.kind),
            (_, ExprKind::Bool(_)) | (ExprKind::Bool(_), _)
        ) {
            let bool_val = match (&a.kind, &b.kind) {
                (_, ExprKind::Bool(v)) | (ExprKind::Bool(v), _) => *v,
                _ => unreachable!(),
            };
            let var = if matches!(b.kind, ExprKind::Bool(_)) { a } else { b };
            self.refine_truthiness(var, env, equal == bool_val);
            return;
        }
        let Some(c) = const_side else { return };
        if equal {
            self.refine_to_literal(var_side, &c, env);
        } else {
            // Intersect with the complement of {c}.
            let lit_dfa = Dfa::from_nfa(&Nfa::literal(&c)).complement();
            self.refine_with_dfa(var_side, &lit_dfa, env, "≠literal");
        }
    }

    fn refine_to_literal(&mut self, var: &Expr, bytes: &[u8], env: &mut Env) {
        let Some(key) = self.lvalue_key(var) else { return };
        let Some(old) = env.get(&key) else { return };
        // The refined value is the constant, but it still carries the
        // variable's taint (a user-chosen value that happens to equal
        // the constant).
        let taint = self.reachable_taint(old);
        let lit = self.literal_nt(bytes);
        if taint.is_empty() {
            env.set(key, lit);
        } else {
            let nt = self.cfg.add_nonterminal(format!("{key}=lit"));
            self.cfg
                .add_production(nt, vec![strtaint_grammar::Symbol::N(lit)]);
            self.cfg.set_taint(nt, taint);
            env.set(key, nt);
        }
    }

    fn refine_truthiness(&mut self, var: &Expr, env: &mut Env, truthy: bool) {
        // Falsy strings: "" and "0".
        let falsy = Nfa::literal(b"").union(&Nfa::literal(b"0"));
        let dfa = if truthy {
            Dfa::from_nfa(&falsy).complement()
        } else {
            Dfa::from_nfa(&falsy)
        };
        self.refine_with_dfa(var, &dfa, env, "truthiness");
    }

    fn refine_call(&mut self, name: &str, args: &[Expr], env: &mut Env, positive: bool) {
        match name {
            "preg_match" if args.len() >= 2 => {
                if let Some(pat) = const_bytes_static(&args[0]) {
                    let pat = String::from_utf8_lossy(&pat).into_owned();
                    if let Ok(re) = Regex::new_delimited(&pat) {
                        self.refine_regex(&args[1], &re, env, positive);
                    }
                }
            }
            "ereg" | "eregi" if args.len() >= 2 => {
                if let Some(pat) = const_bytes_static(&args[0]) {
                    let pat = String::from_utf8_lossy(&pat).into_owned();
                    if let Ok(re) = Regex::with_flags(&pat, name == "eregi") {
                        self.refine_regex(&args[1], &re, env, positive);
                    }
                }
            }
            "is_numeric" if !args.is_empty() => {
                self.refine_pattern(&args[0], r"^\s*-?[0-9]+(\.[0-9]+)?\s*$", env, positive);
            }
            "ctype_digit" if !args.is_empty() => {
                self.refine_pattern(&args[0], "^[0-9]+$", env, positive);
            }
            "ctype_alpha" if !args.is_empty() => {
                self.refine_pattern(&args[0], "^[A-Za-z]+$", env, positive);
            }
            "ctype_alnum" if !args.is_empty() => {
                self.refine_pattern(&args[0], "^[A-Za-z0-9]+$", env, positive);
            }
            "ctype_xdigit" if !args.is_empty() => {
                self.refine_pattern(&args[0], "^[0-9A-Fa-f]+$", env, positive);
            }
            "empty" if !args.is_empty() => {
                self.refine_truthiness(&args[0], env, !positive);
            }
            "in_array" if args.len() >= 2 => {
                if let ExprKind::Array(items) = &args[1].kind {
                    let mut lits: Vec<Vec<u8>> = Vec::new();
                    for (_, v) in items {
                        match const_bytes_static(v) {
                            Some(b) => lits.push(b),
                            None => return,
                        }
                    }
                    let mut nfa = Nfa::empty();
                    for l in &lits {
                        nfa = nfa.union(&Nfa::literal(l));
                    }
                    let dfa = Dfa::from_nfa(&nfa);
                    let dfa = if positive { dfa } else { dfa.complement() };
                    self.refine_with_dfa(&args[0], &dfa, env, "in_array");
                }
            }
            _ => {}
        }
    }

    fn refine_pattern(&mut self, var: &Expr, pattern: &str, env: &mut Env, positive: bool) {
        let re = Regex::new(pattern).expect("builtin refinement patterns are valid");
        self.refine_regex(var, &re, env, positive);
    }

    fn refine_regex(&mut self, var: &Expr, re: &Regex, env: &mut Env, positive: bool) {
        let dfa = re.match_dfa();
        let dfa = if positive { dfa } else { dfa.complement() };
        let what = if positive { "regex" } else { "¬regex" };
        self.refine_with_dfa(var, &dfa, env, what);
    }

    fn refine_with_dfa(&mut self, var: &Expr, dfa: &Dfa, env: &mut Env, what: &str) {
        let Some(key) = self.lvalue_key(var) else { return };
        // Materialize superglobal reads so the refinement has a binding
        // to narrow.
        if env.get(&key).is_none() {
            let mut scratch = env.clone();
            let _ = self.eval(var, &mut scratch);
            *env = scratch;
        }
        let Some(old) = env.get(&key) else { return };
        let new = self.intersect_nt(old, dfa, what);
        env.set(key, new);
    }
}

/// Used by tests to check taint plumbing without running refinement.
#[allow(dead_code)]
fn _taint_witness() -> Taint {
    Taint::DIRECT
}
