//! Models of PHP's standard library functions.
//!
//! The paper's implementation "added specifications for 243 PHP
//! functions" (§4). This catalog plays the same role: every function a
//! web application is likely to touch maps to a [`Model`] describing
//! its effect on string values and taint. Functions with genuinely
//! string-transducing behavior get precise finite-state transducers;
//! numeric/boolean functions get exact result *languages* (which is
//! what the conformance checks consume); the rest get a sound Σ*
//! over-approximation that preserves argument taint.
//!
//! Unlisted functions fall back to Σ*-keep-taint and are reported in
//! the analysis statistics, mirroring the paper's workflow of adding
//! specs on demand.

use strtaint_automata::fst::{builders, Fst};
use strtaint_automata::{ByteSet, OutSym};

/// How a builtin transforms its (string) arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Returns argument 0 unchanged (e.g. `strval`).
    Identity,
    /// Applies a finite-state transducer to argument 0.
    Transducer(Transducer),
    /// Result is a numeric literal; taint of the arguments is kept.
    Numeric,
    /// Result is a fixed-length lowercase-hex token (e.g. `md5`).
    HexToken,
    /// Result draws only from `[A-Za-z0-9+/=]` (e.g. `base64_encode`);
    /// taint kept.
    Base64,
    /// Result draws only from URL-encoded-safe bytes; taint kept.
    UrlSafe,
    /// Result is any string; taint of arguments is kept (sound
    /// fallback for under-modeled string functions like `substr`).
    AnyKeepTaint,
    /// Result is any string with no taint (environment data such as
    /// `date()` with a program-chosen format).
    AnyUntainted,
    /// Result is the empty string / irrelevant non-string (e.g.
    /// side-effect functions like `header`).
    ConstEmpty,
    /// Result is a PHP boolean rendered to `"1"`/`""`.
    Bool,
    /// `str_replace` — handled structurally by the builder (needs the
    /// literal pattern/replacement arguments).
    StrReplace,
    /// `preg_replace`-family — handled structurally.
    PregReplace {
        /// POSIX `ereg_replace` (no delimiters), `true` for
        /// case-insensitive `eregi_replace`.
        posix_ci: bool,
        /// Whether the pattern has PCRE delimiters.
        delimited: bool,
    },
    /// `sprintf` — handled structurally (needs the literal format).
    Sprintf,
    /// `implode` — handled structurally.
    Implode,
    /// `explode` — handled structurally.
    Explode,
    /// `str_repeat` — handled structurally (constant counts unroll).
    StrRepeat,
}

/// Precisely-modeled transducers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transducer {
    /// `addslashes`
    AddSlashes,
    /// `stripslashes`
    StripSlashes,
    /// `mysql_real_escape_string` / `mysql_escape_string`
    MysqlEscape,
    /// `strtolower`
    Lower,
    /// `strtoupper`
    Upper,
    /// `trim`
    Trim,
    /// `ltrim`
    Ltrim,
    /// `rtrim` / `chop`
    Rtrim,
    /// `htmlspecialchars` / `htmlentities` (default flags)
    HtmlSpecialChars,
    /// `nl2br`
    Nl2Br,
    /// `urlencode` / `rawurlencode`
    UrlEncode,
    /// `ucfirst`
    UcFirst,
    /// `lcfirst`
    LcFirst,
    /// `strip_tags` (approximated: deletes `<`…`>` runs)
    StripTags,
}

/// Builds the FST for a [`Transducer`].
pub fn transducer_fst(kind: Transducer) -> Fst {
    match kind {
        Transducer::AddSlashes => builders::addslashes(),
        Transducer::StripSlashes => builders::stripslashes(),
        Transducer::MysqlEscape => builders::mysql_escape(),
        Transducer::Lower => builders::lowercase(),
        Transducer::Upper => builders::uppercase(),
        Transducer::Trim => builders::trim(),
        Transducer::Ltrim => builders::ltrim(),
        Transducer::Rtrim => builders::rtrim(),
        Transducer::HtmlSpecialChars => html_special_chars(),
        Transducer::Nl2Br => builders::replace_literal(b"\n", b"<br />\n"),
        Transducer::UrlEncode => url_encode(),
        Transducer::UcFirst => builders::ucfirst(),
        Transducer::LcFirst => builders::lcfirst(),
        Transducer::StripTags => strip_tags(),
    }
}

/// `htmlspecialchars` with default flags: `&`, `<`, `>`, `"` become
/// entities (single quote untouched, as in pre-5.4 PHP defaults).
fn html_special_chars() -> Fst {
    let mut f = Fst::new();
    let s = f.start();
    let fixed = |text: &[u8]| -> Vec<OutSym> { text.iter().map(|&b| OutSym::Byte(b)).collect() };
    f.add_arc(s, ByteSet::singleton(b'&'), fixed(b"&amp;"), s);
    f.add_arc(s, ByteSet::singleton(b'<'), fixed(b"&lt;"), s);
    f.add_arc(s, ByteSet::singleton(b'>'), fixed(b"&gt;"), s);
    f.add_arc(s, ByteSet::singleton(b'"'), fixed(b"&quot;"), s);
    let rest = ByteSet::from_bytes([b'&', b'<', b'>', b'"']).complement();
    f.add_arc(s, rest, vec![OutSym::Copy], s);
    f.set_final(s, Vec::new());
    f
}

/// `urlencode`: alphanumerics and `-_.` pass, space becomes `+`, the
/// rest become `%XX` (uppercase hex).
fn url_encode() -> Fst {
    let mut f = Fst::new();
    let s = f.start();
    let safe = ByteSet::range(b'A', b'Z')
        .union(&ByteSet::range(b'a', b'z'))
        .union(&ByteSet::range(b'0', b'9'))
        .union(&ByteSet::from_bytes([b'-', b'_', b'.']));
    f.add_arc(s, safe, vec![OutSym::Copy], s);
    f.add_arc(s, ByteSet::singleton(b' '), vec![OutSym::Byte(b'+')], s);
    // Every other byte escapes to its own %XX — one arc per byte.
    for b in 0..=255u8 {
        if safe.contains(b) || b == b' ' {
            continue;
        }
        let hex = format!("%{b:02X}");
        f.add_arc(
            s,
            ByteSet::singleton(b),
            hex.bytes().map(OutSym::Byte).collect(),
            s,
        );
    }
    f.set_final(s, Vec::new());
    f
}

/// `strip_tags`, approximated: deletes maximal `<`…`>` runs; a `<`
/// with no closing `>` deletes the rest of the string (PHP behavior).
fn strip_tags() -> Fst {
    let mut f = Fst::new();
    let outside = f.start();
    let inside = f.add_state();
    let lt = ByteSet::singleton(b'<');
    let gt = ByteSet::singleton(b'>');
    f.add_arc(outside, lt, Vec::new(), inside);
    f.add_arc(outside, lt.complement(), vec![OutSym::Copy], outside);
    f.add_arc(inside, gt, Vec::new(), outside);
    f.add_arc(inside, gt.complement(), Vec::new(), inside);
    f.set_final(outside, Vec::new());
    f.set_final(inside, Vec::new());
    f
}

/// Looks up the model for a builtin (lowercased) function name.
///
/// Returns `None` for names that are not modeled — the analysis then
/// applies the sound Σ*-keep-taint fallback and records the name.
pub fn lookup(name: &str) -> Option<Model> {
    use Model::*;
    type T = self::Transducer;
    Some(match name {
        // --- precise transducers ---
        "addslashes" => Transducer(T::AddSlashes),
        "stripslashes" => Transducer(T::StripSlashes),
        "mysql_real_escape_string" | "mysql_escape_string" | "mysqli_real_escape_string"
        | "pg_escape_string" | "sqlite_escape_string" => Transducer(T::MysqlEscape),
        "strtolower" => Transducer(T::Lower),
        "strtoupper" => Transducer(T::Upper),
        "trim" => Transducer(T::Trim),
        "ltrim" => Transducer(T::Ltrim),
        "rtrim" | "chop" => Transducer(T::Rtrim),
        "htmlspecialchars" | "htmlentities" => Transducer(T::HtmlSpecialChars),
        "nl2br" => Transducer(T::Nl2Br),
        "urlencode" | "rawurlencode" => Transducer(T::UrlEncode),
        "ucfirst" => Transducer(T::UcFirst),
        "lcfirst" => Transducer(T::LcFirst),
        "strip_tags" => Transducer(T::StripTags),
        // --- structural models ---
        "str_replace" | "str_ireplace" => StrReplace,
        "preg_replace" => PregReplace {
            posix_ci: false,
            delimited: true,
        },
        "ereg_replace" => PregReplace {
            posix_ci: false,
            delimited: false,
        },
        "eregi_replace" => PregReplace {
            posix_ci: true,
            delimited: false,
        },
        "sprintf" => Sprintf,
        "implode" | "join" => Implode,
        "explode" | "split" | "preg_split" => Explode,
        "str_repeat" => StrRepeat,
        // --- identity-like ---
        "strval" | "stripcslashes" | "html_entity_decode" | "htmlspecialchars_decode"
        | "urldecode" | "rawurldecode" | "utf8_encode" | "utf8_decode" => Identity_or(name),
        // --- numeric results ---
        "intval" | "floatval" | "doubleval" | "abs" | "round" | "floor" | "ceil" | "count"
        | "sizeof" | "strlen" | "strpos" | "strrpos" | "stripos" | "substr_count" | "ord"
        | "time" | "mktime" | "rand" | "mt_rand" | "random_int" | "crc32" | "hexdec"
        | "octdec" | "bindec" | "array_sum" | "min" | "max" | "pow" | "sqrt" | "intdiv"
        | "fmod" | "microtime" | "memory_get_usage" | "filesize" | "filemtime" | "ip2long"
        | "mysql_num_rows" | "mysql_insert_id" | "mysql_affected_rows" | "mysqli_num_rows"
        | "mysqli_insert_id" | "func_num_args" | "connection_status" | "getmypid"
        | "posix_getpid" | "levenshtein" | "similar_text" | "array_push" | "array_unshift"
        | "error_reporting" | "ftell" | "fwrite" | "fputs" | "umask" | "disk_free_space" => {
            Numeric
        }
        // --- hex tokens ---
        "md5" | "sha1" | "hash" | "crc32b" | "md5_file" | "sha1_file" | "spl_object_hash"
        | "session_id" | "dechex" | "bin2hex" => HexToken,
        // --- restricted alphabets ---
        "base64_encode" => Base64,
        "uniqid" | "tempnam" | "basename" => UrlSafe,
        "number_format" => Numeric,
        "chr" => AnyKeepTaint,
        // --- any string, taint preserved (sound fallback models) ---
        "substr" | "substr_replace" | "ucwords" | "wordwrap"
        | "str_pad" | "strrev" | "strstr" | "stristr" | "strrchr" | "strtr"
        | "vsprintf" | "chunk_split" | "quotemeta" | "addcslashes" | "serialize"
        | "unserialize" | "json_encode" | "json_decode" | "array_shift" | "array_pop"
        | "current" | "reset" | "end" | "next" | "prev" | "each" | "key" | "array_slice"
        | "array_merge" | "array_values" | "array_keys" | "array_reverse" | "array_unique"
        | "array_filter" | "array_map" | "compact" | "extract" | "http_build_query"
        | "parse_url" | "parse_str" | "pathinfo" | "dirname" | "realpath" | "iconv"
        | "mb_substr" | "mb_strtolower" | "mb_strtoupper" | "convert_uuencode"
        | "convert_uudecode" | "gzcompress" | "gzuncompress" | "stream_get_contents"
        | "ob_get_contents" | "ob_get_clean" | "get_magic_quotes_gpc" | "import_request_variables"
        | "array_rand" | "str_split" | "strpbrk" | "strspn" | "strcspn" | "nl_langinfo"
        | "money_format" | "similar_text_percent" => AnyKeepTaint,
        // --- environment / program-controlled strings, untainted ---
        "date" | "gmdate" | "strftime" | "gmstrftime" | "getenv" | "php_uname" | "phpversion"
        | "php_sapi_name" | "get_current_user" | "getcwd" | "sys_get_temp_dir" | "gettype"
        | "get_class" | "function_exists" | "class_exists" | "method_exists" | "extension_loaded"
        | "ini_get" | "get_cfg_var" | "gethostbyaddr" | "gethostbyname" | "long2ip"
        | "mysql_error" | "mysqli_error" | "mysql_errno" | "pg_last_error" | "sqlite_error_string"
        | "curl_error" | "error_get_last" | "file_get_contents" | "fgets" | "fread" | "fgetc"
        | "readline" | "get_included_files" | "php_ini_loaded_file" | "locale_get_default"
        | "timezone_name_get" | "version_compare" => AnyUntainted,
        // --- booleans ---
        "isset" | "empty" | "is_null" | "is_numeric" | "is_string" | "is_array" | "is_int"
        | "is_integer" | "is_float" | "is_bool" | "is_object" | "is_callable" | "is_dir"
        | "is_file" | "is_readable" | "is_writable" | "file_exists" | "in_array"
        | "array_key_exists" | "ctype_digit" | "ctype_alpha" | "ctype_alnum" | "ctype_xdigit"
        | "preg_match" | "preg_match_all" | "ereg" | "eregi" | "checkdate" | "strcmp"
        | "strcasecmp" | "strncmp" | "strncasecmp" | "mysql_select_db" | "mysqli_select_db"
        | "mysql_close" | "mysqli_close" | "mysql_free_result" | "mail" | "setcookie"
        | "session_start" | "session_destroy" | "session_write_close" | "headers_sent"
        | "define" | "defined" | "usleep" | "sleep" | "flush" | "ob_start" | "ob_end_flush"
        | "ob_end_clean" | "ignore_user_abort" | "set_time_limit" | "register_shutdown_function"
        | "spl_autoload_register" | "assert" | "ctype_space" | "ctype_upper" | "ctype_lower"
        | "is_uploaded_file" | "move_uploaded_file" | "unlink" | "mkdir" | "rmdir" | "rename"
        | "copy" | "touch" | "chmod" | "fclose" | "rewind" | "feof" => Bool,
        // --- pure side effects ---
        "header" | "echo" | "print" | "print_r" | "var_dump" | "var_export" | "error_log"
        | "trigger_error" | "exit" | "die" | "unset" | "ini_set" | "srand" | "mt_srand"
        | "session_register" | "session_unregister" | "setlocale" | "date_default_timezone_set"
        | "usort" | "uasort" | "uksort" | "sort" | "rsort" | "asort" | "arsort" | "ksort"
        | "krsort" | "shuffle" | "natsort" | "natcasesort" | "array_splice" | "array_walk"
        | "call_user_func" | "call_user_func_array" | "func_get_args" | "debug_backtrace" => {
            ConstEmpty
        }
        _ => return None,
    })
}

// `Identity_or` exists so the match arm above reads naturally while we
// keep decode-like functions modeled soundly: decoding *expands* the
// byte repertoire, so Σ*-keep-taint is the sound choice for decoders,
// while plain `strval` is true identity.
#[allow(non_snake_case)]
fn Identity_or(name: &str) -> Model {
    match name {
        "strval" => Model::Identity,
        _ => Model::AnyKeepTaint,
    }
}

/// Number of modeled builtins (the paper's tool shipped 243 specs).
pub fn catalog_size() -> usize {
    CATALOG_NAMES.iter().filter(|n| lookup(n).is_some()).count()
}

/// Names probed by [`catalog_size`]; kept in sync with [`lookup`] by
/// the `catalog_is_large` test.
const CATALOG_NAMES: &[&str] = &[
    "addslashes", "stripslashes", "mysql_real_escape_string", "mysql_escape_string",
    "mysqli_real_escape_string", "pg_escape_string", "sqlite_escape_string", "strtolower",
    "strtoupper", "trim", "ltrim", "rtrim", "chop", "htmlspecialchars", "htmlentities",
    "nl2br", "urlencode", "rawurlencode", "strip_tags", "str_replace", "str_ireplace",
    "preg_replace", "ereg_replace", "eregi_replace", "sprintf", "implode", "join", "explode",
    "split", "preg_split", "strval", "stripcslashes", "html_entity_decode",
    "htmlspecialchars_decode", "urldecode", "rawurldecode", "utf8_encode", "utf8_decode",
    "intval", "floatval", "doubleval", "abs", "round", "floor", "ceil", "count", "sizeof",
    "strlen", "strpos", "strrpos", "stripos", "substr_count", "ord", "time", "mktime",
    "rand", "mt_rand", "random_int", "crc32", "hexdec", "octdec", "bindec", "array_sum",
    "min", "max", "pow", "sqrt", "intdiv", "fmod", "microtime", "memory_get_usage",
    "filesize", "filemtime", "ip2long", "mysql_num_rows", "mysql_insert_id",
    "mysql_affected_rows", "mysqli_num_rows", "mysqli_insert_id", "func_num_args",
    "connection_status", "getmypid", "posix_getpid", "levenshtein", "similar_text",
    "array_push", "array_unshift", "error_reporting", "ftell", "fwrite", "fputs", "umask",
    "disk_free_space", "md5", "sha1", "hash", "crc32b", "md5_file", "sha1_file",
    "spl_object_hash", "session_id", "dechex", "bin2hex", "base64_encode", "uniqid",
    "tempnam", "basename", "number_format", "chr", "substr", "substr_replace", "ucfirst",
    "lcfirst", "ucwords", "wordwrap", "str_pad", "str_repeat", "strrev", "strstr", "stristr",
    "strrchr", "strtr", "vsprintf", "chunk_split", "quotemeta", "addcslashes", "serialize",
    "unserialize", "json_encode", "json_decode", "array_shift", "array_pop", "current",
    "reset", "end", "next", "prev", "each", "key", "array_slice", "array_merge",
    "array_values", "array_keys", "array_reverse", "array_unique", "array_filter",
    "array_map", "compact", "extract", "http_build_query", "parse_url", "parse_str",
    "pathinfo", "dirname", "realpath", "iconv", "mb_substr", "mb_strtolower",
    "mb_strtoupper", "convert_uuencode", "convert_uudecode", "gzcompress", "gzuncompress",
    "stream_get_contents", "ob_get_contents", "ob_get_clean", "get_magic_quotes_gpc",
    "import_request_variables", "array_rand", "str_split", "strpbrk", "strspn", "strcspn",
    "nl_langinfo", "money_format", "date", "gmdate", "strftime", "gmstrftime", "getenv",
    "php_uname", "phpversion", "php_sapi_name", "get_current_user", "getcwd",
    "sys_get_temp_dir", "gettype", "get_class", "function_exists", "class_exists",
    "method_exists", "extension_loaded", "ini_get", "get_cfg_var", "gethostbyaddr",
    "gethostbyname", "long2ip", "mysql_error", "mysqli_error", "mysql_errno",
    "pg_last_error", "sqlite_error_string", "curl_error", "error_get_last",
    "file_get_contents", "fgets", "fread", "fgetc", "readline", "get_included_files",
    "php_ini_loaded_file", "locale_get_default", "timezone_name_get", "version_compare",
    "isset", "empty", "is_null", "is_numeric", "is_string", "is_array", "is_int",
    "is_integer", "is_float", "is_bool", "is_object", "is_callable", "is_dir", "is_file",
    "is_readable", "is_writable", "file_exists", "in_array", "array_key_exists",
    "ctype_digit", "ctype_alpha", "ctype_alnum", "ctype_xdigit", "preg_match",
    "preg_match_all", "ereg", "eregi", "checkdate", "strcmp", "strcasecmp", "strncmp",
    "strncasecmp", "mysql_select_db", "mysqli_select_db", "mysql_close", "mysqli_close",
    "mysql_free_result", "mail", "setcookie", "session_start", "session_destroy",
    "session_write_close", "headers_sent", "define", "defined", "usleep", "sleep", "flush",
    "ob_start", "ob_end_flush", "ob_end_clean", "ignore_user_abort", "set_time_limit",
    "register_shutdown_function", "spl_autoload_register", "assert", "ctype_space",
    "ctype_upper", "ctype_lower", "is_uploaded_file", "move_uploaded_file", "unlink",
    "mkdir", "rmdir", "rename", "copy", "touch", "chmod", "fclose", "rewind", "feof",
    "header", "print_r", "var_dump", "var_export", "error_log", "trigger_error", "ini_set",
    "srand", "mt_srand", "session_register", "session_unregister", "setlocale",
    "date_default_timezone_set", "usort", "uasort", "uksort", "sort", "rsort", "asort",
    "arsort", "ksort", "krsort", "shuffle", "natsort", "natcasesort", "array_splice",
    "array_walk", "call_user_func", "call_user_func_array", "func_get_args",
    "debug_backtrace",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_large() {
        // The paper shipped 243 specs; ours must be in that league.
        let n = catalog_size();
        assert!(n >= 243, "catalog has only {n} modeled functions");
    }

    #[test]
    fn sanitizers_are_transducers() {
        assert!(matches!(
            lookup("addslashes"),
            Some(Model::Transducer(Transducer::AddSlashes))
        ));
        assert!(matches!(
            lookup("mysql_real_escape_string"),
            Some(Model::Transducer(Transducer::MysqlEscape))
        ));
    }

    #[test]
    fn unknown_functions_are_none() {
        assert_eq!(lookup("totally_made_up_fn"), None);
    }

    #[test]
    fn htmlspecialchars_fst() {
        let f = transducer_fst(Transducer::HtmlSpecialChars);
        assert_eq!(
            f.transduce_unique(b"a<b>&\"c'").unwrap(),
            b"a&lt;b&gt;&amp;&quot;c'".to_vec()
        );
    }

    #[test]
    fn urlencode_fst() {
        let f = transducer_fst(Transducer::UrlEncode);
        assert_eq!(
            f.transduce_unique(b"a b'c").unwrap(),
            b"a+b%27c".to_vec()
        );
        // The crucial property for SQLCIV analysis: no quote survives.
        let out = f.transduce_unique(b"' OR '1'='1").unwrap();
        assert!(!out.contains(&b'\''));
    }

    #[test]
    fn strip_tags_fst() {
        let f = transducer_fst(Transducer::StripTags);
        let outs = f.transduce(b"a<b>c</b>d", 8);
        assert!(outs.contains(&b"acd".to_vec()));
    }

    #[test]
    fn nl2br_fst() {
        let f = transducer_fst(Transducer::Nl2Br);
        assert_eq!(
            f.transduce_unique(b"a\nb").unwrap(),
            b"a<br />\nb".to_vec()
        );
    }
}
