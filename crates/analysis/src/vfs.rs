//! Virtual filesystem for analyzed web applications.
//!
//! The analyzer follows `include`/`require` statements, so it needs the
//! whole project tree. A [`Vfs`] maps project-relative paths to file
//! contents; the corpus crate builds these in memory, and
//! [`Vfs::from_dir`] loads a real directory.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

/// An in-memory project tree.
///
/// # Examples
///
/// ```
/// use strtaint_analysis::Vfs;
///
/// let mut vfs = Vfs::new();
/// vfs.add("index.php", "<?php include('lib/db.php'); ?>");
/// vfs.add("lib/db.php", "<?php function q($s) { return $s; } ?>");
/// assert!(vfs.get("lib/db.php").is_some());
/// assert_eq!(vfs.paths().count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    files: BTreeMap<String, Vec<u8>>,
}

impl Vfs {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Vfs::default()
    }

    /// Adds (or replaces) a file.
    pub fn add(&mut self, path: impl Into<String>, contents: impl Into<Vec<u8>>) {
        self.files.insert(normalize(&path.into()), contents.into());
    }

    /// Looks up a file by path (normalized).
    pub fn get(&self, path: &str) -> Option<&[u8]> {
        self.files.get(&normalize(path)).map(Vec::as_slice)
    }

    /// Applies one incremental change: `Some(contents)` upserts the
    /// file, `None` removes it. Returns `true` if the tree actually
    /// changed (an upsert with identical bytes or a removal of a
    /// missing path is a no-op), so callers — the analysis daemon's
    /// `invalidate` request — can skip dirty-set work for no-op deltas
    /// instead of reloading the whole tree through [`Vfs::from_dir`].
    pub fn apply_delta(&mut self, path: &str, contents: Option<Vec<u8>>) -> bool {
        let norm = normalize(path);
        match contents {
            Some(bytes) => match self.files.get(&norm) {
                Some(old) if *old == bytes => false,
                _ => {
                    self.files.insert(norm, bytes);
                    true
                }
            },
            None => self.files.remove(&norm).is_some(),
        }
    }

    /// Iterates over all paths.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Returns the number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total number of source lines across all files (the paper's
    /// Table 1 "Lines" column).
    pub fn total_lines(&self) -> usize {
        self.files
            .values()
            .map(|c| c.iter().filter(|&&b| b == b'\n').count() + 1)
            .sum()
    }

    /// Loads every `*.php` and `*.tpl` file under `dir` (recursively)
    /// — the extensions the shipped frontends claim.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory traversal and file reads.
    pub fn from_dir(dir: &Path) -> io::Result<Self> {
        let mut vfs = Vfs::new();
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "php" || e == "tpl") {
                    let rel = path
                        .strip_prefix(dir)
                        .unwrap_or(&path)
                        .to_string_lossy()
                        .into_owned();
                    vfs.add(rel, std::fs::read(&path)?);
                }
            }
        }
        Ok(vfs)
    }
}

impl fmt::Display for Vfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<vfs: {} files, {} lines>", self.len(), self.total_lines())
    }
}

/// Normalizes a project-relative path: strips leading `./`, collapses
/// `//`, resolves single `..` segments.
pub fn normalize(path: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            s => out.push(s),
        }
    }
    out.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(normalize("./a/b.php"), "a/b.php");
        assert_eq!(normalize("a//b.php"), "a/b.php");
        assert_eq!(normalize("a/../b.php"), "b.php");
        assert_eq!(normalize("lib/./x.php"), "lib/x.php");
    }

    #[test]
    fn add_get_roundtrip() {
        let mut v = Vfs::new();
        v.add("./x.php", "<?php ?>");
        assert!(v.get("x.php").is_some());
        assert!(v.get("./x.php").is_some());
        assert!(v.get("y.php").is_none());
    }

    #[test]
    fn apply_delta_upserts_and_removes() {
        let mut v = Vfs::new();
        assert!(v.apply_delta("a.php", Some(b"<?php echo 1;".to_vec())));
        assert_eq!(v.get("a.php"), Some(b"<?php echo 1;".as_slice()));

        // Identical re-upload is a no-op.
        assert!(!v.apply_delta("./a.php", Some(b"<?php echo 1;".to_vec())));

        // A real edit is a change.
        assert!(v.apply_delta("a.php", Some(b"<?php echo 2;".to_vec())));
        assert_eq!(v.get("a.php"), Some(b"<?php echo 2;".as_slice()));

        // Removal, then removing again is a no-op.
        assert!(v.apply_delta("a.php", None));
        assert!(v.get("a.php").is_none());
        assert!(!v.apply_delta("a.php", None));
        assert!(v.is_empty());
    }

    #[test]
    fn apply_delta_normalizes_paths() {
        let mut v = Vfs::new();
        assert!(v.apply_delta("lib/./db.php", Some(b"<?php".to_vec())));
        assert!(v.get("lib/db.php").is_some());
        assert!(v.apply_delta("lib//db.php", None));
        assert!(v.is_empty());
    }

    #[test]
    fn line_counting() {
        let mut v = Vfs::new();
        v.add("a.php", "1\n2\n3");
        v.add("b.php", "x");
        assert_eq!(v.total_lines(), 4);
    }
}
