//! Behavior tests for the builtin function models: each category of
//! the spec catalog (paper §4: "specifications for 243 PHP functions")
//! must produce the right language and taint.

use strtaint_analysis::{analyze, Config, Vfs};
use strtaint_grammar::lang::{bounded_language, sample_strings};
use strtaint_grammar::NtId;

/// Analyzes a one-hotspot page and returns (cfg, hotspot root).
fn grammar_of(src: &str) -> (strtaint_grammar::Cfg, NtId) {
    let mut vfs = Vfs::new();
    vfs.add("p.php", src);
    let a = analyze(&vfs, "p.php", &Config::default()).unwrap();
    assert_eq!(a.hotspots.len(), 1, "warnings: {:?}", a.warnings);
    let root = a.hotspots[0].root;
    (a.cfg, root)
}

#[test]
fn identity_models() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . strval('abc'));"#);
    assert!(g.derives(root, b"Qabc"));
    assert!(!g.derives(root, b"Qx"));
}

#[test]
fn transducer_models_precise() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . addslashes("it's"));"#);
    assert_eq!(
        bounded_language(&g, root, 4).unwrap(),
        vec![b"Qit\\'s".to_vec()]
    );
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . strtoupper("ab1"));"#);
    assert!(g.derives(root, b"QAB1"));
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . nl2br("a\nb"));"#);
    assert!(g.derives(root, b"Qa<br />\nb"));
}

#[test]
fn numeric_models() {
    for call in ["intval($_GET['x'])", "count($_GET['x'])", "strlen($_GET['x'])", "time()"] {
        let src = format!(r#"<?php $DB->query("Q" . {call});"#);
        let (g, root) = grammar_of(&src);
        assert!(g.derives(root, b"Q42"), "{call}");
        assert!(g.derives(root, b"Q-7"), "{call}");
        assert!(!g.derives(root, b"Qx"), "{call} admits non-numeric");
        assert!(!g.derives(root, b"Q1'"), "{call} admits quotes");
    }
}

#[test]
fn numeric_keeps_taint() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . intval($_GET['x']));"#);
    // Taint survives (the value is user-chosen) but the language is
    // numeric, so the checker will verify it.
    let labeled = g.labeled_nonterminals();
    let reach = g.reachable(root);
    assert!(
        labeled.iter().any(|&id| reach[id.index()]),
        "intval keeps the taint label"
    );
}

#[test]
fn hash_models() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . md5($_POST['pw']));"#);
    assert!(g.derives(root, b"Qd41d8cd98f00b204e9800998ecf8427e"));
    assert!(!g.derives(root, b"Q'"), "hex language has no quotes");
    assert!(!g.derives(root, b"QABC"), "lowercase hex only");
}

#[test]
fn base64_model() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . base64_encode($_GET['x']));"#);
    assert!(g.derives(root, b"QaGk="));
    assert!(!g.derives(root, b"Q'"));
}

#[test]
fn bool_model() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . is_numeric($_GET['x']));"#);
    let lang = bounded_language(&g, root, 4).unwrap();
    assert_eq!(lang, vec![b"Q".to_vec(), b"Q1".to_vec()]);
}

#[test]
fn const_empty_model() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . sort($a));"#);
    assert_eq!(bounded_language(&g, root, 4).unwrap(), vec![b"Q".to_vec()]);
}

#[test]
fn any_untainted_model() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . date('Y-m-d'));"#);
    assert!(g.derives(root, b"Q2026-07-05"));
    assert!(g.derives(root, b"Qanything"));
    let labeled = g.labeled_nonterminals();
    let reach = g.reachable(root);
    assert!(
        !labeled.iter().any(|&id| reach[id.index()]),
        "date() output is untainted"
    );
}

#[test]
fn any_keep_taint_model() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . substr($_GET['x'], 0, 4));"#);
    assert!(g.derives(root, b"Qwhatever"));
    let labeled = g.labeled_nonterminals();
    let reach = g.reachable(root);
    assert!(
        labeled.iter().any(|&id| reach[id.index()]),
        "substr keeps taint"
    );
}

#[test]
fn str_replace_array_patterns() {
    // Array arguments — the construct the paper's prototype could not
    // handle (§5.3) — apply as a sequential chain.
    let (g, root) = grammar_of(
        r#"<?php $DB->query("Q" . str_replace(array('[b]', '[i]'), array('<b>', '<i>'), '[b]x[i]'));"#,
    );
    assert_eq!(
        bounded_language(&g, root, 4).unwrap(),
        vec![b"Q<b>x<i>".to_vec()]
    );
}

#[test]
fn str_replace_scalar_replacement_for_array_pattern() {
    let (g, root) = grammar_of(
        r#"<?php $DB->query("Q" . str_replace(array('a', 'b'), '-', 'ab c'));"#,
    );
    assert_eq!(
        bounded_language(&g, root, 4).unwrap(),
        vec![b"Q-- c".to_vec()]
    );
}

#[test]
fn preg_replace_literal_model() {
    let (g, root) = grammar_of(
        r#"<?php $DB->query("Q" . preg_replace('/[0-9]+/', 'N', 'a12b3'));"#,
    );
    // Over-approximation: contains the true result.
    assert!(g.derives(root, b"QaNbN"));
}

#[test]
fn sprintf_model() {
    let (g, root) = grammar_of(
        r#"<?php $DB->query(sprintf("SELECT %s FROM t LIMIT %d", 'x', 3));"#,
    );
    assert!(g.derives(root, b"SELECT x FROM t LIMIT 3"));
    assert!(g.derives(root, b"SELECT x FROM t LIMIT 999"));
    assert!(!g.derives(root, b"SELECT x FROM t LIMIT y"));
}

#[test]
fn implode_model() {
    let (g, root) = grammar_of(
        r#"<?php $a = array('1', '2'); $DB->query("Q" . implode(',', $a));"#,
    );
    assert!(g.derives(root, b"Q1"));
    assert!(g.derives(root, b"Q1,2"));
    assert!(g.derives(root, b"Q2,2,1"), "order and count are abstracted");
    assert!(!g.derives(root, b"Q3"));
}

#[test]
fn explode_model() {
    let (g, root) = grammar_of(
        r#"<?php $p = explode('.', 'a.bc'); $DB->query("Q" . $p[0]);"#,
    );
    // Elements of the split (order lost, paper Fig. 8).
    assert!(g.derives(root, b"Qa"));
    assert!(g.derives(root, b"Qbc"));
    assert!(!g.derives(root, b"Qa.bc"), "pieces never contain the delimiter");
}

#[test]
fn unknown_function_records_name() {
    let mut vfs = Vfs::new();
    vfs.add(
        "p.php",
        r#"<?php $DB->query("Q" . mystery_fn($_GET['x']));"#,
    );
    let a = analyze(&vfs, "p.php", &Config::default()).unwrap();
    assert!(a.unmodeled.contains("mystery_fn"));
    // Σ*-widened result keeps taint.
    let root = a.hotspots[0].root;
    let strings = sample_strings(&a.cfg, root, 4, 4);
    assert!(!strings.is_empty());
}

#[test]
fn ucfirst_lcfirst_models() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . ucfirst('abc'));"#);
    assert_eq!(bounded_language(&g, root, 4).unwrap(), vec![b"QAbc".to_vec()]);
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . lcfirst('ABC'));"#);
    assert_eq!(bounded_language(&g, root, 4).unwrap(), vec![b"QaBC".to_vec()]);
}

#[test]
fn str_repeat_constant_unrolls() {
    let (g, root) = grammar_of(r#"<?php $DB->query("Q" . str_repeat('ab', 3));"#);
    assert_eq!(
        bounded_language(&g, root, 4).unwrap(),
        vec![b"Qababab".to_vec()]
    );
}

#[test]
fn str_repeat_dynamic_is_star() {
    let (g, root) = grammar_of(
        r#"<?php $n = intval($_GET['n']); $DB->query("Q" . str_repeat('-', $n));"#,
    );
    assert!(g.derives(root, b"Q"));
    assert!(g.derives(root, b"Q---"));
    assert!(!g.derives(root, b"Qx"));
}
