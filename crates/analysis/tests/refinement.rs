//! Condition-refinement behavior (paper §3.1.2): branch conditions
//! intersect variable grammars with the condition's language on the
//! `then` side and its complement on the `else` side.

use strtaint_analysis::{analyze, Config, Vfs};
use strtaint_grammar::NtId;

fn hotspot_grammar(src: &str) -> (strtaint_grammar::Cfg, NtId) {
    let mut vfs = Vfs::new();
    vfs.add("p.php", src);
    let a = analyze(&vfs, "p.php", &Config::default()).unwrap();
    assert_eq!(a.hotspots.len(), 1);
    (a.cfg, a.hotspots[0].root)
}

#[test]
fn preg_match_then_branch() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if (preg_match('/^[ab]+$/', $v)) {
    $DB->query("Q$v");
}
"#,
    );
    assert!(g.derives(root, b"Qab"));
    assert!(!g.derives(root, b"Qc"));
    assert!(!g.derives(root, b"Q"));
}

#[test]
fn preg_match_else_branch() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if (preg_match('/^[ab]+$/', $v)) {
} else {
    $DB->query("Q$v");
}
"#,
    );
    assert!(!g.derives(root, b"Qab"), "then-language excluded on else");
    assert!(g.derives(root, b"Qc"));
    assert!(g.derives(root, b"Q"));
}

#[test]
fn early_exit_refines_fallthrough() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if (!ctype_digit($v)) { exit; }
$DB->query("Q$v");
"#,
    );
    assert!(g.derives(root, b"Q123"));
    assert!(!g.derives(root, b"Qx"));
}

#[test]
fn equality_refinement() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if ($v == 'safe') {
    $DB->query("Q$v");
}
"#,
    );
    assert!(g.derives(root, b"Qsafe"));
    assert!(!g.derives(root, b"Qevil"));
}

#[test]
fn inequality_refinement() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if ($v != '') {
    $DB->query("Q$v");
}
"#,
    );
    assert!(!g.derives(root, b"Q"), "empty string excluded");
    assert!(g.derives(root, b"Qx"));
}

#[test]
fn in_array_refinement() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if (in_array($v, array('asc', 'desc'))) {
    $DB->query("Q$v");
}
"#,
    );
    assert!(g.derives(root, b"Qasc"));
    assert!(g.derives(root, b"Qdesc"));
    assert!(!g.derives(root, b"Qdrop"));
}

#[test]
fn conjunction_refines_both() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if (preg_match('/^[0-9]+$/', $v) && $v != '0') {
    $DB->query("Q$v");
}
"#,
    );
    assert!(g.derives(root, b"Q12"));
    assert!(!g.derives(root, b"Q0"));
    assert!(!g.derives(root, b"Qx"));
}

#[test]
fn disjunction_negation_refines_on_else() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if ($v == 'a' || $v == 'b') { exit; }
$DB->query("Q$v");
"#,
    );
    assert!(!g.derives(root, b"Qa"));
    assert!(!g.derives(root, b"Qb"));
    assert!(g.derives(root, b"Qc"));
}

#[test]
fn truthiness_refinement() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if ($v) {
    $DB->query("Q$v");
}
"#,
    );
    assert!(!g.derives(root, b"Q"), "falsy '' excluded");
    assert!(!g.derives(root, b"Q0"), "falsy '0' excluded");
    assert!(g.derives(root, b"Q00"), "'00' is truthy in PHP");
}

#[test]
fn eregi_case_insensitive() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if (!eregi('^[a-f]+$', $v)) { exit; }
$DB->query("Q$v");
"#,
    );
    assert!(g.derives(root, b"Qabc"));
    assert!(g.derives(root, b"QABC"), "eregi folds case");
    assert!(!g.derives(root, b"Qxyz"));
}

#[test]
fn unsupported_regex_refines_nothing() {
    // Lookahead is outside the engine's subset: the condition is
    // treated as uninformative (sound).
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
if (!preg_match('/^(?=a)a+$/', $v)) { exit; }
$DB->query("Q$v");
"#,
    );
    assert!(g.derives(root, b"Qanything at all"));
}

#[test]
fn refinement_on_superglobal_element() {
    let (g, root) = hotspot_grammar(
        r#"<?php
if (!ctype_digit($_GET['id'])) { exit; }
$id = $_GET['id'];
$DB->query("Q$id");
"#,
    );
    assert!(g.derives(root, b"Q7"));
    assert!(
        !g.derives(root, b"Qx"),
        "refinement binds the superglobal element itself"
    );
}

#[test]
fn switch_case_refinement() {
    let (g, root) = hotspot_grammar(
        r#"<?php
$v = $_GET['v'];
switch ($v) {
    case 'one':
        $DB->query("Q$v");
        break;
    default:
        break;
}
"#,
    );
    assert!(g.derives(root, b"Qone"));
    assert!(!g.derives(root, b"Qtwo"));
}
