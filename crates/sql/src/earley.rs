//! Earley recognition of *sentential forms* against the reference SQL
//! grammar (the extension of Earley's algorithm described in paper
//! §3.2.2, after Thiemann).
//!
//! The input is a sequence of grammar symbols — token kinds and/or SQL
//! nonterminals — and the question is whether `root ⇒* input` holds,
//! i.e. whether the form is derivable *as a sentential form* (input
//! nonterminals are matched, not expanded). An input nonterminal `N`
//! matches an expected nonterminal `M` when `M ⇒* N` (everything else
//! in `M`'s expansion erased), which the grammar's unit closure
//! precomputes.

use std::collections::HashSet;

use strtaint_grammar::budget::{Budget, BudgetExceeded};

use crate::grammar::{SqlGrammar, SqlNt, TSym};
use crate::token::TokenKind;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    prod: u32,
    dot: u32,
    origin: u32,
}

/// Returns `true` if `root ⇒* input` in the sentential-form sense.
pub fn derives_sentential(g: &SqlGrammar, root: SqlNt, input: &[TSym]) -> bool {
    derives_sentential_with(g, root, input, &Budget::unlimited())
        .expect("an unlimited budget cannot be exceeded")
}

/// Budgeted form of [`derives_sentential`], charging one unit per
/// processed Earley item.
///
/// On exhaustion derivability is unanswered; callers must treat the
/// form as *not shown derivable* and report the hotspot unverified
/// (the sound direction — see [`strtaint_grammar::budget`]).
pub fn derives_sentential_with(
    g: &SqlGrammar,
    root: SqlNt,
    input: &[TSym],
    budget: &Budget,
) -> Result<bool, BudgetExceeded> {
    let reach = g.unit_closure();
    // Nullable nonterminals for the Aycock–Horspool advance.
    let nullable = {
        let n = SqlNt::ALL.len();
        let mut nl = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for (lhs, rhs) in g.productions() {
                if nl[lhs.index()] {
                    continue;
                }
                let ok = rhs.iter().all(|s| match s {
                    TSym::T(_) => false,
                    TSym::N(x) => nl[x.index()],
                });
                if ok {
                    nl[lhs.index()] = true;
                    changed = true;
                }
            }
        }
        nl
    };

    let n = input.len();
    let mut sets: Vec<Vec<Item>> = vec![Vec::new(); n + 1];
    let mut seen: Vec<HashSet<Item>> = vec![HashSet::new(); n + 1];
    let push = |sets: &mut Vec<Vec<Item>>, seen: &mut Vec<HashSet<Item>>, pos: usize, it: Item| {
        if seen[pos].insert(it) {
            sets[pos].push(it);
        }
    };

    for &pi in g.productions_of(root) {
        push(
            &mut sets,
            &mut seen,
            0,
            Item {
                prod: pi as u32,
                dot: 0,
                origin: 0,
            },
        );
    }

    for pos in 0..=n {
        let mut idx = 0;
        while idx < sets[pos].len() {
            budget.charge(1)?;
            let it = sets[pos][idx];
            idx += 1;
            let (_, rhs) = g.production(it.prod as usize);
            if (it.dot as usize) < rhs.len() {
                let expected = rhs[it.dot as usize];
                // Scan: terminal-vs-terminal or NT-vs-NT via unit closure.
                if pos < n {
                    let matches = match (expected, input[pos]) {
                        (TSym::T(a), TSym::T(b)) => a == b,
                        (TSym::N(m), TSym::N(x)) => reach[m.index()][x.index()],
                        _ => false,
                    };
                    if matches {
                        push(
                            &mut sets,
                            &mut seen,
                            pos + 1,
                            Item {
                                dot: it.dot + 1,
                                ..it
                            },
                        );
                    }
                }
                if let TSym::N(x) = expected {
                    // Predict.
                    for &pi in g.productions_of(x) {
                        push(
                            &mut sets,
                            &mut seen,
                            pos,
                            Item {
                                prod: pi as u32,
                                dot: 0,
                                origin: pos as u32,
                            },
                        );
                    }
                    if nullable[x.index()] {
                        push(
                            &mut sets,
                            &mut seen,
                            pos,
                            Item {
                                dot: it.dot + 1,
                                ..it
                            },
                        );
                    }
                }
            } else {
                // Complete.
                let (lhs, _) = g.production(it.prod as usize);
                let lhs = *lhs;
                let origin = it.origin as usize;
                let snapshot: Vec<Item> = sets[origin].clone();
                for parent in snapshot {
                    let (_, prhs) = g.production(parent.prod as usize);
                    if (parent.dot as usize) < prhs.len() {
                        if let TSym::N(e) = prhs[parent.dot as usize] {
                            if e == lhs {
                                push(
                                    &mut sets,
                                    &mut seen,
                                    pos,
                                    Item {
                                        dot: parent.dot + 1,
                                        ..parent
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    Ok(sets[n].iter().any(|it| {
        let (lhs, rhs) = g.production(it.prod as usize);
        *lhs == root && it.origin == 0 && (it.dot as usize) == rhs.len()
    }))
}

/// Convenience: recognizes a pure token sequence as a complete query.
pub fn recognizes_tokens(g: &SqlGrammar, kinds: &[TokenKind]) -> bool {
    let syms: Vec<TSym> = kinds.iter().map(|&k| TSym::T(k)).collect();
    derives_sentential(g, SqlNt::Query, &syms)
}

/// Convenience: lexes and recognizes a byte string as a complete query.
///
/// Returns `false` for strings that do not lex.
pub fn recognizes_query(g: &SqlGrammar, input: &[u8]) -> bool {
    match crate::lexer::lex(input) {
        Ok(tokens) => {
            let kinds: Vec<TokenKind> = tokens.iter().map(|t| t.kind).collect();
            recognizes_tokens(g, &kinds)
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> SqlGrammar {
        SqlGrammar::standard()
    }

    #[test]
    fn recognizes_valid_queries() {
        let g = g();
        for q in [
            &b"SELECT * FROM `unp_user` WHERE userid='1'"[..],
            b"SELECT name, email FROM users WHERE id = 7 ORDER BY name DESC LIMIT 10",
            b"INSERT INTO `unp_news` (`date`, `subject`) VALUES ('now', 'hi')",
            b"UPDATE users SET name = 'bob', age = 4 WHERE id = 3",
            b"DELETE FROM sessions WHERE expires < 123456",
            b"SELECT COUNT(*) FROM t",
            b"SELECT a.x, b.y FROM a JOIN b ON a.id = b.id WHERE a.x LIKE '%q%'",
            b"SELECT * FROM t WHERE id IN (1, 2, 3) AND NOT deleted = 1",
            b"SELECT * FROM t WHERE x IS NOT NULL GROUP BY y",
            b"SELECT * FROM t WHERE a BETWEEN 1 AND 2 OR -b > 3 + 4 * 5",
        ] {
            assert!(
                recognizes_query(&g, q),
                "should parse: {}",
                String::from_utf8_lossy(q)
            );
        }
    }

    #[test]
    fn rejects_stacked_queries() {
        let g = g();
        // The paper's attack: a second statement after ';' is not a
        // single query of the reference grammar.
        assert!(!recognizes_query(
            &g,
            b"SELECT * FROM `unp_user` WHERE userid='1'; DROP TABLE unp_user; --'"
        ));
        assert!(!recognizes_query(&g, b"SELECT"));
        assert!(!recognizes_query(&g, b"WHERE x = 1"));
    }

    #[test]
    fn rejects_tautology_shapes_that_are_invalid() {
        let g = g();
        // "OR 1=1" dangling.
        assert!(!recognizes_query(&g, b"SELECT * FROM t WHERE OR 1=1"));
        // But a complete tautology IS grammatical (the policy catches it
        // by confinement, not by grammaticality).
        assert!(recognizes_query(&g, b"SELECT * FROM t WHERE a='' OR 1=1"));
    }

    #[test]
    fn sentential_forms_with_nonterminals() {
        use crate::token::TokenKind as K;
        use TSym::{N, T};
        let g = g();
        // SELECT * FROM t WHERE <Expr>
        let form = [
            T(K::Select),
            T(K::Star),
            T(K::From),
            T(K::Ident),
            T(K::Where),
            N(SqlNt::Expr),
        ];
        assert!(derives_sentential(&g, SqlNt::Query, &form));
        // SELECT * FROM t WHERE id = <Literal>
        let form = [
            T(K::Select),
            T(K::Star),
            T(K::From),
            T(K::Ident),
            T(K::Where),
            T(K::Ident),
            T(K::Eq),
            N(SqlNt::Literal),
        ];
        assert!(derives_sentential(&g, SqlNt::Query, &form));
        // A WhereClause cannot appear where an expression is expected.
        let form = [
            T(K::Select),
            T(K::Star),
            T(K::From),
            T(K::Ident),
            T(K::Where),
            T(K::Ident),
            T(K::Eq),
            N(SqlNt::WhereClause),
        ];
        assert!(!derives_sentential(&g, SqlNt::Query, &form));
    }

    #[test]
    fn unit_closure_matching_is_used() {
        use crate::token::TokenKind as K;
        use TSym::{N, T};
        let g = g();
        // WHERE expects Expr; an input `CmpExpr` is reachable via the
        // precedence chain, so the form derives.
        let form = [
            T(K::Select),
            T(K::Star),
            T(K::From),
            T(K::Ident),
            T(K::Where),
            N(SqlNt::CmpExpr),
        ];
        assert!(derives_sentential(&g, SqlNt::Query, &form));
    }

    #[test]
    fn budget_trips_on_tiny_fuel() {
        use strtaint_grammar::budget::Resource;
        let g = g();
        let tokens = crate::lexer::lex(b"SELECT * FROM t WHERE id = 1").unwrap();
        let syms: Vec<TSym> = tokens.iter().map(|t| TSym::T(t.kind)).collect();
        let tiny = Budget::new(None, Some(1), None);
        let err = derives_sentential_with(&g, SqlNt::Query, &syms, &tiny).unwrap_err();
        assert_eq!(err.resource, Resource::Fuel);
        // Unlimited budget agrees with the infallible API.
        let ok = derives_sentential_with(&g, SqlNt::Query, &syms, &Budget::unlimited()).unwrap();
        assert_eq!(ok, derives_sentential(&g, SqlNt::Query, &syms));
        assert!(ok);
    }

    #[test]
    fn insert_values_tail() {
        let g = g();
        assert!(recognizes_query(
            &g,
            b"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        ));
    }

    #[test]
    fn union_select() {
        let g = g();
        assert!(recognizes_query(
            &g,
            b"SELECT a FROM t UNION SELECT b FROM u"
        ));
        assert!(recognizes_query(
            &g,
            b"SELECT a FROM t UNION ALL SELECT b FROM u WHERE x = 1"
        ));
    }
}
