//! The reference SQL grammar (token level).
//!
//! This is the grammar `G` of the paper's Definition 2.2: a query is
//! attack-free iff every tainted substring is derivable from a single
//! nonterminal of this grammar in context. The subset covers the query
//! shapes that PHP web applications generate — `SELECT`/`INSERT`/
//! `UPDATE`/`DELETE` with boolean/arithmetic expressions — and
//! deliberately admits only a *single* statement, so stacked-query
//! injections (`…; DROP TABLE …`) are outside the language.

use std::fmt;

use crate::token::TokenKind;

/// Nonterminals of the reference SQL grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SqlNt {
    Query,
    Stmt,
    SelectStmt,
    SelectCore,
    FromOpt,
    WhereOpt,
    GroupOpt,
    OrderOpt,
    LimitOpt,
    SelectList,
    SelectItem,
    FromClause,
    TableRef,
    JoinTail,
    WhereClause,
    GroupClause,
    OrderClause,
    OrderList,
    OrderItem,
    LimitClause,
    InsertStmt,
    ColList,
    IdentList,
    ValuesTail,
    UpdateStmt,
    AssignList,
    Assign,
    DeleteStmt,
    Expr,
    OrExpr,
    AndExpr,
    NotExpr,
    CmpExpr,
    AddExpr,
    MulExpr,
    UnaryExpr,
    Primary,
    FuncCall,
    ColRef,
    Literal,
    ExprList,
}

impl SqlNt {
    /// All nonterminals, for iteration.
    pub const ALL: &'static [SqlNt] = &[
        SqlNt::Query,
        SqlNt::Stmt,
        SqlNt::SelectStmt,
        SqlNt::SelectCore,
        SqlNt::FromOpt,
        SqlNt::WhereOpt,
        SqlNt::GroupOpt,
        SqlNt::OrderOpt,
        SqlNt::LimitOpt,
        SqlNt::SelectList,
        SqlNt::SelectItem,
        SqlNt::FromClause,
        SqlNt::TableRef,
        SqlNt::JoinTail,
        SqlNt::WhereClause,
        SqlNt::GroupClause,
        SqlNt::OrderClause,
        SqlNt::OrderList,
        SqlNt::OrderItem,
        SqlNt::LimitClause,
        SqlNt::InsertStmt,
        SqlNt::ColList,
        SqlNt::IdentList,
        SqlNt::ValuesTail,
        SqlNt::UpdateStmt,
        SqlNt::AssignList,
        SqlNt::Assign,
        SqlNt::DeleteStmt,
        SqlNt::Expr,
        SqlNt::OrExpr,
        SqlNt::AndExpr,
        SqlNt::NotExpr,
        SqlNt::CmpExpr,
        SqlNt::AddExpr,
        SqlNt::MulExpr,
        SqlNt::UnaryExpr,
        SqlNt::Primary,
        SqlNt::FuncCall,
        SqlNt::ColRef,
        SqlNt::Literal,
        SqlNt::ExprList,
    ];

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        SqlNt::ALL
            .iter()
            .position(|&n| n == self)
            .expect("ALL is exhaustive")
    }
}

impl fmt::Display for SqlNt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A symbol of the token-level SQL grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TSym {
    /// Terminal: a token kind.
    T(TokenKind),
    /// Nonterminal.
    N(SqlNt),
}

/// The reference grammar: productions over [`TSym`].
#[derive(Debug, Clone)]
pub struct SqlGrammar {
    prods: Vec<(SqlNt, Vec<TSym>)>,
    by_lhs: Vec<Vec<usize>>,
}

impl SqlGrammar {
    /// Builds the standard reference grammar.
    pub fn standard() -> Self {
        use SqlNt::*;
        use TokenKind as K;
        let t = TSym::T;
        let n = TSym::N;
        let rules: Vec<(SqlNt, Vec<TSym>)> = vec![
            (Query, vec![n(Stmt)]),
            (Stmt, vec![n(SelectStmt)]),
            (Stmt, vec![n(InsertStmt)]),
            (Stmt, vec![n(UpdateStmt)]),
            (Stmt, vec![n(DeleteStmt)]),
            // SELECT
            (SelectStmt, vec![n(SelectCore)]),
            (SelectStmt, vec![n(SelectCore), t(K::Union), n(SelectStmt)]),
            (SelectStmt, vec![n(SelectCore), t(K::Union), t(K::All), n(SelectStmt)]),
            (
                SelectCore,
                vec![
                    t(K::Select),
                    n(SelectList),
                    n(FromOpt),
                    n(WhereOpt),
                    n(GroupOpt),
                    n(OrderOpt),
                    n(LimitOpt),
                ],
            ),
            (
                SelectCore,
                vec![
                    t(K::Select),
                    t(K::Distinct),
                    n(SelectList),
                    n(FromOpt),
                    n(WhereOpt),
                    n(GroupOpt),
                    n(OrderOpt),
                    n(LimitOpt),
                ],
            ),
            (FromOpt, vec![]),
            (FromOpt, vec![n(FromClause)]),
            (WhereOpt, vec![]),
            (WhereOpt, vec![n(WhereClause)]),
            (GroupOpt, vec![]),
            (GroupOpt, vec![n(GroupClause)]),
            (OrderOpt, vec![]),
            (OrderOpt, vec![n(OrderClause)]),
            (LimitOpt, vec![]),
            (LimitOpt, vec![n(LimitClause)]),
            (SelectList, vec![t(K::Star)]),
            (SelectList, vec![n(SelectItem)]),
            (SelectList, vec![n(SelectItem), t(K::Comma), n(SelectList)]),
            (SelectItem, vec![n(Expr)]),
            (SelectItem, vec![n(Expr), t(K::As), t(K::Ident)]),
            (FromClause, vec![t(K::From), n(TableRef)]),
            (FromClause, vec![t(K::From), n(TableRef), t(K::Comma), n(TableRef)]),
            (FromClause, vec![t(K::From), n(TableRef), n(JoinTail)]),
            (TableRef, vec![t(K::Ident)]),
            (TableRef, vec![t(K::Ident), t(K::Ident)]),
            (TableRef, vec![t(K::Ident), t(K::As), t(K::Ident)]),
            (JoinTail, vec![t(K::Join), n(TableRef), t(K::On), n(Expr)]),
            (
                JoinTail,
                vec![t(K::Inner), t(K::Join), n(TableRef), t(K::On), n(Expr)],
            ),
            (
                JoinTail,
                vec![t(K::Left), t(K::Join), n(TableRef), t(K::On), n(Expr)],
            ),
            (JoinTail, vec![n(JoinTail), n(JoinTail)]),
            (WhereClause, vec![t(K::Where), n(Expr)]),
            (GroupClause, vec![t(K::Group), t(K::By), n(ExprList)]),
            (GroupClause, vec![t(K::Group), t(K::By), n(ExprList), t(K::Having), n(Expr)]),
            (OrderClause, vec![t(K::Order), t(K::By), n(OrderList)]),
            (OrderList, vec![n(OrderItem)]),
            (OrderList, vec![n(OrderItem), t(K::Comma), n(OrderList)]),
            (OrderItem, vec![n(Expr)]),
            (OrderItem, vec![n(Expr), t(K::Asc)]),
            (OrderItem, vec![n(Expr), t(K::Desc)]),
            (LimitClause, vec![t(K::Limit), t(K::NumberLit)]),
            (
                LimitClause,
                vec![t(K::Limit), t(K::NumberLit), t(K::Comma), t(K::NumberLit)],
            ),
            (
                LimitClause,
                vec![t(K::Limit), t(K::NumberLit), t(K::Offset), t(K::NumberLit)],
            ),
            // INSERT
            (
                InsertStmt,
                vec![
                    t(K::Insert),
                    t(K::Into),
                    t(K::Ident),
                    n(ColList),
                    t(K::Values),
                    t(K::LParen),
                    n(ExprList),
                    t(K::RParen),
                    n(ValuesTail),
                ],
            ),
            (
                InsertStmt,
                vec![
                    t(K::Insert),
                    t(K::Into),
                    t(K::Ident),
                    t(K::Values),
                    t(K::LParen),
                    n(ExprList),
                    t(K::RParen),
                    n(ValuesTail),
                ],
            ),
            (ValuesTail, vec![]),
            (
                ValuesTail,
                vec![t(K::Comma), t(K::LParen), n(ExprList), t(K::RParen), n(ValuesTail)],
            ),
            (ColList, vec![t(K::LParen), n(IdentList), t(K::RParen)]),
            (IdentList, vec![t(K::Ident)]),
            (IdentList, vec![t(K::Ident), t(K::Comma), n(IdentList)]),
            // UPDATE
            (
                UpdateStmt,
                vec![t(K::Update), t(K::Ident), t(K::Set), n(AssignList)],
            ),
            (
                UpdateStmt,
                vec![
                    t(K::Update),
                    t(K::Ident),
                    t(K::Set),
                    n(AssignList),
                    n(WhereClause),
                ],
            ),
            (AssignList, vec![n(Assign)]),
            (AssignList, vec![n(Assign), t(K::Comma), n(AssignList)]),
            (Assign, vec![n(ColRef), t(K::Eq), n(Expr)]),
            // DELETE
            (DeleteStmt, vec![t(K::Delete), t(K::From), t(K::Ident)]),
            (
                DeleteStmt,
                vec![t(K::Delete), t(K::From), t(K::Ident), n(WhereClause)],
            ),
            // Expressions
            (Expr, vec![n(OrExpr)]),
            (OrExpr, vec![n(AndExpr)]),
            (OrExpr, vec![n(OrExpr), t(K::Or), n(AndExpr)]),
            (AndExpr, vec![n(NotExpr)]),
            (AndExpr, vec![n(AndExpr), t(K::And), n(NotExpr)]),
            (NotExpr, vec![n(CmpExpr)]),
            (NotExpr, vec![t(K::Not), n(NotExpr)]),
            (CmpExpr, vec![n(AddExpr)]),
            (CmpExpr, vec![n(AddExpr), t(K::Eq), n(AddExpr)]),
            (CmpExpr, vec![n(AddExpr), t(K::Neq), n(AddExpr)]),
            (CmpExpr, vec![n(AddExpr), t(K::Lt), n(AddExpr)]),
            (CmpExpr, vec![n(AddExpr), t(K::Gt), n(AddExpr)]),
            (CmpExpr, vec![n(AddExpr), t(K::Le), n(AddExpr)]),
            (CmpExpr, vec![n(AddExpr), t(K::Ge), n(AddExpr)]),
            (CmpExpr, vec![n(AddExpr), t(K::Like), n(AddExpr)]),
            (CmpExpr, vec![n(AddExpr), t(K::Not), t(K::Like), n(AddExpr)]),
            (CmpExpr, vec![n(AddExpr), t(K::Is), t(K::Null)]),
            (CmpExpr, vec![n(AddExpr), t(K::Is), t(K::Not), t(K::Null)]),
            (
                CmpExpr,
                vec![n(AddExpr), t(K::In), t(K::LParen), n(ExprList), t(K::RParen)],
            ),
            (
                CmpExpr,
                vec![
                    n(AddExpr),
                    t(K::Not),
                    t(K::In),
                    t(K::LParen),
                    n(ExprList),
                    t(K::RParen),
                ],
            ),
            (
                CmpExpr,
                vec![n(AddExpr), t(K::Between), n(AddExpr), t(K::And), n(AddExpr)],
            ),
            (AddExpr, vec![n(MulExpr)]),
            (AddExpr, vec![n(AddExpr), t(K::Plus), n(MulExpr)]),
            (AddExpr, vec![n(AddExpr), t(K::Minus), n(MulExpr)]),
            (MulExpr, vec![n(UnaryExpr)]),
            (MulExpr, vec![n(MulExpr), t(K::Star), n(UnaryExpr)]),
            (MulExpr, vec![n(MulExpr), t(K::Slash), n(UnaryExpr)]),
            (MulExpr, vec![n(MulExpr), t(K::Percent), n(UnaryExpr)]),
            (UnaryExpr, vec![n(Primary)]),
            (UnaryExpr, vec![t(K::Minus), n(UnaryExpr)]),
            (Primary, vec![n(Literal)]),
            (Primary, vec![n(ColRef)]),
            (Primary, vec![n(FuncCall)]),
            (Primary, vec![t(K::LParen), n(Expr), t(K::RParen)]),
            (Primary, vec![t(K::LParen), n(SelectStmt), t(K::RParen)]),
            (FuncCall, vec![t(K::Ident), t(K::LParen), t(K::RParen)]),
            (FuncCall, vec![t(K::Ident), t(K::LParen), n(ExprList), t(K::RParen)]),
            (FuncCall, vec![t(K::Ident), t(K::LParen), t(K::Star), t(K::RParen)]),
            (ColRef, vec![t(K::Ident)]),
            (ColRef, vec![t(K::Ident), t(K::Dot), t(K::Ident)]),
            (Literal, vec![t(K::StringLit)]),
            (Literal, vec![t(K::NumberLit)]),
            (Literal, vec![t(K::Null)]),
            (ExprList, vec![n(Expr)]),
            (ExprList, vec![n(Expr), t(K::Comma), n(ExprList)]),
        ];
        let mut by_lhs = vec![Vec::new(); SqlNt::ALL.len()];
        for (i, (lhs, _)) in rules.iter().enumerate() {
            by_lhs[lhs.index()].push(i);
        }
        SqlGrammar {
            prods: rules,
            by_lhs,
        }
    }

    /// Returns all productions.
    pub fn productions(&self) -> &[(SqlNt, Vec<TSym>)] {
        &self.prods
    }

    /// Returns the production indexes of `lhs`.
    pub fn productions_of(&self, lhs: SqlNt) -> &[usize] {
        &self.by_lhs[lhs.index()]
    }

    /// Returns production `i`.
    pub fn production(&self, i: usize) -> (&SqlNt, &[TSym]) {
        let (lhs, rhs) = &self.prods[i];
        (lhs, rhs)
    }

    /// Computes the "derives-to-single-symbol" closure:
    /// `reaches[m][n] == true` iff `M ⇒* N` as a full sentential form
    /// (i.e. `N` alone, everything else erased). Includes reflexivity.
    pub fn unit_closure(&self) -> Vec<Vec<bool>> {
        let n = SqlNt::ALL.len();
        // Our grammar's only nullable nonterminal is ValuesTail; compute
        // nullables generically anyway.
        let mut nullable = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for (lhs, rhs) in &self.prods {
                if nullable[lhs.index()] {
                    continue;
                }
                let ok = rhs.iter().all(|s| match s {
                    TSym::T(_) => false,
                    TSym::N(x) => nullable[x.index()],
                });
                if ok {
                    nullable[lhs.index()] = true;
                    changed = true;
                }
            }
        }
        let mut reach = vec![vec![false; n]; n];
        for i in 0..n {
            reach[i][i] = true;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for (lhs, rhs) in &self.prods {
                // lhs =>* X if rhs is (nullables)* X (nullables)* and X
                // reaches the target.
                let non_null: Vec<&TSym> = rhs
                    .iter()
                    .filter(|s| match s {
                        TSym::T(_) => true,
                        TSym::N(x) => !nullable[x.index()],
                    })
                    .collect();
                if non_null.len() == 1 {
                    if let TSym::N(x) = non_null[0] {
                        for k in 0..n {
                            if reach[x.index()][k] && !reach[lhs.index()][k] {
                                reach[lhs.index()][k] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        reach
    }
}

impl Default for SqlGrammar {
    fn default() -> Self {
        SqlGrammar::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_is_well_formed() {
        let g = SqlGrammar::standard();
        assert!(g.productions().len() > 80);
        for nt in SqlNt::ALL {
            // Every nonterminal except pure-helper tails has productions.
            assert!(
                !g.productions_of(*nt).is_empty(),
                "no productions for {nt}"
            );
        }
    }

    #[test]
    fn unit_closure_reflexive_and_chains() {
        let g = SqlGrammar::standard();
        let reach = g.unit_closure();
        let q = SqlNt::Query.index();
        assert!(reach[q][q]);
        // Query =>* SelectStmt via Stmt.
        assert!(reach[q][SqlNt::SelectStmt.index()]);
        // Expr =>* Literal via the precedence chain.
        assert!(reach[SqlNt::Expr.index()][SqlNt::Literal.index()]);
        // But Literal does not reach Expr.
        assert!(!reach[SqlNt::Literal.index()][SqlNt::Expr.index()]);
    }
}
