//! Reference SQL grammar, lexer, and sentential-form derivability for
//! the **strtaint** policy-conformance checker.
//!
//! The paper defines SQL command injection (Definition 2.3) relative to
//! a reference SQL grammar: a query is an attack when some tainted
//! substring is not *syntactically confined* — derivable from a single
//! nonterminal in context. This crate supplies everything the checker
//! needs on the SQL side:
//!
//! - [`TokenKind`]/[`lexer`]: a SQL lexer, marker-aware so that query
//!   *context forms* (with a tainted nonterminal's position held by
//!   [`lexer::VAR_MARKER`]) lex to token sequences containing a
//!   [`TokenKind::Var`] token;
//! - [`SqlGrammar`]: the reference grammar (single statements only —
//!   stacked queries are outside the language by construction);
//! - [`earley::derives_sentential`]: the Earley extension that parses
//!   *sentential forms*, treating nonterminals in the input as
//!   matchable symbols (paper §3.2.2, after Thiemann);
//! - [`mod@derive`]: candidate token kinds per context and the regular
//!   lexeme languages used for the containment side of derivability.
//!
//! # Examples
//!
//! ```
//! use strtaint_sql::{SqlGrammar, earley::recognizes_query};
//!
//! let g = SqlGrammar::standard();
//! assert!(recognizes_query(&g, b"SELECT * FROM users WHERE id='7'"));
//! // The paper's Figure 2 attack is two statements — not a query:
//! assert!(!recognizes_query(
//!     &g,
//!     b"SELECT * FROM `unp_user` WHERE userid='1'; DROP TABLE unp_user; --'",
//! ));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod derive;
pub mod earley;
pub mod grammar;
pub mod lexer;
pub mod runtime;
pub mod token;

pub use grammar::{SqlGrammar, SqlNt, TSym};
pub use lexer::{lex, lex_form, LexSqlError, LexedForm, VarPosition, VAR_MARKER};
pub use token::{SqlToken, TokenKind};
