//! SQL lexer, including marker-aware lexing of sentential context
//! forms.
//!
//! The policy-conformance checker enumerates query *context strings* in
//! which a tainted nonterminal's position is held by a reserved marker
//! byte; [`lex_form`] turns such a string into a token sequence with a
//! [`TokenKind::Var`] token, recording whether the marker sat inside a
//! string literal or backquoted identifier (those cases are handled by
//! the literal checks instead of derivability).

use std::fmt;

use crate::token::{keyword, SqlToken, TokenKind};

/// The reserved marker byte standing for a tainted nonterminal in a
/// context string. 0x1A (SUB) cannot be produced by the corpus PHP
/// sources.
pub const VAR_MARKER: u8 = 0x1a;

/// Where a variable marker occurred during lexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarPosition {
    /// The marker was a free-standing token.
    Bare,
    /// The marker occurred inside a single- or double-quoted string
    /// literal.
    InString,
    /// The marker occurred inside a backquoted identifier.
    InBackquotes,
    /// The marker was glued to identifier/number characters
    /// (e.g. `WHERE id=ab⟨X⟩`), so token boundaries are ambiguous.
    Glued,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexSqlError {
    /// Unterminated string literal.
    UnterminatedString,
    /// Unterminated backquoted identifier.
    UnterminatedBackquote,
    /// Unterminated block comment.
    UnterminatedComment,
    /// A byte that cannot begin any token.
    BadByte(u8),
}

impl fmt::Display for LexSqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexSqlError::UnterminatedString => write!(f, "unterminated string literal"),
            LexSqlError::UnterminatedBackquote => {
                write!(f, "unterminated backquoted identifier")
            }
            LexSqlError::UnterminatedComment => write!(f, "unterminated block comment"),
            LexSqlError::BadByte(b) => write!(f, "unexpected byte 0x{b:02x}"),
        }
    }
}

impl std::error::Error for LexSqlError {}

/// A lexed sentential form: tokens plus the positions of any variable
/// markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexedForm {
    /// The token sequence; markers appear as [`TokenKind::Var`] tokens
    /// when bare.
    pub tokens: Vec<SqlToken>,
    /// One entry per marker occurrence, in source order.
    pub vars: Vec<VarPosition>,
}

/// Tokenizes a complete SQL byte string (no markers).
///
/// # Errors
///
/// Returns a [`LexSqlError`] for unterminated literals/comments or
/// un-tokenizable bytes.
pub fn lex(input: &[u8]) -> Result<Vec<SqlToken>, LexSqlError> {
    let form = lex_form(input)?;
    Ok(form.tokens)
}

/// Tokenizes a sentential context form that may contain [`VAR_MARKER`]
/// bytes.
///
/// # Errors
///
/// Returns a [`LexSqlError`] for unterminated literals/comments or
/// un-tokenizable bytes.
pub fn lex_form(input: &[u8]) -> Result<LexedForm, LexSqlError> {
    let mut tokens = Vec::new();
    let mut vars = Vec::new();
    let mut i = 0usize;
    let n = input.len();
    let is_ident_start = |b: u8| b.is_ascii_alphabetic() || b == b'_';
    let is_ident_cont = |b: u8| b.is_ascii_alphanumeric() || b == b'_';

    while i < n {
        let b = input[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            VAR_MARKER => {
                // Glued to an identifier/number on either side?
                let glued_left = i > 0 && (is_ident_cont(input[i - 1]) || input[i-1] == VAR_MARKER);
                let glued_right = i + 1 < n && (is_ident_cont(input[i + 1]) || input[i+1] == VAR_MARKER);
                if glued_left || glued_right {
                    vars.push(VarPosition::Glued);
                } else {
                    vars.push(VarPosition::Bare);
                }
                tokens.push(SqlToken::new(TokenKind::Var, vec![VAR_MARKER]));
                i += 1;
            }
            b'\'' | b'"' => {
                let quote = b;
                let start = i;
                i += 1;
                let mut saw_var = false;
                loop {
                    if i >= n {
                        return Err(LexSqlError::UnterminatedString);
                    }
                    let c = input[i];
                    if c == b'\\' && i + 1 < n {
                        if input[i + 1] == VAR_MARKER {
                            saw_var = true;
                        }
                        i += 2;
                        continue;
                    }
                    if c == quote {
                        // Doubled quote escape ('' inside '...').
                        if i + 1 < n && input[i + 1] == quote {
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    if c == VAR_MARKER {
                        saw_var = true;
                    }
                    i += 1;
                }
                if saw_var {
                    vars.push(VarPosition::InString);
                }
                tokens.push(SqlToken::new(TokenKind::StringLit, &input[start..i]));
            }
            b'`' => {
                let start = i;
                i += 1;
                let mut saw_var = false;
                loop {
                    if i >= n {
                        return Err(LexSqlError::UnterminatedBackquote);
                    }
                    let c = input[i];
                    if c == b'`' {
                        i += 1;
                        break;
                    }
                    if c == VAR_MARKER {
                        saw_var = true;
                    }
                    i += 1;
                }
                if saw_var {
                    vars.push(VarPosition::InBackquotes);
                }
                tokens.push(SqlToken::new(TokenKind::Ident, &input[start..i]));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < n && (input[i].is_ascii_digit() || input[i] == b'.') {
                    i += 1;
                }
                tokens.push(SqlToken::new(TokenKind::NumberLit, &input[start..i]));
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < n && is_ident_cont(input[i]) {
                    i += 1;
                }
                let text = &input[start..i];
                let kind = keyword(text).unwrap_or(TokenKind::Ident);
                tokens.push(SqlToken::new(kind, text));
            }
            b'-' => {
                if i + 1 < n && input[i + 1] == b'-' {
                    // Line comment.
                    while i < n && input[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(SqlToken::new(TokenKind::Minus, "-"));
                    i += 1;
                }
            }
            b'#' => {
                while i < n && input[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' => {
                if i + 1 < n && input[i + 1] == b'*' {
                    let mut j = i + 2;
                    loop {
                        if j + 1 >= n {
                            return Err(LexSqlError::UnterminatedComment);
                        }
                        if input[j] == b'*' && input[j + 1] == b'/' {
                            break;
                        }
                        j += 1;
                    }
                    i = j + 2;
                } else {
                    tokens.push(SqlToken::new(TokenKind::Slash, "/"));
                    i += 1;
                }
            }
            b'<' => {
                if i + 1 < n && input[i + 1] == b'=' {
                    tokens.push(SqlToken::new(TokenKind::Le, "<="));
                    i += 2;
                } else if i + 1 < n && input[i + 1] == b'>' {
                    tokens.push(SqlToken::new(TokenKind::Neq, "<>"));
                    i += 2;
                } else {
                    tokens.push(SqlToken::new(TokenKind::Lt, "<"));
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < n && input[i + 1] == b'=' {
                    tokens.push(SqlToken::new(TokenKind::Ge, ">="));
                    i += 2;
                } else {
                    tokens.push(SqlToken::new(TokenKind::Gt, ">"));
                    i += 1;
                }
            }
            b'!' => {
                if i + 1 < n && input[i + 1] == b'=' {
                    tokens.push(SqlToken::new(TokenKind::Neq, "!="));
                    i += 2;
                } else {
                    return Err(LexSqlError::BadByte(b));
                }
            }
            b'*' => {
                tokens.push(SqlToken::new(TokenKind::Star, "*"));
                i += 1;
            }
            b',' => {
                tokens.push(SqlToken::new(TokenKind::Comma, ","));
                i += 1;
            }
            b'.' => {
                tokens.push(SqlToken::new(TokenKind::Dot, "."));
                i += 1;
            }
            b'(' => {
                tokens.push(SqlToken::new(TokenKind::LParen, "("));
                i += 1;
            }
            b')' => {
                tokens.push(SqlToken::new(TokenKind::RParen, ")"));
                i += 1;
            }
            b';' => {
                tokens.push(SqlToken::new(TokenKind::Semi, ";"));
                i += 1;
            }
            b'=' => {
                tokens.push(SqlToken::new(TokenKind::Eq, "="));
                i += 1;
            }
            b'+' => {
                tokens.push(SqlToken::new(TokenKind::Plus, "+"));
                i += 1;
            }
            b'%' => {
                tokens.push(SqlToken::new(TokenKind::Percent, "%"));
                i += 1;
            }
            other => return Err(LexSqlError::BadByte(other)),
        }
    }
    Ok(LexedForm { tokens, vars })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &[u8]) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_select() {
        use TokenKind::*;
        assert_eq!(
            kinds(b"SELECT * FROM `unp_user` WHERE userid='1'"),
            vec![Select, Star, From, Ident, Where, Ident, Eq, StringLit]
        );
    }

    #[test]
    fn lex_numbers_and_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds(b"a >= 10 AND b <> 3.5 OR c != 0"),
            vec![Ident, Ge, NumberLit, And, Ident, Neq, NumberLit, Or, Ident, Neq, NumberLit]
        );
    }

    #[test]
    fn lex_comments() {
        use TokenKind::*;
        assert_eq!(kinds(b"SELECT 1 -- trailing"), vec![Select, NumberLit]);
        assert_eq!(kinds(b"SELECT /* x */ 1"), vec![Select, NumberLit]);
        assert_eq!(kinds(b"SELECT 1 # hash"), vec![Select, NumberLit]);
    }

    #[test]
    fn string_escapes() {
        let t = lex(br"SELECT 'it\'s ok'").unwrap();
        assert_eq!(t[1].kind, TokenKind::StringLit);
        let t = lex(b"SELECT 'a''b'").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert_eq!(lex(b"SELECT 'oops"), Err(LexSqlError::UnterminatedString));
        assert_eq!(lex(b"SELECT `oops"), Err(LexSqlError::UnterminatedBackquote));
    }

    #[test]
    fn marker_positions() {
        let mut q = b"SELECT * FROM t WHERE id=".to_vec();
        q.push(VAR_MARKER);
        let form = lex_form(&q).unwrap();
        assert_eq!(form.vars, vec![VarPosition::Bare]);
        assert_eq!(form.tokens.last().unwrap().kind, TokenKind::Var);

        let mut q = b"SELECT * FROM t WHERE id='".to_vec();
        q.push(VAR_MARKER);
        q.extend_from_slice(b"'");
        let form = lex_form(&q).unwrap();
        assert_eq!(form.vars, vec![VarPosition::InString]);

        let mut q = b"SELECT * FROM t ORDER BY `".to_vec();
        q.push(VAR_MARKER);
        q.extend_from_slice(b"`");
        let form = lex_form(&q).unwrap();
        assert_eq!(form.vars, vec![VarPosition::InBackquotes]);

        let mut q = b"SELECT * FROM t WHERE id=ab".to_vec();
        q.push(VAR_MARKER);
        let form = lex_form(&q).unwrap();
        assert_eq!(form.vars, vec![VarPosition::Glued]);
    }

    #[test]
    fn attack_query_lexes_as_two_statements() {
        use TokenKind::*;
        let k = kinds(b"SELECT * FROM `unp_user` WHERE userid='1'; DROP TABLE unp_user; --'");
        // DROP and TABLE are plain identifiers; the trailing --' is a comment.
        assert!(k.contains(&Semi));
        assert_eq!(k.iter().filter(|&&t| t == Semi).count(), 2);
        assert!(k.ends_with(&[Ident, Ident, Semi]));
    }
}
