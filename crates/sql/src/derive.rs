//! Derivability checking (paper §3.2.2, Definition 3.2).
//!
//! For a tainted nonterminal `X` that the literal-position checks could
//! not classify, the checker asks: in every query context, can the
//! strings of `L(X)` be derived from a single symbol of the reference
//! SQL grammar? We decompose this per Definition 2.2:
//!
//! 1. **Context**: for each enumerated context form (the query with `X`
//!    held by a marker), find the token kinds `k` such that the form
//!    with the marker replaced by `k` is a sentential form of the SQL
//!    grammar ([`context_candidates`]).
//! 2. **Containment**: verify `L(X) ⊆` the lexeme language of some such
//!    `k` ([`lexeme_dfa`] gives the regular lexeme languages; the
//!    caller checks containment with grammar-automaton intersection).
//!
//! Failure at any step makes the checker report — conservative and
//! sound (Theorem 3.4).

use strtaint_automata::{Dfa, Regex};
use strtaint_grammar::budget::{Budget, BudgetExceeded};

use crate::grammar::{SqlGrammar, SqlNt, TSym};
use crate::lexer::LexedForm;
use crate::token::TokenKind;

/// Token kinds a tainted substring may stand for in a query.
pub const CANDIDATE_KINDS: &[TokenKind] = &[
    TokenKind::NumberLit,
    TokenKind::StringLit,
    TokenKind::Ident,
];

/// Returns the candidate kinds `k` for which the lexed context form,
/// with every bare `Var` token replaced by `k`, is a sentential form of
/// the grammar (all occurrences of the variable are substituted
/// consistently).
///
/// Returns an empty vector when the form has no bare variable (nothing
/// to check) or no candidate parses.
pub fn context_candidates(g: &SqlGrammar, form: &LexedForm) -> Vec<TokenKind> {
    context_candidates_with(g, form, &Budget::unlimited())
        .expect("an unlimited budget cannot be exceeded")
}

/// Budgeted form of [`context_candidates`].
///
/// On exhaustion the candidate set is unknown; callers must report the
/// hotspot unverified rather than assume any candidate fits.
pub fn context_candidates_with(
    g: &SqlGrammar,
    form: &LexedForm,
    budget: &Budget,
) -> Result<Vec<TokenKind>, BudgetExceeded> {
    let has_var = form
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Var);
    if !has_var {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for &k in CANDIDATE_KINDS {
        let syms: Vec<TSym> = form
            .tokens
            .iter()
            .map(|t| {
                if t.kind == TokenKind::Var {
                    TSym::T(k)
                } else {
                    TSym::T(t.kind)
                }
            })
            .collect();
        if crate::earley::derives_sentential_with(g, SqlNt::Query, &syms, budget)? {
            out.push(k);
        }
    }
    Ok(out)
}

/// Returns a DFA for the lexeme language of a candidate token kind:
/// the exact set of byte strings that lex as one token of that kind.
///
/// # Panics
///
/// Panics if called with a kind outside [`CANDIDATE_KINDS`].
pub fn lexeme_dfa(kind: TokenKind) -> Dfa {
    let pattern = match kind {
        // MySQL-ish numeric literal.
        TokenKind::NumberLit => r"^[0-9]+(\.[0-9]+)?$",
        // A complete single-quoted string literal with escaped quotes.
        TokenKind::StringLit => r"^'([^'\\]|\\.|'')*'$",
        // A bare identifier (keywords excluded conservatively by the
        // caller if needed) or a backquoted one.
        TokenKind::Ident => r"^([A-Za-z_][A-Za-z0-9_]*|`[^`]+`)$",
        other => panic!("no lexeme language for {other:?}"),
    };
    Regex::new(pattern)
        .expect("lexeme patterns are valid")
        .match_dfa()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex_form, VAR_MARKER};

    fn form(prefix: &[u8], suffix: &[u8]) -> LexedForm {
        let mut q = prefix.to_vec();
        q.push(VAR_MARKER);
        q.extend_from_slice(suffix);
        lex_form(&q).unwrap()
    }

    #[test]
    fn numeric_position_candidates() {
        let g = SqlGrammar::standard();
        // SELECT * FROM t WHERE id=⟨X⟩ — number, string, or column name
        // are all grammatical here.
        let c = context_candidates(&g, &form(b"SELECT * FROM t WHERE id=", b""));
        assert!(c.contains(&TokenKind::NumberLit));
        assert!(c.contains(&TokenKind::StringLit));
        assert!(c.contains(&TokenKind::Ident));
    }

    #[test]
    fn limit_position_is_numeric_only() {
        let g = SqlGrammar::standard();
        let c = context_candidates(&g, &form(b"SELECT * FROM t LIMIT ", b""));
        assert_eq!(c, vec![TokenKind::NumberLit]);
    }

    #[test]
    fn table_position_is_ident_only() {
        let g = SqlGrammar::standard();
        let c = context_candidates(&g, &form(b"SELECT * FROM ", b" WHERE id=1"));
        assert_eq!(c, vec![TokenKind::Ident]);
    }

    #[test]
    fn broken_context_has_no_candidates() {
        let g = SqlGrammar::standard();
        // ⟨X⟩ directly after WHERE '=' chain is fine, but after a
        // complete statement it is not.
        let c = context_candidates(&g, &form(b"SELECT * FROM t WHERE id=1 ", b""));
        assert!(c.is_empty());
    }

    #[test]
    fn lexeme_languages() {
        let num = lexeme_dfa(TokenKind::NumberLit);
        assert!(num.accepts(b"42") && num.accepts(b"3.14"));
        assert!(!num.accepts(b"4x") && !num.accepts(b""));
        let ident = lexeme_dfa(TokenKind::Ident);
        assert!(ident.accepts(b"users") && ident.accepts(b"`weird name`"));
        assert!(!ident.accepts(b"1abc"));
        assert!(!ident.accepts(b"a b"));
        let s = lexeme_dfa(TokenKind::StringLit);
        assert!(s.accepts(b"'abc'") && s.accepts(br"'it\'s'"));
        assert!(!s.accepts(b"'unterminated"));
        assert!(!s.accepts(b"'a' OR '1'='1'"));
    }

    #[test]
    fn consistent_substitution_for_repeated_var() {
        let g = SqlGrammar::standard();
        // X appears twice: WHERE a=⟨X⟩ OR b=⟨X⟩
        let mut q = b"SELECT * FROM t WHERE a=".to_vec();
        q.push(VAR_MARKER);
        q.extend_from_slice(b" OR b=");
        q.push(VAR_MARKER);
        let f = lex_form(&q).unwrap();
        let c = context_candidates(&g, &f);
        assert!(c.contains(&TokenKind::NumberLit));
    }
}
