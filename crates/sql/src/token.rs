//! SQL tokens.

use std::fmt;

/// The kind of a SQL token. This is the terminal alphabet of the
/// reference SQL grammar used by the policy-conformance checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TokenKind {
    // Keywords.
    /// `SELECT`
    Select,
    /// `INSERT`
    Insert,
    /// `UPDATE`
    Update,
    /// `DELETE`
    Delete,
    /// `FROM`
    From,
    /// `WHERE`
    Where,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `INTO`
    Into,
    /// `VALUES`
    Values,
    /// `SET`
    Set,
    /// `ORDER`
    Order,
    /// `GROUP`
    Group,
    /// `BY`
    By,
    /// `HAVING`
    Having,
    /// `LIMIT`
    Limit,
    /// `OFFSET`
    Offset,
    /// `ASC`
    Asc,
    /// `DESC`
    Desc,
    /// `AS`
    As,
    /// `DISTINCT`
    Distinct,
    /// `LIKE`
    Like,
    /// `IN`
    In,
    /// `IS`
    Is,
    /// `NULL`
    Null,
    /// `BETWEEN`
    Between,
    /// `JOIN`
    Join,
    /// `INNER`
    Inner,
    /// `LEFT`
    Left,
    /// `ON`
    On,
    /// `UNION`
    Union,
    /// `ALL`
    All,
    // Lexical classes.
    /// Identifier (bare or backquoted).
    Ident,
    /// String literal (single- or double-quoted).
    StringLit,
    /// Numeric literal.
    NumberLit,
    // Punctuation and operators.
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// The opaque variable marker used in sentential forms
    /// (a tainted nonterminal's position in a context string).
    Var,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Select => "SELECT",
            TokenKind::Insert => "INSERT",
            TokenKind::Update => "UPDATE",
            TokenKind::Delete => "DELETE",
            TokenKind::From => "FROM",
            TokenKind::Where => "WHERE",
            TokenKind::And => "AND",
            TokenKind::Or => "OR",
            TokenKind::Not => "NOT",
            TokenKind::Into => "INTO",
            TokenKind::Values => "VALUES",
            TokenKind::Set => "SET",
            TokenKind::Order => "ORDER",
            TokenKind::Group => "GROUP",
            TokenKind::By => "BY",
            TokenKind::Having => "HAVING",
            TokenKind::Limit => "LIMIT",
            TokenKind::Offset => "OFFSET",
            TokenKind::Asc => "ASC",
            TokenKind::Desc => "DESC",
            TokenKind::As => "AS",
            TokenKind::Distinct => "DISTINCT",
            TokenKind::Like => "LIKE",
            TokenKind::In => "IN",
            TokenKind::Is => "IS",
            TokenKind::Null => "NULL",
            TokenKind::Between => "BETWEEN",
            TokenKind::Join => "JOIN",
            TokenKind::Inner => "INNER",
            TokenKind::Left => "LEFT",
            TokenKind::On => "ON",
            TokenKind::Union => "UNION",
            TokenKind::All => "ALL",
            TokenKind::Ident => "<ident>",
            TokenKind::StringLit => "<string>",
            TokenKind::NumberLit => "<number>",
            TokenKind::Star => "*",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Semi => ";",
            TokenKind::Eq => "=",
            TokenKind::Neq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Var => "⟨X⟩",
        };
        write!(f, "{s}")
    }
}

/// Looks up the keyword kind for an identifier, if any
/// (case-insensitive).
pub fn keyword(text: &[u8]) -> Option<TokenKind> {
    let up: Vec<u8> = text.iter().map(|b| b.to_ascii_uppercase()).collect();
    Some(match up.as_slice() {
        b"SELECT" => TokenKind::Select,
        b"INSERT" => TokenKind::Insert,
        b"UPDATE" => TokenKind::Update,
        b"DELETE" => TokenKind::Delete,
        b"FROM" => TokenKind::From,
        b"WHERE" => TokenKind::Where,
        b"AND" => TokenKind::And,
        b"OR" => TokenKind::Or,
        b"NOT" => TokenKind::Not,
        b"INTO" => TokenKind::Into,
        b"VALUES" => TokenKind::Values,
        b"SET" => TokenKind::Set,
        b"ORDER" => TokenKind::Order,
        b"GROUP" => TokenKind::Group,
        b"BY" => TokenKind::By,
        b"HAVING" => TokenKind::Having,
        b"LIMIT" => TokenKind::Limit,
        b"OFFSET" => TokenKind::Offset,
        b"ASC" => TokenKind::Asc,
        b"DESC" => TokenKind::Desc,
        b"AS" => TokenKind::As,
        b"DISTINCT" => TokenKind::Distinct,
        b"LIKE" => TokenKind::Like,
        b"IN" => TokenKind::In,
        b"IS" => TokenKind::Is,
        b"NULL" => TokenKind::Null,
        b"BETWEEN" => TokenKind::Between,
        b"JOIN" => TokenKind::Join,
        b"INNER" => TokenKind::Inner,
        b"LEFT" => TokenKind::Left,
        b"ON" => TokenKind::On,
        b"UNION" => TokenKind::Union,
        b"ALL" => TokenKind::All,
        _ => return None,
    })
}

/// A lexed SQL token: kind plus source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlToken {
    /// Token class.
    pub kind: TokenKind,
    /// Raw source text (for string literals, includes the quotes).
    pub text: Vec<u8>,
}

impl SqlToken {
    /// Creates a token.
    pub fn new(kind: TokenKind, text: impl Into<Vec<u8>>) -> Self {
        SqlToken {
            kind,
            text: text.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(keyword(b"select"), Some(TokenKind::Select));
        assert_eq!(keyword(b"SeLeCt"), Some(TokenKind::Select));
        assert_eq!(keyword(b"selects"), None);
        assert_eq!(keyword(b"drop"), None, "DROP is not in the reference grammar");
    }

    #[test]
    fn display_roundtrip_samples() {
        assert_eq!(TokenKind::Select.to_string(), "SELECT");
        assert_eq!(TokenKind::Neq.to_string(), "!=");
        assert_eq!(TokenKind::Ident.to_string(), "<ident>");
    }
}
