//! Runtime syntactic-confinement checking — the SqlCheck approach of
//! the paper's companion work (Su & Wassermann, POPL 2006, cited as
//! [25] and used for Definition 2.2/2.3).
//!
//! Where the static analysis of this repository checks *grammars* of
//! queries before deployment, a runtime monitor sees one concrete query
//! with the user-provided substring marked (e.g. by delimiters inserted
//! at the sources) and must decide whether that substring is
//! *syntactically confined*: derivable from a single symbol of the SQL
//! grammar within the query's parse. The paper's §6.3 discusses this
//! family of defenses; implementing it here lets the benches compare
//! static verification against per-query runtime checking on identical
//! policies.

use crate::earley::derives_sentential;
use crate::grammar::{SqlGrammar, SqlNt, TSym};
use crate::lexer::{lex, LexSqlError};
use crate::token::TokenKind;

/// Verdict of the runtime check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeVerdict {
    /// The query parses and the tainted substring is syntactically
    /// confined under the given nonterminal(s).
    Confined(Vec<SqlNt>),
    /// The tainted substring spans a token boundary or cannot be
    /// derived from any single grammar symbol — an injection attack by
    /// Definition 2.3.
    Attack,
    /// The whole query does not lex/parse as a single SQL statement.
    Malformed,
}

/// Checks one concrete query in which `span` (byte range) marks the
/// user-provided substring — Definition 2.2 evaluated at runtime.
///
/// The check is *exact* for the reference grammar: the tainted bytes
/// must cover whole tokens, and replacing that token run by a grammar
/// symbol must leave a sentential form of the grammar.
pub fn check_query(g: &SqlGrammar, query: &[u8], span: (usize, usize)) -> RuntimeVerdict {
    let (lo, hi) = span;
    if lo > hi || hi > query.len() {
        return RuntimeVerdict::Malformed;
    }
    // Tokenize with byte offsets by re-lexing prefixes: the lexer
    // reports token text; recover offsets by scanning.
    let tokens = match lex(query) {
        Ok(t) => t,
        Err(LexSqlError::UnterminatedString)
        | Err(LexSqlError::UnterminatedBackquote)
        | Err(LexSqlError::UnterminatedComment)
        | Err(LexSqlError::BadByte(_)) => return RuntimeVerdict::Malformed,
    };
    // Recover token byte ranges.
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(tokens.len());
    let mut cursor = 0usize;
    for t in &tokens {
        // Find the token text at or after the cursor.
        let Some(found) = find_from(query, &t.text, cursor) else {
            return RuntimeVerdict::Malformed;
        };
        ranges.push((found, found + t.text.len()));
        cursor = found + t.text.len();
    }
    // Which tokens does the tainted span overlap?
    let overlapping: Vec<usize> = ranges
        .iter()
        .enumerate()
        .filter(|(_, &(s, e))| s < hi && lo < e)
        .map(|(i, _)| i)
        .collect();
    let full_syms: Vec<TSym> = tokens.iter().map(|t| TSym::T(t.kind)).collect();
    if overlapping.is_empty() {
        // Tainted bytes are whitespace/comments only: harmless iff the
        // whole query parses.
        return if derives_sentential(g, SqlNt::Query, &full_syms) {
            RuntimeVerdict::Confined(Vec::new())
        } else {
            RuntimeVerdict::Malformed
        };
    }
    let first = overlapping[0];
    let last = *overlapping.last().expect("nonempty");
    // The classic quoted-input case: the span lies strictly inside a
    // single string-literal or identifier token.
    let single_literal_containment = first == last
        && matches!(tokens[first].kind, TokenKind::StringLit | TokenKind::Ident)
        && ranges[first].0 < lo
        && hi < ranges[first].1;

    // Skeleton test: replace the tainted region with a benign literal
    // and see whether the *program-written* query shape parses at all.
    // If even that fails the query is malformed independent of the
    // input; if it parses but the real query does not, the input broke
    // the syntax — an attack.
    let skeleton_ok = if single_literal_containment {
        derives_sentential(g, SqlNt::Query, &full_syms)
    } else {
        // The benign stand-ins for "what the programmer wrote around
        // the input": a literal value, or nothing at all (appended-
        // clause injections have an empty honest counterpart).
        [Some(TokenKind::NumberLit), None].iter().any(|stand_in| {
            let mut v = Vec::with_capacity(tokens.len());
            for (i, t) in tokens.iter().enumerate() {
                if i == first {
                    if let Some(k) = stand_in {
                        v.push(TSym::T(*k));
                    }
                }
                if overlapping.contains(&i) {
                    continue;
                }
                v.push(TSym::T(t.kind));
            }
            derives_sentential(g, SqlNt::Query, &v)
        })
    };
    if !skeleton_ok {
        return RuntimeVerdict::Malformed;
    }

    if single_literal_containment {
        // Confined within the literal iff the whole query parses (the
        // input cannot have escaped: the lexer kept it inside one
        // token).
        return if derives_sentential(g, SqlNt::Query, &full_syms) {
            RuntimeVerdict::Confined(vec![SqlNt::Literal])
        } else {
            RuntimeVerdict::Malformed
        };
    }

    // Otherwise the span must cover whole tokens: a partial overlap
    // means the attacker controls a token boundary.
    if lo > ranges[first].0 || hi < ranges[last].1 {
        return RuntimeVerdict::Attack;
    }

    // Definition 2.2, both halves: some nonterminal must (a) be
    // grammatical in the tainted run's position and (b) derive the run.
    let run_syms: Vec<TSym> = overlapping
        .iter()
        .map(|&i| TSym::T(tokens[i].kind))
        .collect();
    let mut confined = Vec::new();
    for &nt in SqlNt::ALL {
        let mut syms: Vec<TSym> = Vec::with_capacity(tokens.len());
        for (i, t) in tokens.iter().enumerate() {
            if i == first {
                syms.push(TSym::N(nt));
            }
            if overlapping.contains(&i) {
                continue;
            }
            syms.push(TSym::T(t.kind));
        }
        if derives_sentential(g, SqlNt::Query, &syms)
            && derives_sentential(g, nt, &run_syms)
        {
            confined.push(nt);
        }
    }
    if confined.is_empty() {
        RuntimeVerdict::Attack
    } else {
        RuntimeVerdict::Confined(confined)
    }
}

fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() {
        return Some(from);
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> SqlGrammar {
        SqlGrammar::standard()
    }

    /// Builds (query, tainted span) by splicing `input` into the
    /// template at `{}`.
    fn splice(template: &str, input: &str) -> (Vec<u8>, (usize, usize)) {
        let pos = template.find("{}").expect("placeholder");
        let mut q = Vec::new();
        q.extend_from_slice(template[..pos].as_bytes());
        let lo = q.len();
        q.extend_from_slice(input.as_bytes());
        let hi = q.len();
        q.extend_from_slice(template[pos + 2..].as_bytes());
        (q, (lo, hi))
    }

    #[test]
    fn honest_quoted_input_is_confined() {
        let (q, span) = splice("SELECT * FROM `unp_user` WHERE userid='{}'", "42");
        assert!(matches!(
            check_query(&g(), &q, span),
            RuntimeVerdict::Confined(_)
        ));
    }

    #[test]
    fn the_papers_attack_is_caught() {
        // Figure 2's attack: the tainted substring spans quote + two
        // statements — not derivable from any single symbol.
        let (q, span) = splice(
            "SELECT * FROM `unp_user` WHERE userid='{}'",
            "1'; DROP TABLE unp_user; --",
        );
        assert_eq!(check_query(&g(), &q, span), RuntimeVerdict::Attack);
    }

    #[test]
    fn tautology_attack_is_caught() {
        let (q, span) = splice("SELECT * FROM t WHERE name='{}'", "x' OR '1'='1");
        assert_eq!(check_query(&g(), &q, span), RuntimeVerdict::Attack);
    }

    #[test]
    fn honest_numeric_input_unquoted() {
        let (q, span) = splice("SELECT * FROM t WHERE id={}", "7");
        let RuntimeVerdict::Confined(nts) = check_query(&g(), &q, span) else {
            panic!("expected confined");
        };
        assert!(nts.contains(&SqlNt::Literal), "{nts:?}");
    }

    #[test]
    fn unquoted_expression_injection_is_caught() {
        let (q, span) = splice("SELECT * FROM t WHERE id={}", "1 OR 1=1");
        assert_eq!(check_query(&g(), &q, span), RuntimeVerdict::Attack);
    }

    #[test]
    fn whole_clause_injection_is_caught() {
        let (q, span) = splice("SELECT * FROM t WHERE id=1 {}", "UNION SELECT pw FROM u");
        assert_eq!(check_query(&g(), &q, span), RuntimeVerdict::Attack);
    }

    #[test]
    fn malformed_query_detected() {
        let (q, span) = splice("SELECT * FROM WHERE id='{}'", "1");
        assert_eq!(check_query(&g(), &q, span), RuntimeVerdict::Malformed);
        let (q, span) = splice("SELECT * FROM t WHERE id='{}", "1");
        assert_eq!(check_query(&g(), &q, span), RuntimeVerdict::Malformed);
    }

    #[test]
    fn runtime_agrees_with_static_on_figure2() {
        // The runtime monitor catches at execution time what the static
        // analysis reports pre-deployment — same policy, two phases.
        let attacks = [
            "1'; DROP TABLE unp_user; --",
            "0' OR '1'='1",
        ];
        let honest = ["1", "42", "10057"];
        for a in attacks {
            let (q, span) = splice("SELECT * FROM `unp_user` WHERE userid='{}'", a);
            assert_eq!(check_query(&g(), &q, span), RuntimeVerdict::Attack, "{a}");
        }
        for h in honest {
            let (q, span) = splice("SELECT * FROM `unp_user` WHERE userid='{}'", h);
            assert!(
                matches!(check_query(&g(), &q, span), RuntimeVerdict::Confined(_)),
                "{h}"
            );
        }
    }
}
