//! Property tests for the SQL lexer and sentential-form recognizer.

use proptest::prelude::*;

use strtaint_sql::earley::{derives_sentential, recognizes_query};
use strtaint_sql::{lex, SqlGrammar, SqlNt, TSym, TokenKind};

/// Strategy generating syntactically valid queries from templates.
fn valid_query() -> impl Strategy<Value = String> {
    // Random words can collide with SQL keywords ("as", "in", "is", …),
    // which would make the template ungrammatical — filter them out.
    let ident = "[a-z]{1,6}".prop_filter("not a keyword", |w| {
        strtaint_sql::token::keyword(w.as_bytes()).is_none()
    });
    let num = "[0-9]{1,4}";
    (ident.clone(), ident, num, "[a-z]{1,6}").prop_flat_map(|(t, c, n, v)| {
        prop_oneof![
            Just(format!("SELECT * FROM {t} WHERE {c} = {n}")),
            Just(format!("SELECT {c} FROM {t} WHERE {c} = '{v}' ORDER BY {c} DESC")),
            Just(format!("INSERT INTO {t} ({c}) VALUES ({n})")),
            Just(format!("UPDATE {t} SET {c} = '{v}' WHERE {c} = {n}")),
            Just(format!("DELETE FROM {t} WHERE {c} < {n}")),
            Just(format!("SELECT COUNT(*) FROM {t} GROUP BY {c}")),
            Just(format!("SELECT * FROM {t} WHERE {c} LIKE '%{v}%' LIMIT {n}")),
            Just(format!("SELECT * FROM {t} WHERE {c} IS NOT NULL AND {c} != {n}")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_queries_lex_and_parse(q in valid_query()) {
        let g = SqlGrammar::standard();
        prop_assert!(lex(q.as_bytes()).is_ok(), "{q}");
        prop_assert!(recognizes_query(&g, q.as_bytes()), "{q}");
    }

    #[test]
    fn stacking_a_statement_breaks_recognition(q in valid_query()) {
        let g = SqlGrammar::standard();
        let attacked = format!("{q}; DROP TABLE users; --");
        prop_assert!(!recognizes_query(&g, attacked.as_bytes()), "{attacked}");
    }

    #[test]
    fn lexer_is_total_on_printable_ascii(s in "[ -~]{0,32}") {
        // The lexer either produces tokens or a structured error; it
        // must never panic.
        let _ = lex(s.as_bytes());
    }

    #[test]
    fn keywords_roundtrip_case(kw in prop_oneof![
        Just("select"), Just("from"), Just("where"), Just("order"), Just("union")
    ], upper in proptest::bool::ANY) {
        let text = if upper { kw.to_uppercase() } else { kw.to_string() };
        let toks = lex(text.as_bytes()).unwrap();
        prop_assert_eq!(toks.len(), 1);
        prop_assert_ne!(toks[0].kind, TokenKind::Ident, "{} must lex as keyword", text);
    }

    #[test]
    fn sentential_forms_generalize_strings(q in valid_query()) {
        // Replacing any literal token with the Literal nonterminal keeps
        // the form derivable.
        let g = SqlGrammar::standard();
        let toks = lex(q.as_bytes()).unwrap();
        let mut syms: Vec<TSym> = toks.iter().map(|t| TSym::T(t.kind)).collect();
        prop_assert!(derives_sentential(&g, SqlNt::Query, &syms), "{q}");
        for i in 0..syms.len() {
            // LIMIT/OFFSET positions take bare numbers, not general
            // literals — skip them.
            let in_limit = i >= 1
                && matches!(
                    syms[i - 1],
                    TSym::T(TokenKind::Limit | TokenKind::Offset | TokenKind::Comma)
                )
                && syms[..i]
                    .iter()
                    .any(|s| matches!(s, TSym::T(TokenKind::Limit)));
            if !in_limit
                && matches!(syms[i], TSym::T(TokenKind::NumberLit | TokenKind::StringLit))
            {
                let saved = syms[i];
                syms[i] = TSym::N(SqlNt::Literal);
                prop_assert!(
                    derives_sentential(&g, SqlNt::Query, &syms),
                    "{q} with token {i} abstracted"
                );
                syms[i] = saved;
            }
        }
    }
}
