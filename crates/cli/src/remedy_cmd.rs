//! The `strtaint fix` and `strtaint profile` subcommands (the CLI
//! surface of `strtaint-remedy`).
//!
//! `fix` plans one deterministic repair per finding, applies the
//! unambiguous plans to an in-memory copy of the tree, and re-analyzes
//! that copy to prove each finding discharged. The default is a dry
//! run (nothing on disk changes); `--apply` writes the repaired files
//! back, and `--sarif` renders the plans as SARIF `fixes` instead.
//! `profile` exports each hotspot's query-skeleton allowlist as the
//! versioned guard-profile artifact.

use std::path::Path;

use strtaint::{Config, Vfs};
use strtaint_remedy::{profile_pages, render_profile, run_fix, to_result_fixes, Strategy};

const FIX_USAGE: &str = "usage: strtaint fix [--policy LIST] [--apply] [--sarif] \
                         [--timeout SECS] [--fuel N] <dir> <entry.php>...";
const PROFILE_USAGE: &str = "usage: strtaint profile [--policy LIST] [--timeout SECS] \
                             [--fuel N] <dir> <entry.php>...";

struct RemedyOptions {
    policies: Option<Vec<String>>,
    apply: bool,
    sarif: bool,
    timeout: Option<std::time::Duration>,
    fuel: Option<u64>,
    dir: String,
    entries: Vec<String>,
}

fn parse(args: &[String], allow_apply: bool, usage: &str) -> Result<RemedyOptions, String> {
    let mut opts = RemedyOptions {
        policies: None,
        apply: false,
        sarif: false,
        timeout: None,
        fuel: None,
        dir: String::new(),
        entries: Vec::new(),
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--policy" => {
                let v = it.next().ok_or("--policy requires a policy list")?;
                let sel =
                    strtaint::policy::parse_selection(v).map_err(|e| format!("--policy: {e}"))?;
                opts.policies = Some(sel);
            }
            "--apply" if allow_apply => opts.apply = true,
            "--sarif" if allow_apply => opts.sarif = true,
            "--timeout" => {
                let v = it.next().ok_or("--timeout requires SECS")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--timeout: not a number: {v}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--timeout: must be positive: {v}"));
                }
                opts.timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--fuel" => {
                let v = it.next().ok_or("--fuel requires N")?;
                let n: u64 = v.parse().map_err(|_| format!("--fuel: not a number: {v}"))?;
                if n == 0 {
                    return Err("--fuel: must be positive".to_owned());
                }
                opts.fuel = Some(n);
            }
            "--help" | "-h" => return Err(usage.to_owned()),
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_owned()),
        }
    }
    if opts.apply && opts.sarif {
        return Err("--apply and --sarif are mutually exclusive".to_owned());
    }
    if positional.len() < 2 {
        return Err(usage.to_owned());
    }
    opts.dir = positional.remove(0);
    opts.entries = positional;
    Ok(opts)
}

fn load(dir: &str) -> Result<Vfs, String> {
    match Vfs::from_dir(Path::new(dir)) {
        Ok(v) if !v.is_empty() => Ok(v),
        Ok(_) => Err(format!("no .php files under {dir}")),
        Err(e) => Err(format!("cannot read {dir}: {e}")),
    }
}

fn config_of(opts: &RemedyOptions) -> Config {
    let mut config = Config {
        timeout: opts.timeout,
        fuel: opts.fuel,
        ..Config::default()
    };
    if let Some(policies) = &opts.policies {
        config.policies = policies.clone();
    }
    config
}

/// Runs `strtaint fix`; returns the process exit code (0 = every
/// finding discharged or none found, 1 = findings remain, 2 = usage
/// or IO error).
pub fn cli_fix(args: &[String]) -> u8 {
    let opts = match parse(args, true, FIX_USAGE) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let vfs = match load(&opts.dir) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let config = config_of(&opts);
    let outcome = match run_fix(&vfs, &opts.entries, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };

    if opts.sarif {
        // SARIF mode renders the *original* findings with their fixes
        // attached; editors apply the changes themselves.
        let fixes = to_result_fixes(&vfs, &outcome.plans);
        print!(
            "{}",
            strtaint::render::sarif_with_fixes(&outcome.reports, &fixes)
        );
    } else {
        for (i, plan) in outcome.plans.iter().enumerate() {
            let what = match (&plan.strategy, &plan.ambiguous) {
                (Some(Strategy::Sanitize { function }), _) => {
                    format!("wrap in {function}()")
                }
                (Some(Strategy::Guard { pattern, var }), _) => {
                    format!("guard ${var} with {pattern}")
                }
                (None, Some(reason)) => format!("ambiguous: {reason}"),
                (None, None) => "no strategy".to_owned(),
            };
            let status = if !plan.is_applicable() {
                "skipped"
            } else if outcome.discharged[i] {
                "discharged"
            } else if outcome.applied[i] {
                "applied, NOT discharged"
            } else {
                "conflicting, not applied"
            };
            println!(
                "{}: {} [{}] — {what} ({status})",
                plan.entry, plan.source, plan.rule
            );
        }
        let applied = outcome.applied.iter().filter(|&&b| b).count();
        let discharged = outcome.discharged.iter().filter(|&&b| b).count();
        let remaining = outcome.remaining_findings();
        println!(
            "\n{} plan(s): {applied} applied, {discharged} discharged; \
             {remaining} finding(s) remain after repair.",
            outcome.plans.len()
        );
        if opts.apply {
            let mut written = 0usize;
            for path in outcome.fixed_vfs.paths() {
                let new = outcome.fixed_vfs.get(path);
                if new.is_some() && new != vfs.get(path) {
                    let target = Path::new(&opts.dir).join(path);
                    if let Err(e) = std::fs::write(&target, new.unwrap_or_default()) {
                        eprintln!("cannot write {}: {e}", target.display());
                        return 2;
                    }
                    println!("rewrote {path}");
                    written += 1;
                }
            }
            println!("{written} file(s) rewritten in {}.", opts.dir);
        } else {
            println!("dry run: no files changed (use --apply to write).");
        }
    }
    u8::from(outcome.remaining_findings() > 0)
}

/// Runs `strtaint profile`; returns the process exit code (0 = profile
/// rendered, 2 = usage or IO error).
pub fn cli_profile(args: &[String]) -> u8 {
    let opts = match parse(args, false, PROFILE_USAGE) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let vfs = match load(&opts.dir) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let config = config_of(&opts);
    let checker = strtaint::PolicyChecker::with_options(strtaint::CheckOptions::default());
    let summaries = strtaint::SummaryCache::new();
    let mut reports = Vec::new();
    for entry in &opts.entries {
        match strtaint::analyze_page_policies_cached(&vfs, entry, &config, &checker, &summaries) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("{entry}: {e}");
                return 2;
            }
        }
    }
    print!("{}", render_profile(&profile_pages(&reports)));
    0
}
