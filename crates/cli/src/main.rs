//! The `strtaint` command-line analyzer.
//!
//! ```text
//! strtaint [OPTIONS] <PROJECT_DIR> <ENTRY.php|ENTRY.tpl>...
//! strtaint serve --dir <PROJECT_DIR> [serve options]
//!
//! OPTIONS:
//!   --xss           run the XSS checker instead of the SQLCIV checker
//!   --policy LIST   comma-separated policy ids to enable (see
//!                   --list-policies); sinks of every enabled policy
//!                   are recognized and checked in one run
//!   --list-policies print the built-in policy registry (id, severity,
//!                   name, description) and exit
//!   --slice         enable the backward query-relevance slice (faster)
//!   --json          machine-readable output
//!   --sarif         SARIF 2.1.0 output (for CI annotation)
//!   --include A=B   resolve the dynamic include at site A (file:line)
//!                   to file B (repeatable)
//!   --timeout SECS  wall-clock budget per page; on expiry the analysis
//!                   degrades soundly (widened grammars / unverified
//!                   hotspots reported as findings — never a silent
//!                   "verified")
//!   --fuel N        step budget per page (worklist pops, Earley items);
//!                   exhaustion degrades exactly like --timeout
//!   --no-summary-cache
//!                   lower every file per page instead of sharing one
//!                   AST→IR summary cache across entries (escape hatch
//!                   for isolating cache bugs; results are identical)
//!   --no-query-cache
//!                   recompute every intersection query instead of
//!                   replaying memoized verdicts from the cross-page
//!                   query cache (escape hatch for isolating cache
//!                   bugs; verdicts and witness bytes are identical)
//!   --eager-witness
//!                   extract every witness live instead of replaying
//!                   witness bytes from the query cache; emptiness
//!                   verdicts still memoize (escape hatch; results
//!                   are identical)
//!   --stats         print one table of engine and summary-cache
//!                   counters (intersection queries, normalizations
//!                   saved, realized triples, early exits, cache
//!                   hits/misses) plus per-phase timing aggregates
//!                   (page / lower / emit / check / intersect / ...)
//!                   after the text report, or a "stats" member in
//!                   --json output
//!   --trace-json FILE
//!                   record a full structured trace of the run and
//!                   write it to FILE in Chrome trace-event format
//!                   (load in chrome://tracing or https://ui.perfetto.dev);
//!                   verdicts and reports are byte-identical with and
//!                   without this flag
//! ```
//!
//! `strtaint serve` starts the persistent incremental-analysis daemon
//! (see `strtaint-daemon`); run `strtaint serve --help` for its flags
//! and wire protocol.
//!
//! `strtaint fix` plans one deterministic repair per finding (drawn
//! from the per-policy fix-template table), applies the unambiguous
//! plans to an in-memory copy of the tree, and re-analyzes that copy
//! to prove each finding discharged; `--apply` writes the repaired
//! files back, `--sarif` emits the plans as SARIF `fixes`. `strtaint
//! profile` exports each hotspot's query-skeleton allowlist as a
//! versioned guard-profile artifact (see `strtaint-remedy`).
//!
//! Exit code: 0 = verified, 1 = findings reported (including
//! budget-exhaustion findings: a degraded run exits 1, it never
//! upgrades to 0), 2 = usage/IO error.

use std::path::Path;
use std::process::ExitCode;

use strtaint::{
    analyze_page_cached, analyze_page_policies_cached, analyze_page_with, analyze_page_xss,
    analyze_page_xss_cached, Checker, Config, EngineStats, PageReport, PolicyChecker,
    SummaryCache, Vfs,
};

const USAGE: &str = "usage: strtaint [--xss] [--policy LIST] [--slice] [--json] [--sarif] \
                     [--include SITE=FILE] [--timeout SECS] [--fuel N] \
                     [--no-summary-cache] [--no-query-cache] [--eager-witness] \
                     [--stats] [--trace-json FILE] \
                     <dir> <entry.php|entry.tpl>...\n\
                     \x20      strtaint --list-policies\n\
                     \x20      strtaint serve --dir <dir> [options]\n\
                     \x20      strtaint fix [--policy LIST] [--apply|--sarif] <dir> <entry.php>...\n\
                     \x20      strtaint profile [--policy LIST] <dir> <entry.php>...";

struct Options {
    xss: bool,
    policies: Option<Vec<String>>,
    slice: bool,
    json: bool,
    sarif: bool,
    no_summary_cache: bool,
    no_query_cache: bool,
    eager_witness: bool,
    stats: bool,
    trace_json: Option<String>,
    dir: String,
    entries: Vec<String>,
    includes: Vec<(String, String)>,
    timeout: Option<std::time::Duration>,
    fuel: Option<u64>,
}

/// The unified `--stats` table: aggregate intersection-engine counters
/// plus the AST→IR summary-cache counters and the per-phase timing
/// aggregates (from `strtaint-obs`) of the same run.
struct RunStats {
    engine: EngineStats,
    cache_hits: u64,
    cache_misses: u64,
    phases: Vec<strtaint_obs::PhaseStat>,
}

impl RunStats {
    fn rows(&self) -> Vec<(String, u64)> {
        let mut rows = vec![
            ("engine.queries".to_owned(), self.engine.queries),
            ("engine.normalizations".to_owned(), self.engine.normalizations),
            (
                "engine.normalizations_saved".to_owned(),
                self.engine.normalizations_saved,
            ),
            (
                "engine.realized_triples".to_owned(),
                self.engine.realized_triples,
            ),
            ("engine.early_exits".to_owned(), self.engine.early_exits),
            ("engine.completions".to_owned(), self.engine.completions),
            ("qcache.hits".to_owned(), self.engine.qcache_hits),
            ("qcache.misses".to_owned(), self.engine.qcache_misses),
            ("qcache.evictions".to_owned(), self.engine.qcache_evictions),
            ("witness.skipped".to_owned(), self.engine.witness_skipped),
            ("prefilter.skips".to_owned(), self.engine.prefilter_skips),
            ("summary_cache.hits".to_owned(), self.cache_hits),
            ("summary_cache.misses".to_owned(), self.cache_misses),
        ];
        for p in &self.phases {
            rows.push((format!("phase.{}.count", p.name), p.count));
            rows.push((format!("phase.{}.total_us", p.name), p.total_us));
            rows.push((format!("phase.{}.max_us", p.name), p.max_us));
        }
        rows
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        xss: false,
        policies: None,
        slice: false,
        json: false,
        sarif: false,
        no_summary_cache: false,
        no_query_cache: false,
        eager_witness: false,
        stats: false,
        trace_json: None,
        dir: String::new(),
        entries: Vec::new(),
        includes: Vec::new(),
        timeout: None,
        fuel: None,
    };
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--xss" => opts.xss = true,
            "--policy" => {
                let v = args.next().ok_or("--policy requires a policy list")?;
                let sel = strtaint::policy::parse_selection(&v)
                    .map_err(|e| format!("--policy: {e}"))?;
                opts.policies = Some(sel);
            }
            "--list-policies" => {
                let mut out = String::new();
                for p in strtaint::policy::builtin() {
                    out.push_str(&format!(
                        "{:<6} {:<9} {:<26} {}\n",
                        p.id,
                        p.severity.as_str(),
                        p.name,
                        p.description
                    ));
                }
                print!("{out}");
                std::process::exit(0);
            }
            "--slice" => opts.slice = true,
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--no-summary-cache" => opts.no_summary_cache = true,
            "--no-query-cache" => opts.no_query_cache = true,
            "--eager-witness" => opts.eager_witness = true,
            "--stats" => opts.stats = true,
            "--trace-json" => {
                let v = args.next().ok_or("--trace-json requires FILE")?;
                opts.trace_json = Some(v);
            }
            "--include" => {
                let v = args.next().ok_or("--include requires SITE=FILE")?;
                let (site, file) = v
                    .split_once('=')
                    .ok_or("--include argument must be SITE=FILE")?;
                opts.includes.push((site.to_owned(), file.to_owned()));
            }
            "--timeout" => {
                let v = args.next().ok_or("--timeout requires SECS")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--timeout: not a number: {v}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--timeout: must be positive: {v}"));
                }
                opts.timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--fuel" => {
                let v = args.next().ok_or("--fuel requires N")?;
                let n: u64 = v.parse().map_err(|_| format!("--fuel: not a number: {v}"))?;
                if n == 0 {
                    return Err("--fuel: must be positive".to_owned());
                }
                opts.fuel = Some(n);
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"))
            }
            other => positional.push(other.to_owned()),
        }
    }
    if opts.xss && opts.policies.is_some() {
        return Err("--xss and --policy are mutually exclusive (use --policy xss)".to_owned());
    }
    if positional.len() < 2 {
        return Err(USAGE.to_owned());
    }
    opts.dir = positional.remove(0);
    opts.entries = positional;
    Ok(opts)
}


fn emit_json(reports: &[PageReport], stats: Option<&RunStats>) {
    let rows = stats.map(|s| s.rows());
    print!(
        "{}",
        strtaint::render::json_report(reports, rows.as_deref())
    );
}


/// SARIF 2.1.0 output — the renderer lives in `strtaint::render` so
/// the differential tests can compare the CLI's exact bytes.
fn emit_sarif(reports: &[PageReport]) {
    print!("{}", strtaint::render::sarif(reports));
}

mod remedy_cmd;

fn main() -> ExitCode {
    // Subcommand routing: `strtaint serve ...` starts the daemon;
    // `fix` / `profile` run the remediation subsystem.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("serve") {
        return ExitCode::from(strtaint_daemon::cli_serve(&raw[1..]) as u8);
    }
    if raw.first().map(String::as_str) == Some("fix") {
        return ExitCode::from(remedy_cmd::cli_fix(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("profile") {
        return ExitCode::from(remedy_cmd::cli_profile(&raw[1..]));
    }

    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let vfs = match Vfs::from_dir(Path::new(&opts.dir)) {
        Ok(v) if !v.is_empty() => v,
        Ok(_) => {
            eprintln!("no .php or .tpl files under {}", opts.dir);
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.dir);
            return ExitCode::from(2);
        }
    };
    let mut config = Config {
        backward_slice: opts.slice,
        timeout: opts.timeout,
        fuel: opts.fuel,
        ..Config::default()
    };
    if let Some(policies) = &opts.policies {
        config.policies = policies.clone();
    }
    for (site, file) in &opts.includes {
        config
            .include_overrides
            .entry(site.clone())
            .or_default()
            .push(file.clone());
    }
    // Tracing mode: --trace-json needs full span events; --stats only
    // needs the per-phase aggregates. Verdicts are mode-independent
    // (pinned by tests/obs_invariance.rs).
    if opts.trace_json.is_some() {
        strtaint_obs::set_mode(strtaint_obs::Mode::Full);
    } else if opts.stats {
        strtaint_obs::set_mode(strtaint_obs::Mode::Aggregate);
    }
    strtaint_obs::reset();

    let check_opts = strtaint::CheckOptions {
        query_cache: !opts.no_query_cache,
        eager_witness: opts.eager_witness,
        ..Default::default()
    };
    let checker = Checker::with_options(check_opts.clone());
    let policy_checker = opts
        .policies
        .as_ref()
        .map(|_| PolicyChecker::with_options(check_opts));
    let summaries = SummaryCache::new();

    let mut reports = Vec::new();
    let mut any_findings = false;
    for entry in &opts.entries {
        let result = if let Some(pc) = &policy_checker {
            // --policy routes through the policy-driven pipeline; the
            // summary-cache escape hatch applies by passing a fresh
            // cache per page.
            if opts.no_summary_cache {
                analyze_page_policies_cached(&vfs, entry, &config, pc, &SummaryCache::new())
            } else {
                analyze_page_policies_cached(&vfs, entry, &config, pc, &summaries)
            }
        } else {
            match (opts.xss, opts.no_summary_cache) {
                (true, true) => analyze_page_xss(&vfs, entry, &config),
                (true, false) => analyze_page_xss_cached(&vfs, entry, &config, &summaries),
                (false, true) => analyze_page_with(&vfs, entry, &config, &checker),
                (false, false) => {
                    analyze_page_cached(&vfs, entry, &config, &checker, &summaries)
                }
            }
        };
        match result {
            Ok(r) => {
                any_findings |= !r.is_verified();
                reports.push(r);
            }
            Err(e) => {
                eprintln!("{entry}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let run_stats = opts.stats.then(|| {
        let mut engine = EngineStats::default();
        for r in &reports {
            engine.merge(&r.engine_stats());
        }
        RunStats {
            engine,
            cache_hits: summaries.hits(),
            cache_misses: summaries.misses(),
            phases: strtaint_obs::phases(),
        }
    });

    if let Some(path) = &opts.trace_json {
        if let Err(e) = strtaint_obs::write_chrome_trace(Path::new(path)) {
            eprintln!("cannot write trace to {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if opts.sarif {
        emit_sarif(&reports);
    } else if opts.json {
        emit_json(&reports, run_stats.as_ref());
    } else {
        // Degradations are rendered by the PageReport/HotspotReport
        // Display impls (`~ degraded:` lines).
        for r in &reports {
            print!("{r}");
            for w in &r.warnings {
                println!("  warning: {w}");
            }
        }
        let total: usize = reports.iter().map(|r| r.findings().count()).sum();
        let degraded = reports.iter().filter(|r| r.is_degraded()).count();
        if any_findings {
            println!("\n{total} finding(s).");
        } else {
            println!("\nAll pages verified.");
        }
        if degraded > 0 {
            println!(
                "{degraded} page(s) degraded by resource budgets — \
                 results are conservative, not complete."
            );
        }
        if let Some(s) = &run_stats {
            println!("stats:");
            let width = s.rows().iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, value) in s.rows() {
                println!("  {name:<width$}  {value}");
            }
        }
    }
    if any_findings {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
