//! The `strtaint` command-line analyzer.
//!
//! ```text
//! strtaint [OPTIONS] <PROJECT_DIR> <ENTRY.php>...
//! strtaint serve --dir <PROJECT_DIR> [serve options]
//!
//! OPTIONS:
//!   --xss           run the XSS checker instead of the SQLCIV checker
//!   --slice         enable the backward query-relevance slice (faster)
//!   --json          machine-readable output
//!   --sarif         SARIF 2.1.0 output (for CI annotation)
//!   --include A=B   resolve the dynamic include at site A (file:line)
//!                   to file B (repeatable)
//!   --timeout SECS  wall-clock budget per page; on expiry the analysis
//!                   degrades soundly (widened grammars / unverified
//!                   hotspots reported as findings — never a silent
//!                   "verified")
//!   --fuel N        step budget per page (worklist pops, Earley items);
//!                   exhaustion degrades exactly like --timeout
//!   --no-summary-cache
//!                   lower every file per page instead of sharing one
//!                   AST→IR summary cache across entries (escape hatch
//!                   for isolating cache bugs; results are identical)
//!   --stats         print one table of engine and summary-cache
//!                   counters (intersection queries, normalizations
//!                   saved, realized triples, early exits, cache
//!                   hits/misses) after the text report, or a "stats"
//!                   member in --json output
//! ```
//!
//! `strtaint serve` starts the persistent incremental-analysis daemon
//! (see `strtaint-daemon`); run `strtaint serve --help` for its flags
//! and wire protocol.
//!
//! Exit code: 0 = verified, 1 = findings reported (including
//! budget-exhaustion findings: a degraded run exits 1, it never
//! upgrades to 0), 2 = usage/IO error.

use std::path::Path;
use std::process::ExitCode;

use strtaint::{
    analyze_page_cached, analyze_page_with, analyze_page_xss, analyze_page_xss_cached, Checker,
    Config, EngineStats, PageReport, SummaryCache, Vfs,
};

const USAGE: &str = "usage: strtaint [--xss] [--slice] [--json] [--sarif] \
                     [--include SITE=FILE] [--timeout SECS] [--fuel N] \
                     [--no-summary-cache] [--stats] <dir> <entry.php>...\n\
                     \x20      strtaint serve --dir <dir> [options]";

struct Options {
    xss: bool,
    slice: bool,
    json: bool,
    sarif: bool,
    no_summary_cache: bool,
    stats: bool,
    dir: String,
    entries: Vec<String>,
    includes: Vec<(String, String)>,
    timeout: Option<std::time::Duration>,
    fuel: Option<u64>,
}

/// The unified `--stats` table: aggregate intersection-engine counters
/// plus the AST→IR summary-cache counters from the same run.
struct RunStats {
    engine: EngineStats,
    cache_hits: u64,
    cache_misses: u64,
}

impl RunStats {
    fn rows(&self) -> [(&'static str, u64); 7] {
        [
            ("engine.queries", self.engine.queries),
            ("engine.normalizations", self.engine.normalizations),
            ("engine.normalizations_saved", self.engine.normalizations_saved),
            ("engine.realized_triples", self.engine.realized_triples),
            ("engine.early_exits", self.engine.early_exits),
            ("summary_cache.hits", self.cache_hits),
            ("summary_cache.misses", self.cache_misses),
        ]
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        xss: false,
        slice: false,
        json: false,
        sarif: false,
        no_summary_cache: false,
        stats: false,
        dir: String::new(),
        entries: Vec::new(),
        includes: Vec::new(),
        timeout: None,
        fuel: None,
    };
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--xss" => opts.xss = true,
            "--slice" => opts.slice = true,
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--no-summary-cache" => opts.no_summary_cache = true,
            "--stats" => opts.stats = true,
            "--include" => {
                let v = args.next().ok_or("--include requires SITE=FILE")?;
                let (site, file) = v
                    .split_once('=')
                    .ok_or("--include argument must be SITE=FILE")?;
                opts.includes.push((site.to_owned(), file.to_owned()));
            }
            "--timeout" => {
                let v = args.next().ok_or("--timeout requires SECS")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--timeout: not a number: {v}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--timeout: must be positive: {v}"));
                }
                opts.timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--fuel" => {
                let v = args.next().ok_or("--fuel requires N")?;
                let n: u64 = v.parse().map_err(|_| format!("--fuel: not a number: {v}"))?;
                if n == 0 {
                    return Err("--fuel: must be positive".to_owned());
                }
                opts.fuel = Some(n);
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"))
            }
            other => positional.push(other.to_owned()),
        }
    }
    if positional.len() < 2 {
        return Err(USAGE.to_owned());
    }
    opts.dir = positional.remove(0);
    opts.entries = positional;
    Ok(opts)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn emit_json(reports: &[PageReport], stats: Option<&RunStats>) {
    println!("{{\"pages\": [");
    for (pi, p) in reports.iter().enumerate() {
        println!("  {{");
        println!("    \"entry\": \"{}\",", json_escape(&p.entry));
        println!("    \"verified\": {},", p.is_verified());
        println!("    \"degraded\": {},", p.is_degraded());
        println!(
            "    \"skipped\": {},",
            p.skipped
                .as_deref()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .unwrap_or_else(|| "null".to_owned())
        );
        println!("    \"grammar_nonterminals\": {},", p.grammar_nonterminals);
        println!("    \"grammar_productions\": {},", p.grammar_productions);
        println!(
            "    \"analysis_ms\": {:.3},",
            p.analysis_time.as_secs_f64() * 1e3
        );
        println!("    \"check_ms\": {:.3},", p.check_time.as_secs_f64() * 1e3);
        println!("    \"findings\": [");
        let findings: Vec<_> = p.findings().collect();
        for (fi, (h, f)) in findings.iter().enumerate() {
            let witness = f
                .witness
                .as_deref()
                .map(|w| format!("\"{}\"", json_escape(&String::from_utf8_lossy(w))))
                .unwrap_or_else(|| "null".to_owned());
            println!(
                "      {{\"file\": \"{}\", \"line\": {}, \"sink\": \"{}\", \
                 \"source\": \"{}\", \"taint\": \"{}\", \"check\": \"{}\", \
                 \"witness\": {}}}{}",
                json_escape(&h.file),
                h.span.line,
                json_escape(&h.label),
                json_escape(&f.name),
                f.taint,
                f.kind,
                witness,
                if fi + 1 < findings.len() { "," } else { "" }
            );
        }
        println!("    ],");
        println!("    \"degradations\": [");
        let degs: Vec<_> = p.all_degradations().collect();
        for (di, d) in degs.iter().enumerate() {
            println!(
                "      {{\"site\": \"{}\", \"resource\": \"{}\", \"action\": \"{}\"}}{}",
                json_escape(&d.site),
                d.resource,
                d.action,
                if di + 1 < degs.len() { "," } else { "" }
            );
        }
        println!("    ],");
        println!("    \"warnings\": [");
        for (wi, w) in p.warnings.iter().enumerate() {
            println!(
                "      \"{}\"{}",
                json_escape(w),
                if wi + 1 < p.warnings.len() { "," } else { "" }
            );
        }
        println!("    ]");
        println!("  }}{}", if pi + 1 < reports.len() { "," } else { "" });
    }
    match stats {
        None => println!("]}}"),
        Some(s) => {
            println!("],");
            println!("\"stats\": {{");
            let rows = s.rows();
            for (i, (name, value)) in rows.iter().enumerate() {
                println!(
                    "  \"{name}\": {value}{}",
                    if i + 1 < rows.len() { "," } else { "" }
                );
            }
            println!("}}}}");
        }
    }
}

/// Minimal SARIF 2.1.0 writer (one run, one result per finding) so
/// findings annotate pull requests in standard CI tooling.
fn emit_sarif(reports: &[PageReport]) {
    println!("{{");
    println!("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",");
    println!("  \"version\": \"2.1.0\",");
    println!("  \"runs\": [{{");
    println!("    \"tool\": {{\"driver\": {{\"name\": \"strtaint\", \"informationUri\": \"https://example.invalid/strtaint\", \"version\": \"0.1.0\"}}}},");
    println!("    \"results\": [");
    let all: Vec<_> = reports.iter().flat_map(|p| p.findings()).collect();
    for (i, (h, f)) in all.iter().enumerate() {
        let msg = format!(
            "{} at {}: tainted source {} — {}{}",
            h.label,
            h.span,
            f.name,
            f.kind,
            f.witness
                .as_deref()
                .map(|w| format!(" (witness: {})", String::from_utf8_lossy(w)))
                .unwrap_or_default()
        );
        println!("      {{");
        println!("        \"ruleId\": \"{}\",", f.kind.rule_id());
        println!("        \"level\": \"error\",");
        println!(
            "        \"message\": {{\"text\": \"{}\"}},",
            json_escape(&msg)
        );
        // Prefer the finding's IR provenance (the sink *argument*'s
        // span) over the hotspot's call span when the analysis
        // supplied one.
        let (line, col) = f.at.unwrap_or((h.span.line, h.span.col));
        println!("        \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {line}, \"startColumn\": {col}}}}}}}]",
            json_escape(&h.file));
        println!(
            "      }}{}",
            if i + 1 < all.len() { "," } else { "" }
        );
    }
    println!("    ]");
    println!("  }}]");
    println!("}}");
}

fn main() -> ExitCode {
    // Subcommand routing: `strtaint serve ...` starts the daemon.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("serve") {
        return ExitCode::from(strtaint_daemon::cli_serve(&raw[1..]) as u8);
    }

    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let vfs = match Vfs::from_dir(Path::new(&opts.dir)) {
        Ok(v) if !v.is_empty() => v,
        Ok(_) => {
            eprintln!("no .php files under {}", opts.dir);
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.dir);
            return ExitCode::from(2);
        }
    };
    let mut config = Config {
        backward_slice: opts.slice,
        timeout: opts.timeout,
        fuel: opts.fuel,
        ..Config::default()
    };
    for (site, file) in &opts.includes {
        config
            .include_overrides
            .entry(site.clone())
            .or_default()
            .push(file.clone());
    }
    let checker = Checker::new();
    let summaries = SummaryCache::new();

    let mut reports = Vec::new();
    let mut any_findings = false;
    for entry in &opts.entries {
        let result = match (opts.xss, opts.no_summary_cache) {
            (true, true) => analyze_page_xss(&vfs, entry, &config),
            (true, false) => analyze_page_xss_cached(&vfs, entry, &config, &summaries),
            (false, true) => analyze_page_with(&vfs, entry, &config, &checker),
            (false, false) => analyze_page_cached(&vfs, entry, &config, &checker, &summaries),
        };
        match result {
            Ok(r) => {
                any_findings |= !r.is_verified();
                reports.push(r);
            }
            Err(e) => {
                eprintln!("{entry}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let run_stats = opts.stats.then(|| {
        let mut engine = EngineStats::default();
        for r in &reports {
            engine.merge(&r.engine_stats());
        }
        RunStats {
            engine,
            cache_hits: summaries.hits(),
            cache_misses: summaries.misses(),
        }
    });

    if opts.sarif {
        emit_sarif(&reports);
    } else if opts.json {
        emit_json(&reports, run_stats.as_ref());
    } else {
        // Degradations are rendered by the PageReport/HotspotReport
        // Display impls (`~ degraded:` lines).
        for r in &reports {
            print!("{r}");
            for w in &r.warnings {
                println!("  warning: {w}");
            }
        }
        let total: usize = reports.iter().map(|r| r.findings().count()).sum();
        let degraded = reports.iter().filter(|r| r.is_degraded()).count();
        if any_findings {
            println!("\n{total} finding(s).");
        } else {
            println!("\nAll pages verified.");
        }
        if degraded > 0 {
            println!(
                "{degraded} page(s) degraded by resource budgets — \
                 results are conservative, not complete."
            );
        }
        if let Some(s) = &run_stats {
            println!("stats:");
            let width = s.rows().iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, value) in s.rows() {
                println!("  {name:<width$}  {value}");
            }
        }
    }
    if any_findings {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
