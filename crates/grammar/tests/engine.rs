//! Property-based equivalence between the reference intersection
//! engine (`strtaint_grammar::intersect`) and the prepared engine
//! (`strtaint_grammar::prepared`): random CFGs crossed with random
//! regex DFAs must agree on emptiness, witness length, and the
//! language of the reconstructed intersection grammar, in both
//! early-exit and full query modes.

use proptest::prelude::*;

use strtaint_automata::{ClassDfa, Regex};
use strtaint_grammar::intersect::{intersect, is_intersection_empty};
use strtaint_grammar::lang::{sample_strings, shortest_string};
use strtaint_grammar::prepared::{PreparedGrammar, QueryMode};
use strtaint_grammar::{Budget, Cfg, NtId, Symbol};

/// A small random grammar: literals, concatenations, alternations, and
/// an optional self-recursive wrap (same shape as tests/properties.rs).
fn grammar() -> impl Strategy<Value = (Cfg, NtId)> {
    let lit = prop_oneof![
        Just(b"a".to_vec()),
        Just(b"bb".to_vec()),
        Just(b"a'c".to_vec()),
        Just(b"12".to_vec()),
        Just(b"".to_vec()),
    ];
    (
        proptest::collection::vec(lit, 1..4),
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(lits, recursive, wrap)| {
            let mut g = Cfg::new();
            let leaf = g.add_nonterminal("leaf");
            for l in &lits {
                g.add_literal_production(leaf, l);
            }
            let root = g.add_nonterminal("root");
            if wrap {
                let mut rhs = g.literal_symbols(b"[");
                rhs.push(Symbol::N(leaf));
                rhs.extend(g.literal_symbols(b"]"));
                g.add_production(root, rhs);
            } else {
                g.add_production(root, vec![Symbol::N(leaf)]);
            }
            if recursive {
                // root -> root leaf (left recursion)
                g.add_production(root, vec![Symbol::N(root), Symbol::N(leaf)]);
            }
            (g, root)
        })
}

/// Random byte strings mixing pattern-relevant and arbitrary bytes.
fn byte_string() -> impl Strategy<Value = Vec<u8>> {
    let byte = prop_oneof![
        Just(b'a'),
        Just(b'b'),
        Just(b'c'),
        Just(b'\''),
        Just(b'0'),
        Just(b'9'),
        Just(b'['),
        Just(b']'),
        Just(b'z'),
        Just(0u8),
        Just(0xffu8),
    ];
    proptest::collection::vec(byte, 0..12)
}

/// Regexes covering empty-ish, universal-ish, and structured patterns.
fn pattern() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("'"),
        Just("a"),
        Just("[ab]*"),
        Just("a'c"),
        Just("[0-9][0-9]*"),
        Just("\\[a*\\]"),
        Just("zzz"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prepared_agrees_with_naive((g, root) in grammar(), pat in pattern()) {
        let dfa = Regex::new(pat).unwrap().match_dfa();
        let classes = ClassDfa::new(&dfa);
        let budget = Budget::unlimited();
        let prep = PreparedGrammar::new(&g, root);

        // Emptiness: early-exit prepared query vs the naive engine.
        let naive_empty = is_intersection_empty(&g, root, &dfa);
        let mut ix = prep
            .query(&classes, &budget, QueryMode::EarlyExit)
            .expect("unlimited budget");
        prop_assert_eq!(ix.is_empty(), naive_empty, "pattern {}", pat);

        // Witness: both engines must find one iff nonempty, and both
        // produce the *canonical* (length, lexicographic)-minimal
        // string — so the bytes agree exactly, not just the lengths.
        // The query cache depends on this: replayed witness bytes must
        // be indistinguishable from recomputed ones.
        let naive_witness = {
            let (gx, rx) = intersect(&g, root, &dfa);
            shortest_string(&gx, rx)
        };
        let prep_witness = ix.witness(&budget).expect("unlimited budget");
        prop_assert_eq!(&naive_witness, &prep_witness, "pattern {}", pat);
        if let Some(pw) = &prep_witness {
            prop_assert!(g.derives(root, pw), "witness {:?} not derivable", pw);
            prop_assert!(dfa.accepts(pw), "witness {:?} rejected by DFA", pw);
        }
    }

    /// Lazy witness extraction: an early-exited query resumed on
    /// demand (`witness()` after `is_empty()`) must produce the same
    /// canonical bytes as an eager full-mode run — and a query used
    /// only for its emptiness answer must perform zero completions.
    #[test]
    fn lazy_witness_matches_eager((g, root) in grammar(), pat in pattern()) {
        let dfa = Regex::new(pat).unwrap().match_dfa();
        let classes = ClassDfa::new(&dfa);
        let budget = Budget::unlimited();
        let prep = PreparedGrammar::new(&g, root);

        // Lazy path: decide emptiness first, extract only if needed —
        // exactly the reporting-hotspot discipline of the checker.
        let mut lazy = prep
            .query(&classes, &budget, QueryMode::EarlyExit)
            .expect("unlimited budget");
        let lazy_witness = if lazy.is_empty() {
            // Non-reporting: emptiness alone must not resume the
            // fixpoint (zero `complete()` calls).
            prop_assert_eq!(lazy.completions(), 0, "pattern {}", pat);
            None
        } else {
            lazy.witness(&budget).expect("unlimited budget")
        };

        // Eager path: run the full fixpoint up front, then extract.
        let mut eager = prep
            .query(&classes, &budget, QueryMode::Full)
            .expect("unlimited budget");
        let eager_witness = eager.witness(&budget).expect("unlimited budget");

        prop_assert_eq!(&lazy_witness, &eager_witness, "pattern {}", pat);
        prop_assert_eq!(lazy.is_empty(), lazy_witness.is_none());
    }

    #[test]
    fn full_mode_reconstruction_is_exact((g, root) in grammar(), pat in pattern()) {
        let dfa = Regex::new(pat).unwrap().match_dfa();
        let classes = ClassDfa::new(&dfa);
        let budget = Budget::unlimited();
        let prep = PreparedGrammar::new(&g, root);

        let mut ix = prep
            .query(&classes, &budget, QueryMode::Full)
            .expect("unlimited budget");
        prop_assert!(!ix.exited_early());
        let (out, new_root) = ix.grammar(&budget).expect("unlimited budget");
        // The reconstructed grammar recognizes exactly L(g) ∩ L(dfa)
        // on samples from g.
        for s in sample_strings(&g, root, 10, 16) {
            prop_assert_eq!(out.derives(new_root, &s), dfa.accepts(&s), "{:?}", s);
        }
        prop_assert_eq!(out.is_empty_language(new_root), ix.is_empty());
    }

    #[test]
    fn early_exit_matches_full_emptiness((g, root) in grammar(), pat in pattern()) {
        let dfa = Regex::new(pat).unwrap().match_dfa();
        let classes = ClassDfa::new(&dfa);
        let budget = Budget::unlimited();
        let prep = PreparedGrammar::new(&g, root);

        let early = prep
            .query(&classes, &budget, QueryMode::EarlyExit)
            .expect("unlimited budget");
        let full = prep
            .query(&classes, &budget, QueryMode::Full)
            .expect("unlimited budget");
        prop_assert_eq!(early.is_empty(), full.is_empty());
        // An early exit never does more work than the full run.
        prop_assert!(early.triples() <= full.triples());
    }

    #[test]
    fn class_dfa_steps_like_dfa(pat in pattern(), bytes in byte_string()) {
        let dfa = Regex::new(pat).unwrap().match_dfa();
        let classes = ClassDfa::new(&dfa);
        prop_assert_eq!(classes.accepts(&bytes), dfa.accepts(&bytes));
    }
}
