//! Property-based tests of the grammar algebra (normalization,
//! intersection, image, approximation) against membership oracles.

use proptest::prelude::*;

use strtaint_automata::fst::builders;
use strtaint_automata::Regex;
use strtaint_grammar::approx::overapproximate;
use strtaint_grammar::image::image;
use strtaint_grammar::intersect::{intersect, is_intersection_empty};
use strtaint_grammar::lang::{sample_strings, shortest_string};
use strtaint_grammar::normal::{is_normalized, normalize};
use strtaint_grammar::{Cfg, NtId, Symbol};

/// A small random grammar: literals, concatenations, alternations, and
/// an optional self-recursive wrap.
fn grammar() -> impl Strategy<Value = (Cfg, NtId)> {
    let lit = prop_oneof![
        Just(b"a".to_vec()),
        Just(b"bb".to_vec()),
        Just(b"a'c".to_vec()),
        Just(b"12".to_vec()),
        Just(b"".to_vec()),
    ];
    (
        proptest::collection::vec(lit, 1..4),
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(lits, recursive, wrap)| {
            let mut g = Cfg::new();
            let leaf = g.add_nonterminal("leaf");
            for l in &lits {
                g.add_literal_production(leaf, l);
            }
            let root = g.add_nonterminal("root");
            if wrap {
                let mut rhs = g.literal_symbols(b"[");
                rhs.push(Symbol::N(leaf));
                rhs.extend(g.literal_symbols(b"]"));
                g.add_production(root, rhs);
            } else {
                g.add_production(root, vec![Symbol::N(leaf)]);
            }
            if recursive {
                // root -> root leaf (left recursion)
                g.add_production(root, vec![Symbol::N(root), Symbol::N(leaf)]);
            }
            (g, root)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn normalization_preserves_membership((g, root) in grammar()) {
        let n = normalize(&g);
        prop_assert!(is_normalized(&n));
        for s in sample_strings(&g, root, 10, 12) {
            prop_assert!(n.derives(root, &s), "{:?}", s);
        }
        // And conversely on samples of the normalized grammar.
        for s in sample_strings(&n, root, 10, 12) {
            prop_assert!(g.derives(root, &s), "{:?}", s);
        }
    }

    #[test]
    fn intersection_is_exact((g, root) in grammar()) {
        let dfa = Regex::new("'").unwrap().match_dfa(); // contains a quote
        let (out, new_root) = intersect(&g, root, &dfa);
        for s in sample_strings(&g, root, 10, 16) {
            let expected = dfa.accepts(&s);
            prop_assert_eq!(out.derives(new_root, &s), expected, "{:?}", s);
        }
        // Emptiness agrees with the constructed grammar.
        prop_assert_eq!(
            is_intersection_empty(&g, root, &dfa),
            out.is_empty_language(new_root)
        );
    }

    #[test]
    fn image_agrees_with_transduction((g, root) in grammar()) {
        let fst = builders::addslashes();
        let (out, new_root) = image(&g, root, &fst);
        for s in sample_strings(&g, root, 10, 12) {
            let expected = fst.transduce_unique(&s).expect("addslashes is a function");
            prop_assert!(out.derives(new_root, &expected), "{:?} -> {:?}", s, expected);
        }
    }

    #[test]
    fn approximation_contains_language((g, root) in grammar()) {
        let nfa = overapproximate(&g, root);
        for s in sample_strings(&g, root, 12, 16) {
            prop_assert!(nfa.accepts(&s), "{:?} missing from approximation", s);
        }
    }

    #[test]
    fn shortest_string_is_derivable_and_minimal((g, root) in grammar()) {
        if let Some(w) = shortest_string(&g, root) {
            prop_assert!(g.derives(root, &w));
            for s in sample_strings(&g, root, 10, 16) {
                prop_assert!(s.len() >= w.len(), "{:?} shorter than witness {:?}", s, w);
            }
        } else {
            prop_assert!(g.is_empty_language(root));
        }
    }

    #[test]
    fn trim_preserves_language_and_taint((g, root) in grammar()) {
        let (t, new_root) = g.trimmed(root);
        for s in sample_strings(&g, root, 10, 12) {
            prop_assert!(t.derives(new_root, &s));
        }
        prop_assert!(t.num_productions() <= g.num_productions());
    }

    #[test]
    fn import_roundtrip((g, root) in grammar()) {
        let mut host = Cfg::new();
        host.literal_nonterminal("unrelated", b"zzz");
        let new_root = host.import_from(&g, root);
        for s in sample_strings(&g, root, 10, 12) {
            prop_assert!(host.derives(new_root, &s));
        }
    }
}
