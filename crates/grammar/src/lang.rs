//! Language-level queries on grammars: finiteness, shortest strings,
//! bounded enumeration.
//!
//! The analysis uses these for dynamic-include resolution (the paper §4
//! intersects the include argument's grammar with the filesystem layout
//! and enumerates the resulting *finite* language) and for attaching a
//! witness string to every bug report.

use std::collections::HashSet;

use crate::cfg::Cfg;
use crate::symbol::{NtId, Symbol};

/// Returns `true` if the language of `root` is infinite.
///
/// A trimmed grammar derives infinitely many strings iff some
/// nonterminal `X` in a recursive cycle can pump nonempty material:
/// there is a production `X → u Y v` with `Y` in `X`'s strongly
/// connected component and `u v` able to derive a nonempty string. A
/// bare cycle that only threads epsilon (which arises when a transducer
/// image erases all terminals) does *not* make the language infinite.
pub fn is_infinite(g: &Cfg, root: NtId) -> bool {
    let (t, _) = g.trimmed(root);
    let n = t.num_nonterminals();
    if n == 0 {
        return false;
    }
    // nonempty[X]: X derives a string of length >= 1. In a trimmed
    // grammar every nonterminal is productive, so a production with a
    // terminal or a nonempty nonterminal suffices.
    let mut nonempty = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for (lhs, rhs) in t.iter_productions() {
            if nonempty[lhs.index()] {
                continue;
            }
            let any = rhs.iter().any(|s| match s {
                Symbol::T(_) => true,
                Symbol::N(id) => nonempty[id.index()],
            });
            if any {
                nonempty[lhs.index()] = true;
                changed = true;
            }
        }
    }
    let scc = scc_ids(&t);
    for (lhs, rhs) in t.iter_productions() {
        for (i, s) in rhs.iter().enumerate() {
            let Symbol::N(y) = s else { continue };
            if scc[lhs.index()] != scc[y.index()] {
                continue;
            }
            // Pumpable if any sibling symbol yields nonempty material.
            let fat = rhs.iter().enumerate().any(|(j, sj)| {
                j != i
                    && match sj {
                        Symbol::T(_) => true,
                        Symbol::N(z) => nonempty[z.index()],
                    }
            });
            if fat {
                return true;
            }
        }
    }
    false
}

/// Computes strongly connected component ids of the nonterminal graph
/// (iterative Tarjan).
fn scc_ids(g: &Cfg) -> Vec<u32> {
    let n = g.num_nonterminals();
    let children: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            let mut v: Vec<u32> = Vec::new();
            for rhs in g.productions(NtId(i as u32)) {
                for s in rhs {
                    if let Symbol::N(id) = s {
                        v.push(id.0);
                    }
                }
            }
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let mut index = vec![u32::MAX; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![u32::MAX; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        // Iterative Tarjan with explicit call stack of (node, child idx).
        let mut call: Vec<(u32, usize)> = vec![(start, 0)];
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < children[v as usize].len() {
                let w = children[v as usize][*ci];
                *ci += 1;
                if index[w as usize] == u32::MAX {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Computes the **canonical** shortest string derivable from `root`,
/// if any: the (length, lexicographic) minimum of the language.
///
/// Used for witness strings in bug reports. Returns `None` for an empty
/// language. The lexicographic tie-break makes the result a function of
/// the *language* alone, not of the grammar that presents it — the
/// naive and prepared intersection engines build structurally different
/// grammars for the same intersection, and memoized verdicts replay
/// witness bytes verbatim, so report bytes stay identical across all of
/// them only because every path extracts this same canonical string.
///
/// The tie-break is compositional: in a minimal-length derivation every
/// nonterminal occurrence is expanded at its own minimal length, so the
/// candidates for one production all have equal component widths, and
/// comparing their concatenations lexicographically reduces to taking
/// the componentwise (length, lex)-minimum.
pub fn shortest_string(g: &Cfg, root: NtId) -> Option<Vec<u8>> {
    let n = g.num_nonterminals();
    let ids = g.reachable_list(root);
    let mut best: Vec<Option<Vec<u8>>> = vec![None; n];
    // Iterate to fixpoint over the reachable subgraph; values only
    // decrease in the well-founded (length, bytes) order, so this
    // terminates.
    loop {
        let mut changed = false;
        for (lhs, rhs) in ids
            .iter()
            .flat_map(|&id| g.productions(id).iter().map(move |r| (id, r.as_slice())))
        {
            let mut candidate: Vec<u8> = Vec::new();
            let mut ok = true;
            for s in rhs {
                match s {
                    Symbol::T(b) => candidate.push(*b),
                    Symbol::N(id) => match &best[id.index()] {
                        Some(w) => candidate.extend_from_slice(w),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                }
            }
            if !ok {
                continue;
            }
            let better = match &best[lhs.index()] {
                None => true,
                Some(cur) => {
                    candidate.len() < cur.len()
                        || (candidate.len() == cur.len() && candidate < *cur)
                }
            };
            if better {
                best[lhs.index()] = Some(candidate);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    best[root.index()].clone()
}

/// Enumerates the full (finite) language of `root`, up to `max_count`
/// strings.
///
/// Returns `None` if the language is infinite or has more than
/// `max_count` strings. Used to resolve dynamic includes (paper §4).
pub fn bounded_language(g: &Cfg, root: NtId, max_count: usize) -> Option<Vec<Vec<u8>>> {
    if is_infinite(g, root) {
        return None;
    }
    let (t, new_root) = g.trimmed(root);
    // Fixpoint enumeration: grammar cycles may exist even for a finite
    // language (e.g. unit-production cycles left by a transducer image),
    // so sets are grown monotonically until stable.
    let n = t.num_nonterminals();
    let mut sets: Vec<HashSet<Vec<u8>>> = vec![HashSet::new(); n];
    loop {
        let mut changed = false;
        for (lhs, rhs) in t.iter_productions() {
            let mut partial: Vec<Vec<u8>> = vec![Vec::new()];
            let mut ok = true;
            for s in rhs {
                match s {
                    Symbol::T(b) => {
                        for p in partial.iter_mut() {
                            p.push(*b);
                        }
                    }
                    Symbol::N(sub) => {
                        let subs = &sets[sub.index()];
                        if subs.is_empty() {
                            ok = false;
                            break;
                        }
                        let mut next = Vec::new();
                        for p in &partial {
                            for s in subs {
                                let mut w = p.clone();
                                w.extend_from_slice(s);
                                next.push(w);
                                if next.len() > max_count {
                                    return None;
                                }
                            }
                        }
                        partial = next;
                    }
                }
            }
            if !ok {
                continue;
            }
            for w in partial {
                if sets[lhs.index()].insert(w) {
                    changed = true;
                }
            }
            if sets[lhs.index()].len() > max_count {
                return None;
            }
        }
        if !changed {
            break;
        }
    }
    let mut v: Vec<Vec<u8>> = sets[new_root.index()].iter().cloned().collect();
    v.sort();
    v.dedup();
    Some(v)
}

/// Enumerates up to `max_count` strings of length at most `max_len`
/// derivable from `root`, even when the language is infinite.
///
/// Breadth-first over sentential forms; intended for tests and for
/// sampling witness strings.
pub fn sample_strings(g: &Cfg, root: NtId, max_len: usize, max_count: usize) -> Vec<Vec<u8>> {
    use std::collections::VecDeque;
    let mut results: Vec<Vec<u8>> = Vec::new();
    let mut seen: HashSet<Vec<Symbol>> = HashSet::new();
    let mut queue: VecDeque<Vec<Symbol>> = VecDeque::new();
    queue.push_back(vec![Symbol::N(root)]);
    let budget = max_count * 200 + 1000; // exploration cap
    let mut explored = 0usize;
    while let Some(form) = queue.pop_front() {
        explored += 1;
        if explored > budget || results.len() >= max_count {
            break;
        }
        // Count terminals; prune overly long forms.
        let terminal_len = form.iter().filter(|s| matches!(s, Symbol::T(_))).count();
        if terminal_len > max_len {
            continue;
        }
        // Find leftmost nonterminal.
        match form.iter().position(|s| matches!(s, Symbol::N(_))) {
            None => {
                let s: Vec<u8> = form
                    .iter()
                    .map(|s| s.as_terminal().expect("all terminals"))
                    .collect();
                if !results.contains(&s) {
                    results.push(s);
                }
            }
            Some(pos) => {
                let Symbol::N(id) = form[pos] else { unreachable!() };
                for rhs in g.productions(id) {
                    let mut next = Vec::with_capacity(form.len() + rhs.len());
                    next.extend_from_slice(&form[..pos]);
                    next.extend_from_slice(rhs);
                    next.extend_from_slice(&form[pos + 1..]);
                    if next.len() <= max_len * 2 + 16 && seen.insert(next.clone()) {
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol as S;

    fn simple() -> (Cfg, NtId) {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_literal_production(a, b"one");
        g.add_literal_production(a, b"two22");
        (g, a)
    }

    #[test]
    fn finite_language_detected() {
        let (g, a) = simple();
        assert!(!is_infinite(&g, a));
        let lang = bounded_language(&g, a, 10).unwrap();
        assert_eq!(lang, vec![b"one".to_vec(), b"two22".to_vec()]);
    }

    #[test]
    fn infinite_language_detected() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'x'), S::N(a)]);
        g.add_production(a, vec![]);
        assert!(is_infinite(&g, a));
        assert!(bounded_language(&g, a, 100).is_none());
    }

    #[test]
    fn unproductive_cycles_do_not_count() {
        // A -> 'x' | B; B -> B  (B is unproductive, cycle is dead)
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        let b = g.add_nonterminal("B");
        g.add_literal_production(a, b"x");
        g.add_production(a, vec![S::N(b)]);
        g.add_production(b, vec![S::N(b)]);
        assert!(!is_infinite(&g, a));
        assert_eq!(bounded_language(&g, a, 10).unwrap(), vec![b"x".to_vec()]);
    }

    #[test]
    fn shortest_string_picks_minimum() {
        let (g, a) = simple();
        assert_eq!(shortest_string(&g, a), Some(b"one".to_vec()));
        let mut g2 = Cfg::new();
        let b = g2.add_nonterminal("B");
        g2.add_production(b, vec![S::N(b)]); // empty language
        assert_eq!(shortest_string(&g2, b), None);
    }

    #[test]
    fn shortest_string_through_recursion() {
        // A -> '(' A ')' | ε  — shortest is ""
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'('), S::N(a), S::T(b')')]);
        g.add_production(a, vec![]);
        assert_eq!(shortest_string(&g, a), Some(Vec::new()));
    }

    #[test]
    fn bounded_language_respects_cap() {
        // 2^4 = 16 strings
        let mut g = Cfg::new();
        let bit = g.add_nonterminal("bit");
        g.add_literal_production(bit, b"0");
        g.add_literal_production(bit, b"1");
        let word = g.add_nonterminal("word");
        g.add_production(word, vec![S::N(bit), S::N(bit), S::N(bit), S::N(bit)]);
        assert_eq!(bounded_language(&g, word, 16).unwrap().len(), 16);
        assert!(bounded_language(&g, word, 15).is_none());
    }

    #[test]
    fn sampling_infinite_language() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'x'), S::N(a)]);
        g.add_production(a, vec![]);
        let samples = sample_strings(&g, a, 5, 4);
        assert!(samples.contains(&b"".to_vec()));
        assert!(samples.contains(&b"x".to_vec()));
        assert!(samples.len() >= 3);
    }
}
