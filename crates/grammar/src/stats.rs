//! Cumulative counters for the intersection engine and the optimized
//! check path's caches.
//!
//! Every [`Intersection`](crate::prepared::Intersection) and every cache
//! layer above it (the checker's query cache, preparation memo, and C4
//! prefilter) accounts its work into one [`EngineStats`] value; the
//! per-hotspot values are merged upward into page and app totals and
//! surface on reports behind `--stats` and the daemon `metrics` verb.

use std::fmt;

/// Cumulative counters for the intersection engine, surfaced on
/// hotspot/app reports behind `--stats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Intersection queries answered.
    pub queries: u64,
    /// Grammar preparations performed (trim + normalize).
    pub normalizations: u64,
    /// Queries served by an already-prepared grammar.
    pub normalizations_saved: u64,
    /// Realized `X_{ij}` triples across all queries.
    pub realized_triples: u64,
    /// Emptiness queries that suspended before the full fixpoint.
    pub early_exits: u64,
    /// Suspended fixpoints resumed to completion for reconstruction
    /// (live witness extractions). Zero for non-reporting hotspots.
    pub completions: u64,
    /// Nonempty answers whose witness extraction was avoided — replayed
    /// from the query cache or skipped by the reconstruction guard.
    pub witness_skipped: u64,
    /// Queries answered by replaying a memoized verdict.
    pub qcache_hits: u64,
    /// Queries that had to compute (and, trip-free, were memoized).
    pub qcache_misses: u64,
    /// Memoized verdicts evicted to keep the cache bounded.
    pub qcache_evictions: u64,
    /// C4 attack-membership checks discharged by the terminal-alphabet
    /// prefilter without an intersection (absence proofs only).
    pub prefilter_skips: u64,
}

impl EngineStats {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &EngineStats) {
        self.queries += other.queries;
        self.normalizations += other.normalizations;
        self.normalizations_saved += other.normalizations_saved;
        self.realized_triples += other.realized_triples;
        self.early_exits += other.early_exits;
        self.completions += other.completions;
        self.witness_skipped += other.witness_skipped;
        self.qcache_hits += other.qcache_hits;
        self.qcache_misses += other.qcache_misses;
        self.qcache_evictions += other.qcache_evictions;
        self.prefilter_skips += other.prefilter_skips;
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries, {} normalizations ({} saved), {} triples, {} early exits, \
             {} qcache hits / {} misses, {} witnesses skipped",
            self.queries,
            self.normalizations,
            self.normalizations_saved,
            self.realized_triples,
            self.early_exits,
            self.qcache_hits,
            self.qcache_misses,
            self.witness_skipped
        )
    }
}
