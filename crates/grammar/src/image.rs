//! Image of a context-free language under a finite-state transducer
//! (paper §3.1.2).
//!
//! Converts an extended production `x ← f(y)` — where `f` is a PHP
//! string function modeled as an FST — into ordinary productions: the
//! image of the CFG rooted at `y` under the transducer of `f` is itself
//! context free, and the construction below builds it, propagating
//! taint labels exactly as in CFG–FSA intersection (the paper notes the
//! two algorithms differ only in that the FST's *output* symbols replace
//! the grammar's terminals).

use std::collections::HashMap;

use strtaint_automata::fst::{resolve_output, Fst};
use strtaint_automata::StateId;

use crate::budget::{Budget, BudgetExceeded};
use crate::cfg::Cfg;
use crate::normal::normalize;
use crate::symbol::{NtId, Symbol};

/// Computes a grammar for the image `f(L(g, root))` under the
/// transducer `fst`, with taint labels propagated.
///
/// Returns the new grammar and its root.
///
/// # Panics
///
/// Panics if the transducer has input-epsilon arcs; callers must apply
/// [`Fst::remove_input_epsilons`] first (all builders in
/// `strtaint-automata` produce epsilon-free transducers).
pub fn image(g: &Cfg, root: NtId, fst: &Fst) -> (Cfg, NtId) {
    image_with(g, root, fst, &Budget::unlimited())
        .expect("an unlimited budget cannot be exceeded")
}

/// Budgeted form of [`image`].
///
/// Charges `budget` as the worklist fixpoint and reconstruction run; on
/// exhaustion returns [`BudgetExceeded`] and the caller must apply a
/// sound fallback, typically widening to tainted Σ* (see
/// [`crate::budget`]).
pub fn image_with(
    g: &Cfg,
    root: NtId,
    fst: &Fst,
    budget: &Budget,
) -> Result<(Cfg, NtId), BudgetExceeded> {
    assert!(
        !fst.has_input_epsilons(),
        "image requires an input-epsilon-free transducer"
    );
    let (trimmed, troot) = g.trimmed(root);
    let norm = normalize(&trimmed);
    let nv = norm.num_nonterminals();
    let q = fst.num_states() as u32;

    // Terminal step relation with outputs: steps[b][i] = [(j, out)].
    let mut used_bytes: Vec<u8> = Vec::new();
    for (_, rhs) in norm.iter_productions() {
        for s in rhs {
            if let Symbol::T(b) = s {
                used_bytes.push(*b);
            }
        }
    }
    used_bytes.sort_unstable();
    used_bytes.dedup();
    let mut steps: HashMap<u8, Vec<Vec<(u32, Vec<u8>)>>> = HashMap::new();
    for &b in &used_bytes {
        let mut per_state: Vec<Vec<(u32, Vec<u8>)>> = Vec::with_capacity(q as usize);
        for i in 0..q {
            let mut v = Vec::new();
            for arc in fst.arcs(i as StateId) {
                if arc.input.contains(b) {
                    v.push((arc.target, resolve_output(&arc.output, b)));
                }
            }
            per_state.push(v);
        }
        steps.insert(b, per_state);
    }

    // Worklist discovery of realized triples (X, i, j), identical in
    // structure to `intersect` but nondeterministic on terminals.
    let mut by_start: Vec<HashMap<u32, Vec<u32>>> = vec![HashMap::new(); nv];
    let mut by_end: Vec<HashMap<u32, Vec<u32>>> = vec![HashMap::new(); nv];
    let mut worklist: Vec<(NtId, u32, u32)> = Vec::new();
    let mut triples: usize = 0;

    macro_rules! discover {
        ($x:expr, $i:expr, $j:expr) => {{
            budget.charge(1)?;
            let (x, i, j): (NtId, u32, u32) = ($x, $i, $j);
            let ends = by_start[x.index()].entry(i).or_default();
            if !ends.contains(&j) {
                ends.push(j);
                by_end[x.index()].entry(j).or_default().push(i);
                triples += 1;
                budget.check_grammar_size(triples)?;
                worklist.push((x, i, j));
            }
        }};
    }

    // Occurrence indexes.
    let mut occ_unit: Vec<Vec<(NtId, usize)>> = vec![Vec::new(); nv];
    let mut occ_left: Vec<Vec<(NtId, usize)>> = vec![Vec::new(); nv];
    let mut occ_right: Vec<Vec<(NtId, usize)>> = vec![Vec::new(); nv];
    let mut all_prods: Vec<(NtId, Vec<Symbol>)> = Vec::new();
    for (lhs, rhs) in norm.iter_productions() {
        let pid = all_prods.len();
        all_prods.push((lhs, rhs.to_vec()));
        match rhs {
            [Symbol::N(x)] => occ_unit[x.index()].push((lhs, pid)),
            [Symbol::T(_), Symbol::N(x)] => occ_right[x.index()].push((lhs, pid)),
            [Symbol::N(x), Symbol::T(_)] => occ_left[x.index()].push((lhs, pid)),
            [Symbol::N(x), Symbol::N(y)] => {
                occ_left[x.index()].push((lhs, pid));
                occ_right[y.index()].push((lhs, pid));
            }
            _ => {}
        }
    }

    // Byte-pair reachability helper.
    let t_steps = |b: u8, i: u32| -> &[(u32, Vec<u8>)] { &steps[&b][i as usize] };
    // Reverse byte step: all i with i --b--> j.
    let mut t_rev: HashMap<u8, HashMap<u32, Vec<u32>>> = HashMap::new();
    for &b in &used_bytes {
        let mut rev: HashMap<u32, Vec<u32>> = HashMap::new();
        for i in 0..q {
            for (j, _) in t_steps(b, i) {
                rev.entry(*j).or_default().push(i);
            }
        }
        t_rev.insert(b, rev);
    }

    // Seed.
    for (lhs, rhs) in norm.iter_productions() {
        match rhs {
            [] => {
                for i in 0..q {
                    discover!(lhs, i, i);
                }
            }
            [Symbol::T(a)] => {
                for i in 0..q {
                    for (j, _) in t_steps(*a, i) {
                        discover!(lhs, i, *j);
                    }
                }
            }
            [Symbol::T(a), Symbol::T(b)] => {
                for i in 0..q {
                    for (m, _) in t_steps(*a, i).to_vec() {
                        for (j, _) in t_steps(*b, m) {
                            discover!(lhs, i, *j);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    while let Some((x, i, j)) = worklist.pop() {
        budget.charge(1)?;
        for &(lhs, _) in occ_unit[x.index()].clone().iter() {
            discover!(lhs, i, j);
        }
        for &(lhs, pid) in occ_right[x.index()].clone().iter() {
            match all_prods[pid].1.as_slice() {
                [Symbol::T(a), Symbol::N(_)] => {
                    if let Some(starts) = t_rev[a].get(&i) {
                        for &i0 in starts.clone().iter() {
                            discover!(lhs, i0, j);
                        }
                    }
                }
                [Symbol::N(left), Symbol::N(_)] => {
                    if let Some(starts) = by_end[left.index()].get(&i).cloned() {
                        for i0 in starts {
                            discover!(lhs, i0, j);
                        }
                    }
                }
                _ => unreachable!(),
            }
        }
        for &(lhs, pid) in occ_left[x.index()].clone().iter() {
            match all_prods[pid].1.as_slice() {
                [Symbol::N(_), Symbol::T(b)] => {
                    for (k, _) in t_steps(*b, j).to_vec() {
                        discover!(lhs, i, k);
                    }
                }
                [Symbol::N(_), Symbol::N(right)] => {
                    if let Some(ends) = by_start[right.index()].get(&j).cloned() {
                        for k in ends {
                            discover!(lhs, i, k);
                        }
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    // Reconstruction.
    let mut out = Cfg::new();
    let out_root = out.add_nonterminal(format!("{}↦", g.name(root)));
    out.set_taint(out_root, g.taint(root));
    let mut map: HashMap<(u32, u32, u32), NtId> = HashMap::new();
    for x in norm.nonterminals() {
        for (&i, ends) in &by_start[x.index()] {
            for &j in ends {
                let id = out.add_nonterminal(norm.name(x));
                out.set_taint(id, norm.taint(x)); // TAINTIF
                map.insert((x.0, i, j), id);
            }
        }
    }
    let lit = |bytes: &[u8]| -> Vec<Symbol> { bytes.iter().map(|&b| Symbol::T(b)).collect() };
    for x in norm.nonterminals() {
        for (&i, ends) in &by_start[x.index()] {
            for &j in ends {
                budget.charge(1)?;
                let lhs = map[&(x.0, i, j)];
                for rhs in norm.productions(x) {
                    match rhs.as_slice() {
                        [] => {
                            if i == j {
                                out.add_production(lhs, vec![]);
                            }
                        }
                        [Symbol::T(a)] => {
                            for (t, outb) in t_steps(*a, i) {
                                if *t == j {
                                    out.add_production(lhs, lit(outb));
                                }
                            }
                        }
                        [Symbol::N(y)] => {
                            if let Some(&sub) = map.get(&(y.0, i, j)) {
                                out.add_production(lhs, vec![Symbol::N(sub)]);
                            }
                        }
                        [Symbol::T(a), Symbol::T(b)] => {
                            for (m, out_a) in t_steps(*a, i) {
                                for (t, out_b) in t_steps(*b, *m) {
                                    if *t == j {
                                        let mut r = lit(out_a);
                                        r.extend(lit(out_b));
                                        out.add_production(lhs, r);
                                    }
                                }
                            }
                        }
                        [Symbol::T(a), Symbol::N(y)] => {
                            for (m, out_a) in t_steps(*a, i) {
                                if let Some(&sub) = map.get(&(y.0, *m, j)) {
                                    let mut r = lit(out_a);
                                    r.push(Symbol::N(sub));
                                    out.add_production(lhs, r);
                                }
                            }
                        }
                        [Symbol::N(y), Symbol::T(b)] => {
                            if let Some(mids) = by_start[y.index()].get(&i) {
                                for &m in mids {
                                    for (t, out_b) in t_steps(*b, m) {
                                        if *t == j {
                                            let sub = map[&(y.0, i, m)];
                                            let mut r = vec![Symbol::N(sub)];
                                            r.extend(lit(out_b));
                                            out.add_production(lhs, r);
                                        }
                                    }
                                }
                            }
                        }
                        [Symbol::N(y), Symbol::N(z)] => {
                            if let Some(mids) = by_start[y.index()].get(&i) {
                                for &m in mids {
                                    if by_start[z.index()]
                                        .get(&m)
                                        .is_some_and(|v| v.contains(&j))
                                    {
                                        let sy = map[&(y.0, i, m)];
                                        let sz = map[&(z.0, m, j)];
                                        out.add_production(
                                            lhs,
                                            vec![Symbol::N(sy), Symbol::N(sz)],
                                        );
                                    }
                                }
                            }
                        }
                        _ => unreachable!("grammar is normalized"),
                    }
                }
            }
        }
    }
    // Start productions: root triples from the FST start to final states,
    // appending per-state flush output.
    let q0 = fst.start();
    for qf in 0..q {
        if let Some(flush) = fst.final_output(qf as StateId) {
            if let Some(&sub) = map.get(&(troot.0, q0, qf)) {
                let mut rhs = vec![Symbol::N(sub)];
                rhs.extend(lit(flush));
                out.add_production(out_root, rhs);
            }
        }
    }
    Ok((out, out_root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{bounded_language, sample_strings};
    use crate::symbol::{Symbol as S, Taint};
    use strtaint_automata::fst::builders;

    #[test]
    fn image_under_identity_is_same_language() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'a'), S::N(a), S::T(b'b')]);
        g.add_production(a, vec![]);
        let (out, root) = image(&g, a, &builders::identity());
        for s in [&b""[..], b"ab", b"aabb"] {
            assert!(out.derives(root, s), "{:?}", s);
        }
        assert!(!out.derives(root, b"ba"));
    }

    #[test]
    fn image_under_addslashes_escapes_quotes() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_literal_production(a, b"it's");
        g.add_literal_production(a, b"ok");
        let (out, root) = image(&g, a, &builders::addslashes());
        let lang = bounded_language(&out, root, 10).unwrap();
        assert_eq!(lang, vec![b"it\\'s".to_vec(), b"ok".to_vec()]);
    }

    #[test]
    fn image_figure6_on_grammar() {
        // The paper's Figure 6 FST applied to a small language.
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_literal_production(a, b"a''b");
        g.add_literal_production(a, b"'");
        let (out, root) = image(&g, a, &builders::figure6());
        let lang = bounded_language(&out, root, 10).unwrap();
        assert_eq!(lang, vec![b"'".to_vec(), b"a'b".to_vec()]);
    }

    #[test]
    fn image_of_infinite_language() {
        // A -> 'x' A | '  (quote) — addslashes image: every x* followed by \'
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'x'), S::N(a)]);
        g.add_literal_production(a, b"'");
        let (out, root) = image(&g, a, &builders::addslashes());
        assert!(out.derives(root, b"\\'"));
        assert!(out.derives(root, b"xx\\'"));
        assert!(!out.derives(root, b"x'"));
    }

    #[test]
    fn image_preserves_taint() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("userid");
        g.set_taint(a, Taint::DIRECT);
        g.add_literal_production(a, b"1'");
        let (out, root) = image(&g, a, &builders::addslashes());
        assert!(out.derives(root, b"1\\'"));
        let labeled = out.labeled_nonterminals();
        assert!(
            labeled
                .iter()
                .any(|&id| out.taint(id).is_direct() && !out.productions(id).is_empty()),
            "taint lost through FST image"
        );
    }

    #[test]
    fn image_under_replace_literal() {
        // Grammar of "[b]"+ ; str_replace("[b]", "<b>") image.
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, {
            let mut v = g.literal_symbols(b"[b]");
            v.push(S::N(a));
            v
        });
        g.add_literal_production(a, b"[b]");
        let f = builders::replace_literal(b"[b]", b"<b>");
        let (out, root) = image(&g, a, &f);
        assert!(out.derives(root, b"<b>"));
        assert!(out.derives(root, b"<b><b>"));
        assert!(!out.derives(root, b"[b]"));
        let samples = sample_strings(&out, root, 9, 4);
        assert!(samples.contains(&b"<b>".to_vec()));
    }

    #[test]
    fn image_flush_suffix_applies() {
        // Language {"ab"}, replace "abc"→"X": partial match must flush.
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_literal_production(a, b"ab");
        let f = builders::replace_literal(b"abc", b"X");
        let (out, root) = image(&g, a, &f);
        let lang = bounded_language(&out, root, 10).unwrap();
        assert_eq!(lang, vec![b"ab".to_vec()]);
    }

    #[test]
    fn image_under_constant() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'x'), S::N(a)]);
        g.add_production(a, vec![]);
        let (out, root) = image(&g, a, &builders::constant(b"N"));
        let lang = bounded_language(&out, root, 10).unwrap();
        assert_eq!(lang, vec![b"N".to_vec()]);
    }
}
