//! Grammar symbols and taint labels.

use std::fmt;

/// Identifier of a nonterminal (index into a [`crate::Cfg`] arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NtId(pub u32);

impl NtId {
    /// Returns the arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A grammar symbol: a terminal byte or a nonterminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Symbol {
    /// A terminal byte.
    T(u8),
    /// A nonterminal reference.
    N(NtId),
}

impl Symbol {
    /// Returns the nonterminal id if this symbol is a nonterminal.
    pub fn as_nt(self) -> Option<NtId> {
        match self {
            Symbol::N(id) => Some(id),
            Symbol::T(_) => None,
        }
    }

    /// Returns the terminal byte if this symbol is a terminal.
    pub fn as_terminal(self) -> Option<u8> {
        match self {
            Symbol::T(b) => Some(b),
            Symbol::N(_) => None,
        }
    }
}

impl From<NtId> for Symbol {
    fn from(id: NtId) -> Symbol {
        Symbol::N(id)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::T(b) if (0x20..=0x7e).contains(b) => write!(f, "'{}'", *b as char),
            Symbol::T(b) => write!(f, "'\\x{b:02x}'"),
            Symbol::N(id) => write!(f, "{id}"),
        }
    }
}

/// Taint labels on a nonterminal (paper §2.2).
///
/// A nonterminal is labeled `direct` if every string it derives comes
/// from a source the user influences directly (GET/POST parameters,
/// cookies) and `indirect` if the source is influenced indirectly
/// (database results, session data). Labels combine monotonically under
/// [`Taint::union`], mirroring the paper's `TAINTIF` (Fig. 7).
///
/// # Examples
///
/// ```
/// use strtaint_grammar::Taint;
///
/// let t = Taint::DIRECT.union(Taint::INDIRECT);
/// assert!(t.is_direct() && t.is_indirect());
/// assert!(Taint::NONE.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Taint {
    bits: u8,
}

impl Taint {
    /// No taint.
    pub const NONE: Taint = Taint { bits: 0 };
    /// Directly user-controlled (GET/POST/cookie).
    pub const DIRECT: Taint = Taint { bits: 1 };
    /// Indirectly user-controlled (database, session).
    pub const INDIRECT: Taint = Taint { bits: 2 };

    /// Returns the union of two label sets.
    #[must_use]
    pub fn union(self, other: Taint) -> Taint {
        Taint {
            bits: self.bits | other.bits,
        }
    }

    /// Returns `true` if no label is set.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Returns `true` if the `direct` label is set.
    pub fn is_direct(self) -> bool {
        self.bits & 1 != 0
    }

    /// Returns `true` if the `indirect` label is set.
    pub fn is_indirect(self) -> bool {
        self.bits & 2 != 0
    }
}

impl fmt::Display for Taint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.is_direct(), self.is_indirect()) {
            (false, false) => write!(f, "untainted"),
            (true, false) => write!(f, "direct"),
            (false, true) => write!(f, "indirect"),
            (true, true) => write!(f, "direct+indirect"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taint_union_is_monotone() {
        assert_eq!(Taint::NONE.union(Taint::DIRECT), Taint::DIRECT);
        assert_eq!(Taint::DIRECT.union(Taint::DIRECT), Taint::DIRECT);
        let both = Taint::DIRECT.union(Taint::INDIRECT);
        assert!(both.is_direct() && both.is_indirect());
        assert_eq!(both.union(Taint::NONE), both);
    }

    #[test]
    fn taint_display() {
        assert_eq!(Taint::NONE.to_string(), "untainted");
        assert_eq!(Taint::DIRECT.to_string(), "direct");
        assert_eq!(Taint::INDIRECT.to_string(), "indirect");
        assert_eq!(
            Taint::DIRECT.union(Taint::INDIRECT).to_string(),
            "direct+indirect"
        );
    }

    #[test]
    fn symbol_accessors() {
        assert_eq!(Symbol::T(b'a').as_terminal(), Some(b'a'));
        assert_eq!(Symbol::T(b'a').as_nt(), None);
        let n = NtId(3);
        assert_eq!(Symbol::N(n).as_nt(), Some(n));
        assert_eq!(Symbol::from(n), Symbol::N(n));
    }

    #[test]
    fn symbol_display() {
        assert_eq!(Symbol::T(b'a').to_string(), "'a'");
        assert_eq!(Symbol::T(0x01).to_string(), "'\\x01'");
        assert_eq!(Symbol::N(NtId(7)).to_string(), "N7");
    }
}
