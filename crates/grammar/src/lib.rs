//! Context-free grammars with taint labels: the string-analysis core of
//! **strtaint**.
//!
//! The paper (*Sound and Precise Analysis of Web Applications for
//! Injection Vulnerabilities*, Wassermann & Su, PLDI 2007) represents
//! the set of SQL query strings a PHP program can build as an annotated
//! CFG. This crate provides:
//!
//! - [`Cfg`]: the grammar arena, with [`Taint`] labels on nonterminals
//!   marking `direct`/`indirect` user influence (paper §2.2);
//! - [`normal::normalize`]: the paper's `NORMALIZE` (Fig. 7);
//! - [`intersect::intersect`]: CFG–FSA intersection with taint
//!   propagation — the paper's Fig. 7 algorithm with `TAINTIF`;
//! - [`image::image`]: the image of a CFG under a finite-state
//!   transducer, modeling PHP string functions (§3.1.2);
//! - [`approx::overapproximate`]: regular over-approximation used to cut
//!   transducer cycles and for derivability scaffolding;
//! - [`lang`]: finiteness, enumeration and witness extraction, used for
//!   dynamic-include resolution (§4) and bug reports.
//!
//! # Examples
//!
//! ```
//! use strtaint_grammar::{Cfg, Symbol, Taint, intersect::intersect};
//! use strtaint_automata::Regex;
//!
//! // userid is a GET parameter filtered by eregi('[0-9]+', ·) — the
//! // unanchored filter of the paper's Figure 2.
//! let mut g = Cfg::new();
//! let userid = g.add_nonterminal("userid");
//! g.set_taint(userid, Taint::DIRECT);
//! g.add_literal_production(userid, b"1"); // honest user
//! g.add_literal_production(userid, b"1'; DROP TABLE unp_user; --"); // attacker
//!
//! let filter = Regex::new("[0-9]+").unwrap().match_dfa();
//! let (refined, root) = intersect(&g, userid, &filter);
//! // The attack string contains a digit, so the filter keeps it:
//! assert!(refined.derives(root, b"1'; DROP TABLE unp_user; --"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod approx;
pub mod budget;
pub mod cfg;
pub mod earley;
pub mod image;
pub mod intersect;
pub mod lang;
pub mod normal;
pub mod prepared;
pub mod stats;
pub mod symbol;

pub use budget::{Budget, BudgetExceeded, DegradeAction, Degradation, Resource};
pub use prepared::{Intersection, PreparedCache, PreparedGrammar, QueryMode};
pub use stats::EngineStats;
pub use cfg::Cfg;
pub use symbol::{NtId, Symbol, Taint};
