//! CFG–FSA intersection with taint propagation (paper Fig. 7).
//!
//! Computes a grammar for `L(G, root) ∩ L(D)` by the worklist
//! Bar-Hillel construction over the binary-normalized grammar: a triple
//! `X_{ij}` is *realized* when some string derivable from `X` drives
//! the DFA from state `i` to state `j`. The paper's `TAINTIF` is the
//! `taint` copy when result nonterminals are created: `X_{ij}` inherits
//! the labels of `X`, which is exactly what Theorem 3.1 requires.
//!
//! This module is the *reference* engine: each call re-trims and
//! re-normalizes the grammar and steps the DFA byte-by-byte. The hot
//! path uses [`crate::prepared`], which amortizes that setup across
//! queries and compresses DFAs by byte class; property tests assert the
//! two agree.

use std::collections::HashMap;

use strtaint_automata::Dfa;

use crate::budget::{Budget, BudgetExceeded};
use crate::cfg::Cfg;
use crate::normal::normalize;
use crate::symbol::{NtId, Symbol};

/// Outcome of the intersection fixpoint, before grammar reconstruction.
struct Fixpoint {
    /// Normalized input grammar.
    norm: Cfg,
    norm_root: NtId,
    /// by_start[X][i] = sorted end states j with X_{ij} realized.
    by_start: Vec<HashMap<u32, Vec<u32>>>,
    /// by_end[X][j] = start states i with X_{ij} realized.
    by_end: Vec<HashMap<u32, Vec<u32>>>,
}

impl Fixpoint {
    fn realized(&self, x: NtId, i: u32, j: u32) -> bool {
        self.by_start[x.index()]
            .get(&i)
            .is_some_and(|v| v.binary_search(&j).is_ok())
    }
}

/// Runs the Bar-Hillel worklist fixpoint, charging `budget` one unit
/// per discovery attempt and capping the realized-triple count.
fn fixpoint(g: &Cfg, root: NtId, dfa: &Dfa, budget: &Budget) -> Result<Fixpoint, BudgetExceeded> {
    let (trimmed, troot) = g.trimmed(root);
    let norm = normalize(&trimmed);
    let nv = norm.num_nonterminals();
    let q = dfa.num_states() as u32;

    // Index productions.
    #[derive(Clone, Copy)]
    enum P {
        Eps,
        T(u8),
        N(NtId),
        TT(u8, u8),
        TN(u8, NtId),
        NT(NtId, u8),
        NN(NtId, NtId),
    }
    let mut prods: Vec<(NtId, P)> = Vec::new();
    for (lhs, rhs) in norm.iter_productions() {
        let p = match rhs {
            [] => P::Eps,
            [Symbol::T(a)] => P::T(*a),
            [Symbol::N(x)] => P::N(*x),
            [Symbol::T(a), Symbol::T(b)] => P::TT(*a, *b),
            [Symbol::T(a), Symbol::N(x)] => P::TN(*a, *x),
            [Symbol::N(x), Symbol::T(b)] => P::NT(*x, *b),
            [Symbol::N(x), Symbol::N(y)] => P::NN(*x, *y),
            _ => unreachable!("grammar is normalized"),
        };
        prods.push((lhs, p));
    }

    // Occurrence indexes: for each nonterminal, productions where it
    // appears in each role.
    let mut occ_unit: Vec<Vec<usize>> = vec![Vec::new(); nv];
    let mut occ_left: Vec<Vec<usize>> = vec![Vec::new(); nv];
    let mut occ_right: Vec<Vec<usize>> = vec![Vec::new(); nv];
    for (pid, (_, p)) in prods.iter().enumerate() {
        match p {
            P::N(x) => occ_unit[x.index()].push(pid),
            P::TN(_, x) => occ_right[x.index()].push(pid),
            P::NT(x, _) => occ_left[x.index()].push(pid),
            P::NN(x, y) => {
                occ_left[x.index()].push(pid);
                occ_right[y.index()].push(pid);
            }
            _ => {}
        }
    }

    // Byte step tables for terminals used by the grammar.
    let mut forward: HashMap<u8, Vec<u32>> = HashMap::new();
    let mut reverse: HashMap<u8, HashMap<u32, Vec<u32>>> = HashMap::new();
    {
        let mut bytes: Vec<u8> = Vec::new();
        for (_, p) in &prods {
            match p {
                P::T(a) | P::TN(a, _) | P::NT(_, a) => bytes.push(*a),
                P::TT(a, b) => {
                    bytes.push(*a);
                    bytes.push(*b);
                }
                _ => {}
            }
        }
        bytes.sort_unstable();
        bytes.dedup();
        for b in bytes {
            let fwd: Vec<u32> = (0..q).map(|i| dfa.step(i, b)).collect();
            let mut rev: HashMap<u32, Vec<u32>> = HashMap::new();
            for (i, &j) in fwd.iter().enumerate() {
                rev.entry(j).or_default().push(i as u32);
            }
            forward.insert(b, fwd);
            reverse.insert(b, rev);
        }
    }

    let mut fx = Fixpoint {
        norm,
        norm_root: troot,
        by_start: vec![HashMap::new(); nv],
        by_end: vec![HashMap::new(); nv],
    };
    let mut worklist: Vec<(NtId, u32, u32)> = Vec::new();
    let mut triples: usize = 0;

    macro_rules! discover {
        ($x:expr, $i:expr, $j:expr) => {{
            budget.charge(1)?;
            let (x, i, j) = ($x, $i, $j);
            let ends = fx.by_start[x.index()].entry(i).or_default();
            debug_assert!(ends.windows(2).all(|w| w[0] < w[1]), "ends not sorted");
            if let Err(pos) = ends.binary_search(&j) {
                ends.insert(pos, j);
                let starts = fx.by_end[x.index()].entry(j).or_default();
                debug_assert!(starts.windows(2).all(|w| w[0] < w[1]), "starts not sorted");
                if let Err(spos) = starts.binary_search(&i) {
                    starts.insert(spos, i);
                }
                triples += 1;
                budget.check_grammar_size(triples)?;
                worklist.push((x, i, j));
            }
        }};
    }

    // Seed: productions with no nonterminals.
    for (lhs, p) in &prods {
        match p {
            P::Eps => {
                for i in 0..q {
                    discover!(*lhs, i, i);
                }
            }
            P::T(a) => {
                let fwd = &forward[a];
                for i in 0..q {
                    discover!(*lhs, i, fwd[i as usize]);
                }
            }
            P::TT(a, b) => {
                let fa = &forward[a];
                let fb = &forward[b];
                for i in 0..q {
                    discover!(*lhs, i, fb[fa[i as usize] as usize]);
                }
            }
            _ => {}
        }
    }

    // Propagate.
    while let Some((x, i, j)) = worklist.pop() {
        budget.charge(1)?;
        for &pid in &occ_unit[x.index()] {
            let (lhs, _) = prods[pid];
            discover!(lhs, i, j);
        }
        for &pid in &occ_right[x.index()] {
            let (lhs, p) = prods[pid];
            match p {
                P::TN(a, _) => {
                    if let Some(starts) = reverse[&a].get(&i) {
                        for &i0 in starts.clone().iter() {
                            discover!(lhs, i0, j);
                        }
                    }
                }
                P::NN(left, _) => {
                    // x is in the right slot; join with realized left
                    // triples ending at i.
                    if let Some(starts) = fx.by_end[left.index()].get(&i) {
                        for &i0 in starts.clone().iter() {
                            discover!(lhs, i0, j);
                        }
                    }
                }
                _ => unreachable!("occ_right holds TN/NN only"),
            }
        }
        for &pid in &occ_left[x.index()] {
            let (lhs, p) = prods[pid];
            match p {
                P::NT(_, b) => {
                    let jb = forward[&b][j as usize];
                    discover!(lhs, i, jb);
                }
                P::NN(_, right) => {
                    if let Some(ends) = fx.by_start[right.index()].get(&j) {
                        for &k in ends.clone().iter() {
                            discover!(lhs, i, k);
                        }
                    }
                }
                _ => unreachable!("occ_left holds NT/NN only"),
            }
        }
    }
    Ok(fx)
}

/// Computes a grammar for `L(g, root) ∩ L(dfa)` with taint labels
/// propagated onto the result's nonterminals.
///
/// Returns the new grammar and its root; the root derives the empty
/// language when the intersection is empty.
pub fn intersect(g: &Cfg, root: NtId, dfa: &Dfa) -> (Cfg, NtId) {
    intersect_with(g, root, dfa, &Budget::unlimited())
        .expect("an unlimited budget cannot be exceeded")
}

/// Budgeted form of [`intersect`].
///
/// Charges `budget` as the Bar-Hillel fixpoint and reconstruction run;
/// on exhaustion returns [`BudgetExceeded`] and the caller must apply a
/// sound fallback (see [`crate::budget`]).
pub fn intersect_with(
    g: &Cfg,
    root: NtId,
    dfa: &Dfa,
    budget: &Budget,
) -> Result<(Cfg, NtId), BudgetExceeded> {
    let fx = fixpoint(g, root, dfa, budget)?;
    let norm = &fx.norm;

    let mut out = Cfg::new();
    let out_root = out.add_nonterminal(format!("{}∩", g.name(root)));
    out.set_taint(out_root, g.taint(root));

    // Create result nonterminals for realized triples.
    let mut map: HashMap<(u32, u32, u32), NtId> = HashMap::new();
    for x in norm.nonterminals() {
        for (&i, ends) in &fx.by_start[x.index()] {
            for &j in ends {
                let id = out.add_nonterminal(norm.name(x));
                out.set_taint(id, norm.taint(x)); // TAINTIF
                map.insert((x.0, i, j), id);
            }
        }
    }

    // Productions.
    for x in norm.nonterminals() {
        for (&i, ends) in &fx.by_start[x.index()] {
            for &j in ends {
                budget.charge(1)?;
                let lhs = map[&(x.0, i, j)];
                for rhs in norm.productions(x) {
                    match rhs.as_slice() {
                        [] => {
                            if i == j {
                                out.add_production(lhs, vec![]);
                            }
                        }
                        [Symbol::T(a)] => {
                            if dfa.step(i, *a) == j {
                                out.add_production(lhs, vec![Symbol::T(*a)]);
                            }
                        }
                        [Symbol::N(y)] => {
                            if let Some(&sub) = map.get(&(y.0, i, j)) {
                                out.add_production(lhs, vec![Symbol::N(sub)]);
                            }
                        }
                        [Symbol::T(a), Symbol::T(b)] => {
                            if dfa.step(dfa.step(i, *a), *b) == j {
                                out.add_production(lhs, vec![Symbol::T(*a), Symbol::T(*b)]);
                            }
                        }
                        [Symbol::T(a), Symbol::N(y)] => {
                            let m = dfa.step(i, *a);
                            if let Some(&sub) = map.get(&(y.0, m, j)) {
                                out.add_production(lhs, vec![Symbol::T(*a), Symbol::N(sub)]);
                            }
                        }
                        [Symbol::N(y), Symbol::T(b)] => {
                            // Any mid m with Y_{im} realized and step(m,b)=j.
                            if let Some(mids) = fx.by_start[y.index()].get(&i) {
                                for &m in mids {
                                    if dfa.step(m, *b) == j {
                                        let sub = map[&(y.0, i, m)];
                                        out.add_production(
                                            lhs,
                                            vec![Symbol::N(sub), Symbol::T(*b)],
                                        );
                                    }
                                }
                            }
                        }
                        [Symbol::N(y), Symbol::N(z)] => {
                            if let Some(mids) = fx.by_start[y.index()].get(&i) {
                                for &m in mids {
                                    if fx.realized(*z, m, j) {
                                        let sy = map[&(y.0, i, m)];
                                        let sz = map[&(z.0, m, j)];
                                        out.add_production(
                                            lhs,
                                            vec![Symbol::N(sy), Symbol::N(sz)],
                                        );
                                    }
                                }
                            }
                        }
                        _ => unreachable!("grammar is normalized"),
                    }
                }
            }
        }
    }

    // Start productions: root from DFA start to each accepting state.
    let q0 = dfa.start();
    for qf in 0..dfa.num_states() as u32 {
        if dfa.is_accepting(qf) {
            if let Some(&sub) = map.get(&(fx.norm_root.0, q0, qf)) {
                out.add_production(out_root, vec![Symbol::N(sub)]);
            }
        }
    }
    Ok((out, out_root))
}

/// Returns `true` if `L(g, root) ∩ L(dfa)` is empty.
///
/// Runs the same fixpoint as [`intersect`] but skips grammar
/// reconstruction.
pub fn is_intersection_empty(g: &Cfg, root: NtId, dfa: &Dfa) -> bool {
    is_intersection_empty_with(g, root, dfa, &Budget::unlimited())
        .expect("an unlimited budget cannot be exceeded")
}

/// Budgeted form of [`is_intersection_empty`].
///
/// On exhaustion the emptiness question is unanswered; callers must
/// treat the language as possibly nonempty (the sound direction).
pub fn is_intersection_empty_with(
    g: &Cfg,
    root: NtId,
    dfa: &Dfa,
    budget: &Budget,
) -> Result<bool, BudgetExceeded> {
    let fx = fixpoint(g, root, dfa, budget)?;
    let q0 = dfa.start();
    for qf in 0..dfa.num_states() as u32 {
        if dfa.is_accepting(qf) && fx.realized(fx.norm_root, q0, qf) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{sample_strings, shortest_string};
    use crate::symbol::{Symbol as S, Taint};
    use strtaint_automata::Regex;

    fn dfa(pattern: &str) -> Dfa {
        Regex::new(pattern).unwrap().match_dfa()
    }

    #[test]
    fn intersect_literal_with_regex() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_literal_production(a, b"abc");
        g.add_literal_production(a, b"xyz");
        let (out, root) = intersect(&g, a, &dfa("^a.*$"));
        assert!(out.derives(root, b"abc"));
        assert!(!out.derives(root, b"xyz"));
        assert_eq!(shortest_string(&out, root), Some(b"abc".to_vec()));
    }

    #[test]
    fn intersect_recursive_grammar() {
        // A -> '(' A ')' | 'x' ; intersect with strings containing exactly
        // one 'x' and balanced parens is the whole language; intersect
        // with "starts with ((" keeps depth ≥ 2.
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'('), S::N(a), S::T(b')')]);
        g.add_literal_production(a, b"x");
        let (out, root) = intersect(&g, a, &dfa(r"^\(\(.*$"));
        assert!(!out.derives(root, b"(x)"));
        assert!(out.derives(root, b"((x))"));
        assert!(out.derives(root, b"(((x)))"));
        assert!(!out.derives(root, b"x"));
    }

    #[test]
    fn empty_intersection() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_literal_production(a, b"hello");
        assert!(is_intersection_empty(&g, a, &dfa("^[0-9]+$")));
        assert!(!is_intersection_empty(&g, a, &dfa("^h.*$")));
        let (out, root) = intersect(&g, a, &dfa("^[0-9]+$"));
        assert!(out.is_empty_language(root));
    }

    #[test]
    fn taint_propagates_theorem_3_1() {
        // query -> "id='" userid "'"; userid (direct) -> Σ-ish digits
        let mut g = Cfg::new();
        let userid = g.add_nonterminal("userid");
        g.set_taint(userid, Taint::DIRECT);
        g.add_literal_production(userid, b"1");
        g.add_literal_production(userid, b"1'");
        let query = g.add_nonterminal("query");
        let mut rhs = g.literal_symbols(b"id='");
        rhs.push(S::N(userid));
        rhs.push(S::T(b'\''));
        g.add_production(query, rhs);

        let (out, root) = intersect(&g, query, &dfa("^id=.*$"));
        assert!(out.derives(root, b"id='1'"));
        // The userid sub-language must still be labeled direct.
        let labeled = out.labeled_nonterminals();
        assert!(
            labeled.iter().any(|&id| out.taint(id).is_direct() && out.name(id) == "userid"),
            "direct label lost:\n{}",
            out.display_from(root)
        );
        // And the labeled nonterminal still derives the tainted substrings.
        let direct_nt = labeled
            .iter()
            .copied()
            .find(|&id| out.name(id) == "userid" && !out.productions(id).is_empty())
            .unwrap();
        let strings = sample_strings(&out, direct_nt, 8, 8);
        assert!(strings.contains(&b"1".to_vec()) || strings.contains(&b"1'".to_vec()));
    }

    #[test]
    fn intersection_with_sigma_star_preserves_language() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'a'), S::N(a), S::T(b'b')]);
        g.add_production(a, vec![]);
        let (out, root) = intersect(&g, a, &Dfa::any_string());
        for s in [&b""[..], b"ab", b"aabb", b"aaabbb"] {
            assert!(out.derives(root, s), "{:?}", s);
        }
        assert!(!out.derives(root, b"ba"));
        assert!(!out.derives(root, b"aab"));
    }

    #[test]
    fn budget_trips_and_unlimited_agrees() {
        use crate::budget::{Budget, Resource};
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'('), S::N(a), S::T(b')')]);
        g.add_literal_production(a, b"x");
        let d = dfa(r"^\(\(.*$");

        // Tiny fuel: the fixpoint must bail with a structured error.
        let tiny = Budget::new(None, Some(3), None);
        let err = intersect_with(&g, a, &d, &tiny).unwrap_err();
        assert_eq!(err.resource, Resource::Fuel);
        assert!(is_intersection_empty_with(&g, a, &d, &tiny).is_err());

        // Tiny grammar cap trips on triple count.
        let capped = Budget::new(None, None, Some(2));
        let err = intersect_with(&g, a, &d, &capped).unwrap_err();
        assert_eq!(err.resource, Resource::GrammarSize);

        // Unlimited budget matches the infallible API exactly.
        let (out, root) = intersect_with(&g, a, &d, &Budget::unlimited()).unwrap();
        let (out2, root2) = intersect(&g, a, &d);
        assert_eq!(
            crate::lang::shortest_string(&out, root),
            crate::lang::shortest_string(&out2, root2)
        );
    }

    #[test]
    fn odd_quote_parity_intersection() {
        // The paper's check C1 shape: strings with an odd number of quotes.
        let mut g = Cfg::new();
        let x = g.add_nonterminal("X");
        g.add_literal_production(x, b"1");
        g.add_literal_production(x, b"1'");
        g.add_literal_production(x, b"1''");
        let odd_quotes = dfa("^[^']*('[^']*'[^']*)*'[^']*$");
        let (out, root) = intersect(&g, x, &odd_quotes);
        assert!(out.derives(root, b"1'"));
        assert!(!out.derives(root, b"1"));
        assert!(!out.derives(root, b"1''"));
    }
}
