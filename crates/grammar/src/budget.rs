//! Resource budgets and the sound-degradation vocabulary.
//!
//! The language-theoretic core — CFG∩FSA intersection, FST image, and
//! Earley derivability — is worst-case super-linear in grammar × DFA
//! size, and real PHP pages can drive it there (deep `str_replace`
//! chains, wide concatenations, alternation-heavy filters). A
//! [`Budget`] makes every such loop *cooperatively preemptible*: hot
//! loops charge fuel as they work and bail out with a structured
//! [`BudgetExceeded`] when the page's wall-clock deadline passes, its
//! step fuel runs out, or an intermediate grammar outgrows its cap.
//!
//! The contract callers must uphold is **degradation may only lose
//! precision, never soundness**: when a budgeted operation trips, the
//! caller replaces its result with an over-approximation (widening a
//! language to tainted Σ*, keeping a nonterminal unrefined) or reports
//! the hotspot *unverified*. A budget trip can therefore cause a false
//! positive, never a silent "verified". Each such event is recorded as
//! a [`Degradation`] so reports can show exactly where and why
//! precision was lost.
//!
//! Budgets are cheap to clone (`Arc` inside) and thread-safe, so one
//! budget can govern a whole page analysis across helper calls. Fuel is
//! a shared atomic counter; the wall-clock deadline is checked on an
//! amortized schedule (every [`DEADLINE_CHECK_INTERVAL`] charges) to
//! keep `Instant::now` off the per-step path.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many fuel charges elapse between wall-clock deadline checks.
pub const DEADLINE_CHECK_INTERVAL: u64 = 1024;

/// Which resource a [`Budget`] ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step-fuel counter reached zero.
    Fuel,
    /// An intermediate grammar exceeded the size cap.
    GrammarSize,
}

impl Resource {
    /// Stable machine-readable tag, used wherever a resource is
    /// serialized (daemon verdict artifacts, JSON reports). Unlike
    /// `Display` (free prose), tags are a compatibility surface: never
    /// reuse or repurpose one.
    pub fn tag(self) -> &'static str {
        match self {
            Resource::Deadline => "deadline",
            Resource::Fuel => "fuel",
            Resource::GrammarSize => "grammar-size",
        }
    }

    /// Inverse of [`Resource::tag`]; `None` for unknown tags (a
    /// version-skewed or corrupted artifact — callers must treat the
    /// record as invalid, not guess).
    pub fn from_tag(tag: &str) -> Option<Resource> {
        Some(match tag {
            "deadline" => Resource::Deadline,
            "fuel" => Resource::Fuel,
            "grammar-size" => Resource::GrammarSize,
            _ => return None,
        })
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.tag())
    }
}

/// Error returned by budgeted operations when a resource is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The resource that ran out.
    pub resource: Resource,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis budget exceeded: {}", self.resource)
    }
}

impl std::error::Error for BudgetExceeded {}

/// The sound fallback a caller applied after a budget trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// A language was widened to tainted Σ* (a superset — sound).
    WidenedToAny,
    /// A refinement (filter intersection) was skipped, keeping the
    /// unrefined language (a superset — sound).
    KeptUnrefined,
    /// A hotspot check could not complete and was reported unverified
    /// (a possible false positive — sound).
    MarkedUnverified,
    /// A whole page was skipped (reported, never counted verified).
    SkippedPage,
}

impl DegradeAction {
    /// Stable machine-readable tag for serialized degradations (daemon
    /// verdict artifacts). Same compatibility contract as
    /// [`Resource::tag`].
    pub fn tag(self) -> &'static str {
        match self {
            DegradeAction::WidenedToAny => "widened-to-any",
            DegradeAction::KeptUnrefined => "kept-unrefined",
            DegradeAction::MarkedUnverified => "marked-unverified",
            DegradeAction::SkippedPage => "skipped-page",
        }
    }

    /// Inverse of [`DegradeAction::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: &str) -> Option<DegradeAction> {
        Some(match tag {
            "widened-to-any" => DegradeAction::WidenedToAny,
            "kept-unrefined" => DegradeAction::KeptUnrefined,
            "marked-unverified" => DegradeAction::MarkedUnverified,
            "skipped-page" => DegradeAction::SkippedPage,
            _ => return None,
        })
    }
}

impl fmt::Display for DegradeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeAction::WidenedToAny => write!(f, "widened to tainted Σ*"),
            DegradeAction::KeptUnrefined => write!(f, "kept unrefined language"),
            DegradeAction::MarkedUnverified => write!(f, "marked unverified"),
            DegradeAction::SkippedPage => write!(f, "skipped page"),
        }
    }
}

/// A record of one precision loss caused by a budget trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The resource that tripped.
    pub resource: Resource,
    /// Where in the analysis the trip happened (e.g. a string-function
    /// application site or a hotspot name).
    pub site: String,
    /// The sound fallback that was applied.
    pub action: DegradeAction,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} exhausted, {}", self.site, self.resource, self.action)
    }
}

struct BudgetInner {
    deadline: Option<Instant>,
    /// Remaining fuel. Irrelevant when `unlimited_fuel`.
    fuel: AtomicU64,
    unlimited_fuel: bool,
    /// The fuel limit this budget started with (`None` = unlimited) —
    /// static for the budget's lifetime, unlike the draining counter
    /// above. Together with `max_grammar` it forms the *budget class*
    /// used to key memoized query verdicts (`fuel_limit`/`grammar_cap`):
    /// two budgets of the same class trip on the same charge schedule.
    fuel_limit: Option<u64>,
    /// Cap on intermediate grammar size (nonterminal count).
    max_grammar: Option<usize>,
    /// Charge counter driving the amortized deadline check.
    ticks: AtomicU64,
    /// Latched once any resource trips, so later charges fail fast and
    /// a fuel-counter underflow race cannot "un-exhaust" the budget.
    exhausted: AtomicBool,
    /// Which resource tripped first (0 = none, else Resource as u64+1).
    tripped: AtomicU64,
    /// Observability hook: whether full tracing was recording at
    /// construction time (charge counting is Full-mode-only — the
    /// per-charge path is too hot for the aggregate overhead
    /// contract), cached so the uncounted path pays one branch on a
    /// plain bool. When set, charges are counted through
    /// `strtaint_obs::budget_charge` (itself thread-batched — the
    /// per-charge path never touches a shared atomic).
    obs_charges: bool,
}

/// A shared, thread-safe resource budget for one analysis task.
///
/// See the [module docs](self) for the degradation contract.
#[derive(Clone)]
pub struct Budget {
    inner: Arc<BudgetInner>,
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field("deadline", &self.inner.deadline)
            .field(
                "fuel",
                &if self.inner.unlimited_fuel {
                    None
                } else {
                    Some(self.inner.fuel.load(Ordering::Relaxed))
                },
            )
            .field("max_grammar", &self.inner.max_grammar)
            .field("exhausted", &self.inner.exhausted.load(Ordering::Relaxed))
            .finish()
    }
}

impl Budget {
    /// A budget that never trips. Budgeted operations called with it
    /// behave exactly like their unbudgeted counterparts.
    pub fn unlimited() -> Self {
        Budget::new(None, None, None)
    }

    /// Builds a budget from optional limits; `None` means unlimited for
    /// that resource.
    ///
    /// * `timeout` — wall-clock allowance from *now*.
    /// * `fuel` — number of analysis steps (worklist pops, Earley items,
    ///   reconstruction rows) allowed.
    /// * `max_grammar` — cap on intermediate grammar nonterminal count.
    pub fn new(timeout: Option<Duration>, fuel: Option<u64>, max_grammar: Option<usize>) -> Self {
        Budget {
            inner: Arc::new(BudgetInner {
                deadline: timeout.map(|t| Instant::now() + t),
                fuel: AtomicU64::new(fuel.unwrap_or(u64::MAX)),
                unlimited_fuel: fuel.is_none(),
                fuel_limit: fuel,
                max_grammar,
                ticks: AtomicU64::new(0),
                exhausted: AtomicBool::new(false),
                tripped: AtomicU64::new(0),
                obs_charges: strtaint_obs::budget_charges_enabled(),
            }),
        }
    }

    /// True if no limit is set on any resource.
    pub fn is_unlimited(&self) -> bool {
        self.inner.deadline.is_none()
            && self.inner.unlimited_fuel
            && self.inner.max_grammar.is_none()
    }

    /// Remaining fuel, or `None` if fuel is unlimited.
    pub fn fuel_left(&self) -> Option<u64> {
        if self.inner.unlimited_fuel {
            None
        } else {
            Some(self.inner.fuel.load(Ordering::Relaxed))
        }
    }

    /// The static fuel limit this budget was constructed with (`None` =
    /// unlimited). Unlike [`Self::fuel_left`] this never changes.
    pub fn fuel_limit(&self) -> Option<u64> {
        self.inner.fuel_limit
    }

    /// The static grammar-size cap (`None` = unlimited).
    pub fn grammar_cap(&self) -> Option<usize> {
        self.inner.max_grammar
    }

    fn trip(&self, resource: Resource) -> BudgetExceeded {
        self.inner.exhausted.store(true, Ordering::Relaxed);
        strtaint_obs::budget_exhausted(resource.tag());
        let code = match resource {
            Resource::Deadline => 1,
            Resource::Fuel => 2,
            Resource::GrammarSize => 3,
        };
        // Keep the first trip; later trips of other kinds don't matter.
        let _ = self
            .inner
            .tripped
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
        BudgetExceeded {
            resource: self.tripped_resource().unwrap_or(resource),
        }
    }

    fn tripped_resource(&self) -> Option<Resource> {
        match self.inner.tripped.load(Ordering::Relaxed) {
            1 => Some(Resource::Deadline),
            2 => Some(Resource::Fuel),
            3 => Some(Resource::GrammarSize),
            _ => None,
        }
    }

    /// Charges `n` units of work against the budget.
    ///
    /// Returns `Err` if the budget is (or becomes) exhausted. The
    /// wall-clock deadline is only consulted once every
    /// [`DEADLINE_CHECK_INTERVAL`] charges, so very small fuel amounts
    /// can outlive the deadline by a bounded slop.
    #[inline]
    pub fn charge(&self, n: u64) -> Result<(), BudgetExceeded> {
        let inner = &*self.inner;
        if inner.exhausted.load(Ordering::Relaxed) {
            return Err(BudgetExceeded {
                resource: self.tripped_resource().unwrap_or(Resource::Fuel),
            });
        }
        if inner.obs_charges {
            strtaint_obs::budget_charge(n);
        }
        if !inner.unlimited_fuel {
            let prev = inner.fuel.fetch_sub(n, Ordering::Relaxed);
            if prev < n {
                return Err(self.trip(Resource::Fuel));
            }
        }
        if let Some(deadline) = inner.deadline {
            let t = inner.ticks.fetch_add(1, Ordering::Relaxed);
            if t % DEADLINE_CHECK_INTERVAL == 0 && Instant::now() >= deadline {
                return Err(self.trip(Resource::Deadline));
            }
        }
        Ok(())
    }

    /// Checks an intermediate grammar size (nonterminal or triple
    /// count) against the cap.
    #[inline]
    pub fn check_grammar_size(&self, size: usize) -> Result<(), BudgetExceeded> {
        match self.inner.max_grammar {
            Some(cap) if size > cap => Err(self.trip(Resource::GrammarSize)),
            _ => Ok(()),
        }
    }

    /// Forces the wall-clock check immediately, regardless of the
    /// amortization interval. Useful between phases.
    pub fn check_deadline(&self) -> Result<(), BudgetExceeded> {
        if self.inner.exhausted.load(Ordering::Relaxed) {
            return Err(BudgetExceeded {
                resource: self.tripped_resource().unwrap_or(Resource::Deadline),
            });
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Err(self.trip(Resource::Deadline)),
            _ => Ok(()),
        }
    }

    /// Builds the [`Degradation`] record for a trip observed at `site`.
    pub fn degradation(
        &self,
        err: BudgetExceeded,
        site: impl Into<String>,
        action: DegradeAction,
    ) -> Degradation {
        Degradation {
            resource: err.resource,
            site: site.into(),
            action,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..10_000 {
            b.charge(1_000_000).unwrap();
        }
        b.check_grammar_size(usize::MAX).unwrap();
        b.check_deadline().unwrap();
    }

    #[test]
    fn fuel_runs_out_and_latches() {
        let b = Budget::new(None, Some(10), None);
        assert_eq!(b.fuel_left(), Some(10));
        for _ in 0..10 {
            b.charge(1).unwrap();
        }
        let err = b.charge(1).unwrap_err();
        assert_eq!(err.resource, Resource::Fuel);
        // Latched: every later charge fails too, with the same resource.
        assert_eq!(b.charge(1).unwrap_err().resource, Resource::Fuel);
        assert_eq!(b.check_deadline().unwrap_err().resource, Resource::Fuel);
    }

    #[test]
    fn big_charge_trips_at_once() {
        let b = Budget::new(None, Some(5), None);
        assert_eq!(b.charge(100).unwrap_err().resource, Resource::Fuel);
    }

    #[test]
    fn deadline_trips() {
        let b = Budget::new(Some(Duration::from_millis(0)), None, None);
        assert_eq!(b.check_deadline().unwrap_err().resource, Resource::Deadline);
        // charge() observes the latched state.
        assert_eq!(b.charge(1).unwrap_err().resource, Resource::Deadline);
    }

    #[test]
    fn deadline_amortized_check_fires() {
        let b = Budget::new(Some(Duration::from_millis(0)), None, None);
        let mut tripped = false;
        for _ in 0..=DEADLINE_CHECK_INTERVAL {
            if b.charge(1).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "amortized deadline check never fired");
    }

    #[test]
    fn grammar_cap_trips() {
        let b = Budget::new(None, None, Some(100));
        b.check_grammar_size(100).unwrap();
        assert_eq!(
            b.check_grammar_size(101).unwrap_err().resource,
            Resource::GrammarSize
        );
    }

    #[test]
    fn clone_shares_fuel() {
        let a = Budget::new(None, Some(4), None);
        let b = a.clone();
        a.charge(2).unwrap();
        b.charge(2).unwrap();
        assert!(a.charge(1).is_err());
        assert!(b.charge(1).is_err());
    }

    #[test]
    fn degradation_display() {
        let b = Budget::new(None, Some(0), None);
        let err = b.charge(1).unwrap_err();
        let d = b.degradation(err, "str_replace@page.php", DegradeAction::WidenedToAny);
        let s = d.to_string();
        assert!(s.contains("fuel"), "{s}");
        assert!(s.contains("str_replace@page.php"), "{s}");
    }
}
