//! Context-free grammar arena.
//!
//! The string-taint analysis of the paper represents the set of query
//! strings a program can generate as a CFG whose nonterminals mirror the
//! program's dataflow (one nonterminal per SSA variable version, paper
//! Fig. 5). A single [`Cfg`] arena holds the grammar for a whole
//! program; individual string expressions are *roots* (nonterminals)
//! within it.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::symbol::{NtId, Symbol, Taint};

/// A context-free grammar over the byte alphabet with tainted
/// nonterminals.
///
/// # Examples
///
/// ```
/// use strtaint_grammar::{Cfg, Symbol, Taint};
///
/// // The paper's Figure 4 grammar, simplified:
/// let mut g = Cfg::new();
/// let userid = g.add_nonterminal("userid");
/// g.set_taint(userid, Taint::DIRECT);
/// g.add_literal_production(userid, b"1");
/// let query = g.add_nonterminal("query");
/// let mut rhs = g.literal_symbols(b"SELECT * FROM t WHERE id='");
/// rhs.push(Symbol::N(userid));
/// rhs.push(Symbol::T(b'\''));
/// g.add_production(query, rhs);
/// assert!(g.derives(query, b"SELECT * FROM t WHERE id='1'"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    names: Vec<String>,
    taint: Vec<Taint>,
    /// Productions, grouped per nonterminal.
    prods: Vec<Vec<Vec<Symbol>>>,
}

impl Cfg {
    /// Creates an empty grammar.
    pub fn new() -> Self {
        Cfg::default()
    }

    /// Adds a nonterminal with a display name, returning its id.
    pub fn add_nonterminal(&mut self, name: impl Into<String>) -> NtId {
        let id = NtId(self.names.len() as u32);
        self.names.push(name.into());
        self.taint.push(Taint::NONE);
        self.prods.push(Vec::new());
        id
    }

    /// Returns the number of nonterminals (`|V|` in the paper's Table 1).
    pub fn num_nonterminals(&self) -> usize {
        self.names.len()
    }

    /// Returns the total number of productions (`|R|` in Table 1).
    pub fn num_productions(&self) -> usize {
        self.prods.iter().map(Vec::len).sum()
    }

    /// Returns the display name of a nonterminal.
    pub fn name(&self, id: NtId) -> &str {
        &self.names[id.index()]
    }

    /// Returns the taint labels of a nonterminal.
    pub fn taint(&self, id: NtId) -> Taint {
        self.taint[id.index()]
    }

    /// Replaces the taint labels of a nonterminal.
    pub fn set_taint(&mut self, id: NtId, taint: Taint) {
        self.taint[id.index()] = taint;
    }

    /// Adds labels to a nonterminal (monotone union — the paper's
    /// `TAINTIF`).
    pub fn add_taint(&mut self, id: NtId, taint: Taint) {
        let t = &mut self.taint[id.index()];
        *t = t.union(taint);
    }

    /// Adds a production `lhs → rhs`.
    pub fn add_production(&mut self, lhs: NtId, rhs: Vec<Symbol>) {
        self.prods[lhs.index()].push(rhs);
    }

    /// Adds a production `lhs → literal` for a byte string.
    pub fn add_literal_production(&mut self, lhs: NtId, literal: &[u8]) {
        let rhs = self.literal_symbols(literal);
        self.add_production(lhs, rhs);
    }

    /// Converts a byte string to a symbol sequence.
    pub fn literal_symbols(&self, literal: &[u8]) -> Vec<Symbol> {
        literal.iter().map(|&b| Symbol::T(b)).collect()
    }

    /// Returns the productions of `id`.
    pub fn productions(&self, id: NtId) -> &[Vec<Symbol>] {
        &self.prods[id.index()]
    }

    /// Iterates over all `(lhs, rhs)` pairs.
    pub fn iter_productions(&self) -> impl Iterator<Item = (NtId, &[Symbol])> + '_ {
        self.prods.iter().enumerate().flat_map(|(i, rules)| {
            rules
                .iter()
                .map(move |rhs| (NtId(i as u32), rhs.as_slice()))
        })
    }

    /// Iterates over all nonterminal ids.
    pub fn nonterminals(&self) -> impl Iterator<Item = NtId> {
        (0..self.names.len() as u32).map(NtId)
    }

    /// Returns all nonterminals carrying at least one taint label
    /// (the set `Vl` of paper §3.2.1).
    pub fn labeled_nonterminals(&self) -> Vec<NtId> {
        self.nonterminals()
            .filter(|&id| !self.taint(id).is_empty())
            .collect()
    }

    /// Convenience: a fresh nonterminal with a single literal production.
    pub fn literal_nonterminal(&mut self, name: impl Into<String>, literal: &[u8]) -> NtId {
        let id = self.add_nonterminal(name);
        self.add_literal_production(id, literal);
        id
    }

    /// Computes the set of *productive* nonterminals (those deriving at
    /// least one terminal string).
    pub fn productive(&self) -> Vec<bool> {
        let n = self.num_nonterminals();
        let mut productive = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for (lhs, rhs) in self.iter_productions() {
                if productive[lhs.index()] {
                    continue;
                }
                let ok = rhs.iter().all(|s| match s {
                    Symbol::T(_) => true,
                    Symbol::N(id) => productive[id.index()],
                });
                if ok {
                    productive[lhs.index()] = true;
                    changed = true;
                }
            }
        }
        productive
    }

    /// Computes the set of nonterminals reachable from `root`.
    pub fn reachable(&self, root: NtId) -> Vec<bool> {
        let mut seen = vec![false; self.num_nonterminals()];
        let mut stack = vec![root];
        seen[root.index()] = true;
        while let Some(id) = stack.pop() {
            for rhs in self.productions(id) {
                for s in rhs {
                    if let Symbol::N(t) = s {
                        if !seen[t.index()] {
                            seen[t.index()] = true;
                            stack.push(*t);
                        }
                    }
                }
            }
        }
        seen
    }

    /// Computes the nonterminals reachable from `root` in discovery
    /// order. Cost is proportional to the reachable subgraph, not the
    /// arena — prefer this in code that runs against the (large,
    /// append-only) program-wide grammar.
    pub fn reachable_list(&self, root: NtId) -> Vec<NtId> {
        let mut seen: HashSet<NtId> = HashSet::new();
        let mut order = vec![root];
        seen.insert(root);
        let mut cursor = 0;
        while cursor < order.len() {
            let id = order[cursor];
            cursor += 1;
            for rhs in self.productions(id) {
                for s in rhs {
                    if let Symbol::N(t) = s {
                        if seen.insert(*t) {
                            order.push(*t);
                        }
                    }
                }
            }
        }
        order
    }

    /// Counts productions reachable from `root`, stopping early once
    /// `cap` is exceeded (returns `cap + 1` in that case). Used to bound
    /// expensive grammar transformations.
    pub fn count_reachable_productions(&self, root: NtId, cap: usize) -> usize {
        let mut count = 0usize;
        for id in self.reachable_list(root) {
            count += self.productions(id).len();
            if count > cap {
                return cap + 1;
            }
        }
        count
    }

    /// Computes the productive subset of the given nonterminals
    /// (restricted fixpoint — cost proportional to the sublist).
    fn productive_among(&self, ids: &[NtId]) -> HashSet<NtId> {
        let mut productive: HashSet<NtId> = HashSet::new();
        let mut changed = true;
        while changed {
            changed = false;
            for &id in ids {
                if productive.contains(&id) {
                    continue;
                }
                let ok = self.productions(id).iter().any(|rhs| {
                    rhs.iter().all(|s| match s {
                        Symbol::T(_) => true,
                        Symbol::N(n) => productive.contains(n),
                    })
                });
                if ok {
                    productive.insert(id);
                    changed = true;
                }
            }
        }
        productive
    }

    /// Returns `true` if the language of `root` is empty.
    ///
    /// Cost is proportional to the subgraph reachable from `root`.
    pub fn is_empty_language(&self, root: NtId) -> bool {
        let ids = self.reachable_list(root);
        !self.productive_among(&ids).contains(&root)
    }

    /// Builds a trimmed copy containing only nonterminals reachable from
    /// `root` and productive, along with the mapping of `root`.
    ///
    /// Productions mentioning non-productive nonterminals are dropped.
    /// If `root` itself is non-productive the result is a grammar whose
    /// root has no productions (empty language). Cost is proportional
    /// to the reachable subgraph.
    pub fn trimmed(&self, root: NtId) -> (Cfg, NtId) {
        let ids = self.reachable_list(root);
        let productive = self.productive_among(&ids);
        let mut map: HashMap<NtId, NtId> = HashMap::new();
        let mut out = Cfg::new();
        // Root first so it exists even when unproductive.
        let new_root = out.add_nonterminal(self.name(root));
        out.set_taint(new_root, self.taint(root));
        map.insert(root, new_root);
        for &id in &ids {
            if id != root && productive.contains(&id) {
                let n = out.add_nonterminal(self.name(id));
                out.set_taint(n, self.taint(id));
                map.insert(id, n);
            }
        }
        for &id in &ids {
            let Some(&new_lhs) = map.get(&id) else { continue };
            'prods: for rhs in self.productions(id) {
                let mut new_rhs = Vec::with_capacity(rhs.len());
                for s in rhs {
                    match s {
                        Symbol::T(b) => new_rhs.push(Symbol::T(*b)),
                        Symbol::N(sub) => match map.get(sub) {
                            Some(&n) => new_rhs.push(Symbol::N(n)),
                            None => continue 'prods,
                        },
                    }
                }
                out.add_production(new_lhs, new_rhs);
            }
        }
        (out, new_root)
    }

    /// Imports everything reachable from `other_root` in `other` into
    /// this arena, returning the id `other_root` maps to.
    ///
    /// Names and taint labels are preserved. Used by the analysis to
    /// splice intersection/image results (which are built as standalone
    /// grammars) back into the program-wide grammar.
    pub fn import_from(&mut self, other: &Cfg, other_root: NtId) -> NtId {
        let ids = other.reachable_list(other_root);
        let mut map: HashMap<NtId, NtId> = HashMap::new();
        for &id in &ids {
            let n = self.add_nonterminal(other.name(id));
            self.set_taint(n, other.taint(id));
            map.insert(id, n);
        }
        for (lhs, rhs) in ids
            .iter()
            .flat_map(|&id| other.productions(id).iter().map(move |r| (id, r)))
        {
            let Some(&new_lhs) = map.get(&lhs) else { continue };
            let new_rhs = rhs
                .iter()
                .map(|s| match s {
                    Symbol::T(b) => Symbol::T(*b),
                    Symbol::N(id) => Symbol::N(map[id]),
                })
                .collect();
            self.add_production(new_lhs, new_rhs);
        }
        map[&other_root]
    }

    /// Returns a nonterminal deriving every byte string (`Σ*`), creating
    /// it on first use and caching it under the name `"ANY"`.
    ///
    /// The analysis uses this for unconstrained sources (GET parameters
    /// before filtering) and as the sound fallback for unmodeled
    /// operations.
    pub fn any_string_nt(&mut self) -> NtId {
        if let Some(id) = self
            .nonterminals()
            .find(|&id| self.name(id) == "ANY" && !self.productions(id).is_empty())
        {
            return id;
        }
        let any = self.add_nonterminal("ANY");
        self.add_production(any, vec![]);
        for b in 0..=255u8 {
            self.add_production(any, vec![Symbol::T(b), Symbol::N(any)]);
        }
        any
    }

    /// Membership test: does `root` derive exactly the byte string `s`?
    ///
    /// Implemented with an Earley recognizer over bytes; intended for
    /// tests and examples, not the analysis hot path.
    pub fn derives(&self, root: NtId, s: &[u8]) -> bool {
        crate::earley::recognize(self, root, s)
    }

    /// Renders the grammar reachable from `root` as a Graphviz digraph:
    /// one node per nonterminal (tainted ones highlighted), one edge per
    /// nonterminal occurrence, labeled with the production's shape.
    pub fn to_dot(&self, root: NtId, name: &str) -> String {
        use std::fmt::Write as _;
        let ids = self.reachable_list(root);
        let mut out = String::new();
        let _ = writeln!(out, "digraph {} {{", name.replace(['-', ' '], "_"));
        let _ = writeln!(out, "  rankdir=LR;");
        for &id in &ids {
            let taint = self.taint(id);
            let color = if taint.is_direct() {
                ", style=filled, fillcolor=salmon"
            } else if taint.is_indirect() {
                ", style=filled, fillcolor=khaki"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\"{}];",
                id.0,
                self.name(id).replace('"', "'"),
                color
            );
            for (pi, rhs) in self.productions(id).iter().enumerate() {
                let mut label = String::new();
                for sym in rhs {
                    match sym {
                        Symbol::T(b) if (0x20..=0x7e).contains(b) && *b != b'"' => {
                            label.push(*b as char)
                        }
                        Symbol::T(_) => label.push('·'),
                        Symbol::N(_) => label.push('◦'),
                    }
                }
                if label.len() > 24 {
                    label.truncate(24);
                    label.push('…');
                }
                for sym in rhs {
                    if let Symbol::N(t) = sym {
                        let _ = writeln!(
                            out,
                            "  n{} -> n{} [label=\"p{pi}: {label}\"];",
                            id.0, t.0
                        );
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the productions reachable from `root` for debugging.
    pub fn display_from(&self, root: NtId) -> String {
        let reachable = self.reachable(root);
        let mut out = String::new();
        use std::fmt::Write as _;
        for id in self.nonterminals() {
            if !reachable[id.index()] {
                continue;
            }
            for rhs in self.productions(id) {
                let _ = write!(out, "{} ->", self.name(id));
                if rhs.is_empty() {
                    let _ = write!(out, " ε");
                }
                // Group consecutive terminals into quoted runs.
                let mut lit: Vec<u8> = Vec::new();
                let flush = |lit: &mut Vec<u8>, out: &mut String| {
                    if !lit.is_empty() {
                        let _ = write!(out, " \"{}\"", String::from_utf8_lossy(lit));
                        lit.clear();
                    }
                };
                for sym in rhs {
                    match sym {
                        Symbol::T(b) => lit.push(*b),
                        Symbol::N(n) => {
                            flush(&mut lit, &mut out);
                            let _ = write!(out, " {}", self.name(*n));
                        }
                    }
                }
                flush(&mut lit, &mut out);
                let t = self.taint(id);
                if !t.is_empty() {
                    let _ = write!(out, "   [{t}]");
                }
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for id in self.nonterminals() {
            if !self.productions(id).is_empty() {
                write!(f, "{}", self.display_from(id))?;
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        let b = g.add_nonterminal("B");
        g.add_literal_production(a, b"x");
        g.add_production(a, vec![Symbol::N(b), Symbol::T(b'y')]);
        g.add_literal_production(b, b"");
        assert_eq!(g.num_nonterminals(), 2);
        assert_eq!(g.num_productions(), 3);
        assert_eq!(g.name(a), "A");
    }

    #[test]
    fn productive_excludes_unproductive() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        let b = g.add_nonterminal("B"); // no productions: unproductive
        let c = g.add_nonterminal("C");
        g.add_production(a, vec![Symbol::N(b)]);
        g.add_literal_production(c, b"ok");
        let p = g.productive();
        assert!(!p[a.index()]);
        assert!(!p[b.index()]);
        assert!(p[c.index()]);
        assert!(g.is_empty_language(a));
        assert!(!g.is_empty_language(c));
    }

    #[test]
    fn recursive_grammar_is_productive() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        // A -> a A | ε
        g.add_production(a, vec![Symbol::T(b'a'), Symbol::N(a)]);
        g.add_production(a, vec![]);
        assert!(!g.is_empty_language(a));
    }

    #[test]
    fn reachable_follows_productions() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        let b = g.add_nonterminal("B");
        let c = g.add_nonterminal("C");
        g.add_production(a, vec![Symbol::N(b)]);
        g.add_literal_production(b, b"x");
        g.add_literal_production(c, b"y");
        let r = g.reachable(a);
        assert!(r[a.index()] && r[b.index()] && !r[c.index()]);
    }

    #[test]
    fn trimmed_drops_dead_rules() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        let dead = g.add_nonterminal("Dead");
        let unreach = g.add_nonterminal("Unreach");
        g.add_literal_production(a, b"x");
        g.add_production(a, vec![Symbol::N(dead)]);
        g.add_literal_production(unreach, b"y");
        let (t, root) = g.trimmed(a);
        assert_eq!(t.num_nonterminals(), 1);
        assert_eq!(t.num_productions(), 1);
        assert!(t.derives(root, b"x"));
    }

    #[test]
    fn taint_is_preserved_by_trim() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        let b = g.add_nonterminal("B");
        g.set_taint(b, Taint::DIRECT);
        g.add_production(a, vec![Symbol::N(b)]);
        g.add_literal_production(b, b"x");
        let (t, root) = g.trimmed(a);
        let tainted: Vec<_> = t.labeled_nonterminals();
        assert_eq!(tainted.len(), 1);
        assert_eq!(t.taint(tainted[0]), Taint::DIRECT);
        assert!(t.derives(root, b"x"));
    }

    #[test]
    fn display_shows_rules() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("query");
        let b = g.add_nonterminal("userid");
        g.set_taint(b, Taint::DIRECT);
        g.add_production(
            a,
            vec![Symbol::T(b'i'), Symbol::T(b'd'), Symbol::T(b'='), Symbol::N(b)],
        );
        g.add_literal_production(b, b"1");
        let s = g.display_from(a);
        assert!(s.contains("query -> \"id=\" userid"), "{s}");
        assert!(s.contains("[direct]"), "{s}");
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_renders_taint_highlighting() {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("userid");
        g.set_taint(x, Taint::DIRECT);
        g.add_literal_production(x, b"1");
        let y = g.add_nonterminal("row");
        g.set_taint(y, Taint::INDIRECT);
        g.add_literal_production(y, b"2");
        let root = g.add_nonterminal("query");
        g.add_production(root, vec![Symbol::N(x), Symbol::T(b'/'), Symbol::N(y)]);
        let dot = g.to_dot(root, "demo query");
        assert!(dot.starts_with("digraph demo_query {"));
        assert!(dot.contains("salmon"), "direct taint highlighted");
        assert!(dot.contains("khaki"), "indirect taint highlighted");
        assert!(dot.contains("userid"));
        assert_eq!(dot.matches(" -> ").count(), 2);
        assert!(dot.trim_end().ends_with('}'));
    }
}
