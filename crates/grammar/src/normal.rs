//! Binary normal form (the paper's `NORMALIZE`, Fig. 7).
//!
//! Rewrites every production to have a right-hand side of length at most
//! two by introducing chain nonterminals, preserving the language, the
//! taint labels, and the identity of the original nonterminals (ids
//! `0..n` of the input grammar map to the same ids of the output).

use crate::cfg::Cfg;
use crate::symbol::{NtId, Symbol};

/// Returns an equivalent grammar whose productions all have `|rhs| ≤ 2`.
///
/// Original nonterminal ids are preserved; helper nonterminals are
/// appended after them, named `<name>#<k>`, untainted (they are interior
/// chain links — taint lives on the original nonterminal, exactly as the
/// paper's Fig. 7 `NORMALIZE` leaves labels untouched).
pub fn normalize(g: &Cfg) -> Cfg {
    let mut out = Cfg::new();
    for id in g.nonterminals() {
        let n = out.add_nonterminal(g.name(id));
        out.set_taint(n, g.taint(id));
        debug_assert_eq!(n, id);
    }
    for (lhs, rhs) in g.iter_productions() {
        if rhs.len() <= 2 {
            out.add_production(lhs, rhs.to_vec());
            continue;
        }
        // lhs -> s0 H0, H0 -> s1 H1, ..., H(k) -> s(n-2) s(n-1)
        let mut current = lhs;
        for (k, sym) in rhs[..rhs.len() - 2].iter().enumerate() {
            let helper = out.add_nonterminal(format!("{}#{}", g.name(lhs), k));
            out.add_production(current, vec![*sym, Symbol::N(helper)]);
            current = helper;
        }
        out.add_production(current, vec![rhs[rhs.len() - 2], rhs[rhs.len() - 1]]);
    }
    out
}

/// Returns `true` if every production of `g` has `|rhs| ≤ 2`.
pub fn is_normalized(g: &Cfg) -> bool {
    g.iter_productions().all(|(_, rhs)| rhs.len() <= 2)
}

/// Checks whether `id` is an original nonterminal of the grammar that
/// was normalized into `g` (as opposed to an introduced helper).
pub fn is_original(original: &Cfg, id: NtId) -> bool {
    id.index() < original.num_nonterminals()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Symbol as S, Taint};

    #[test]
    fn short_rules_untouched() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'x'), S::N(a)]);
        g.add_production(a, vec![]);
        let n = normalize(&g);
        assert!(is_normalized(&n));
        assert_eq!(n.num_productions(), 2);
        assert_eq!(n.num_nonterminals(), 1);
    }

    #[test]
    fn long_rules_chained() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_literal_production(a, b"hello");
        let n = normalize(&g);
        assert!(is_normalized(&n));
        // "hello" (5 symbols) becomes 4 binary productions.
        assert_eq!(n.num_productions(), 4);
        assert!(n.derives(a, b"hello"));
        assert!(!n.derives(a, b"hell"));
    }

    #[test]
    fn language_preserved_with_recursion() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        // A -> 'x' A 'y' A 'z' | ε
        g.add_production(
            a,
            vec![S::T(b'x'), S::N(a), S::T(b'y'), S::N(a), S::T(b'z')],
        );
        g.add_production(a, vec![]);
        let n = normalize(&g);
        assert!(is_normalized(&n));
        for s in [&b""[..], b"xyz", b"xxyzyz", b"xyxyzz"] {
            assert_eq!(g.derives(a, s), n.derives(a, s), "{:?}", s);
        }
        assert!(!n.derives(a, b"xy"));
    }

    #[test]
    fn taint_preserved_on_originals_only() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.set_taint(a, Taint::DIRECT);
        g.add_literal_production(a, b"abcd");
        let n = normalize(&g);
        assert_eq!(n.taint(a), Taint::DIRECT);
        for id in n.nonterminals().skip(1) {
            assert!(n.taint(id).is_empty(), "helper {} tainted", n.name(id));
        }
    }
}
