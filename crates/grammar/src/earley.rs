//! Earley recognizer for byte-level membership tests.
//!
//! Used by tests, examples, and bug-report validation — not by the
//! analysis hot path. Handles empty productions via the
//! Aycock–Horspool nullable-advance rule.

use std::collections::HashSet;

use crate::budget::{Budget, BudgetExceeded};
use crate::cfg::Cfg;
use crate::symbol::{NtId, Symbol};

/// An Earley item: production `lhs → rhs`, dot position, origin set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    lhs: u32,
    prod: u32,
    dot: u32,
    origin: u32,
}

/// Computes the set of nullable nonterminals.
pub fn nullable_set(g: &Cfg) -> Vec<bool> {
    let n = g.num_nonterminals();
    let mut nullable = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for (lhs, rhs) in g.iter_productions() {
            if nullable[lhs.index()] {
                continue;
            }
            let ok = rhs.iter().all(|s| match s {
                Symbol::T(_) => false,
                Symbol::N(id) => nullable[id.index()],
            });
            if ok {
                nullable[lhs.index()] = true;
                changed = true;
            }
        }
    }
    nullable
}

/// Returns `true` if `root` derives exactly `input`.
pub fn recognize(g: &Cfg, root: NtId, input: &[u8]) -> bool {
    recognize_with(g, root, input, &Budget::unlimited())
        .expect("an unlimited budget cannot be exceeded")
}

/// Budgeted form of [`recognize`], charging one unit per processed
/// Earley item.
///
/// On exhaustion the membership question is unanswered; callers must
/// not conclude non-membership (the sound direction depends on the
/// check — see [`crate::budget`]).
pub fn recognize_with(
    g: &Cfg,
    root: NtId,
    input: &[u8],
    budget: &Budget,
) -> Result<bool, BudgetExceeded> {
    let nullable = nullable_set(g);
    let n = input.len();
    let mut sets: Vec<Vec<Item>> = vec![Vec::new(); n + 1];
    let mut seen: Vec<HashSet<Item>> = vec![HashSet::new(); n + 1];

    let push = |sets: &mut Vec<Vec<Item>>, seen: &mut Vec<HashSet<Item>>, pos: usize, it: Item| {
        if seen[pos].insert(it) {
            sets[pos].push(it);
        }
    };

    // Seed with root productions.
    for (pi, _) in g.productions(root).iter().enumerate() {
        push(
            &mut sets,
            &mut seen,
            0,
            Item {
                lhs: root.0,
                prod: pi as u32,
                dot: 0,
                origin: 0,
            },
        );
    }

    for pos in 0..=n {
        let mut idx = 0;
        while idx < sets[pos].len() {
            budget.charge(1)?;
            let it = sets[pos][idx];
            idx += 1;
            let rhs = &g.productions(NtId(it.lhs))[it.prod as usize];
            if (it.dot as usize) < rhs.len() {
                match rhs[it.dot as usize] {
                    Symbol::T(b) => {
                        // Scan.
                        if pos < n && input[pos] == b {
                            push(
                                &mut sets,
                                &mut seen,
                                pos + 1,
                                Item {
                                    dot: it.dot + 1,
                                    ..it
                                },
                            );
                        }
                    }
                    Symbol::N(x) => {
                        // Predict.
                        for (pi, _) in g.productions(x).iter().enumerate() {
                            push(
                                &mut sets,
                                &mut seen,
                                pos,
                                Item {
                                    lhs: x.0,
                                    prod: pi as u32,
                                    dot: 0,
                                    origin: pos as u32,
                                },
                            );
                        }
                        // Nullable advance (Aycock–Horspool).
                        if nullable[x.index()] {
                            push(
                                &mut sets,
                                &mut seen,
                                pos,
                                Item {
                                    dot: it.dot + 1,
                                    ..it
                                },
                            );
                        }
                    }
                }
            } else {
                // Complete.
                let origin = it.origin as usize;
                // Iterate over a snapshot; any new matching items in the
                // same set are handled by the agenda scan when origin==pos
                // combined with the nullable-advance rule.
                let snapshot: Vec<Item> = sets[origin].clone();
                for parent in snapshot {
                    let prhs = &g.productions(NtId(parent.lhs))[parent.prod as usize];
                    if (parent.dot as usize) < prhs.len()
                        && prhs[parent.dot as usize] == Symbol::N(NtId(it.lhs))
                    {
                        push(
                            &mut sets,
                            &mut seen,
                            pos,
                            Item {
                                dot: parent.dot + 1,
                                ..parent
                            },
                        );
                    }
                }
            }
        }
    }

    Ok(sets[n].iter().any(|it| {
        it.lhs == root.0
            && it.origin == 0
            && (it.dot as usize) == g.productions(NtId(it.lhs))[it.prod as usize].len()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol as S;

    #[test]
    fn balanced_parens() {
        // P -> ( P ) P | ε
        let mut g = Cfg::new();
        let p = g.add_nonterminal("P");
        g.add_production(p, vec![S::T(b'('), S::N(p), S::T(b')'), S::N(p)]);
        g.add_production(p, vec![]);
        assert!(recognize(&g, p, b""));
        assert!(recognize(&g, p, b"()"));
        assert!(recognize(&g, p, b"(())()"));
        assert!(!recognize(&g, p, b"(()"));
        assert!(!recognize(&g, p, b")("));
    }

    #[test]
    fn literal_chain() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_literal_production(a, b"hello");
        assert!(recognize(&g, a, b"hello"));
        assert!(!recognize(&g, a, b"hell"));
    }

    #[test]
    fn ambiguity_is_fine() {
        // E -> E + E | a
        let mut g = Cfg::new();
        let e = g.add_nonterminal("E");
        g.add_production(e, vec![S::N(e), S::T(b'+'), S::N(e)]);
        g.add_literal_production(e, b"a");
        assert!(recognize(&g, e, b"a+a+a"));
        assert!(!recognize(&g, e, b"a+"));
    }

    #[test]
    fn deeply_nullable() {
        // A -> B B; B -> C; C -> ε
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        let b = g.add_nonterminal("B");
        let c = g.add_nonterminal("C");
        g.add_production(a, vec![S::N(b), S::N(b)]);
        g.add_production(b, vec![S::N(c)]);
        g.add_production(c, vec![]);
        assert!(recognize(&g, a, b""));
        assert!(!recognize(&g, a, b"x"));
        let nl = nullable_set(&g);
        assert!(nl.iter().all(|&x| x));
    }

    #[test]
    fn nullable_prefix_completion() {
        // A -> N 'x'; N -> ε  (classic Earley nullable pitfall)
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        let nn = g.add_nonterminal("N");
        g.add_production(a, vec![S::N(nn), S::T(b'x')]);
        g.add_production(nn, vec![]);
        assert!(recognize(&g, a, b"x"));
        assert!(!recognize(&g, a, b""));
    }
}
