//! Regular over-approximation of context-free grammars.
//!
//! The paper uses regular approximation in two places: to cut cycles in
//! the extended grammar when a string operation is applied to its own
//! output (Minamide's treatment, §3.1.2), and as scaffolding for the
//! derivability fallback. We implement the classic *recursive
//! transition network flattening* (the superset approximation of
//! Nederhof / Mohri–Nederhof): every nonterminal gets an entry and an
//! exit state; occurrences of a nonterminal on a right-hand side become
//! epsilon jumps into its entry and back from its exit. Dropping the
//! implicit call-stack matching yields a regular language that always
//! contains `L(G)` — an over-approximation, hence sound for the
//! analysis.

use std::collections::HashMap;

use strtaint_automata::{ByteSet, Nfa};

use crate::cfg::Cfg;
use crate::symbol::{NtId, Symbol};

/// Builds an NFA whose language contains `L(g, root)`.
///
/// Exact when the grammar (restricted to symbols reachable from `root`)
/// has no recursion; otherwise a strict superset in general.
pub fn overapproximate(g: &Cfg, root: NtId) -> Nfa {
    let (t, new_root) = g.trimmed(root);
    let mut nfa = Nfa::default();
    // Entry/exit per nonterminal.
    let mut entry: HashMap<NtId, u32> = HashMap::new();
    let mut exit: HashMap<NtId, u32> = HashMap::new();
    for id in t.nonterminals() {
        entry.insert(id, nfa.add_state());
        exit.insert(id, nfa.add_state());
    }
    for (lhs, rhs) in t.iter_productions() {
        let mut cur = entry[&lhs];
        for sym in rhs {
            let next = nfa.add_state();
            match sym {
                Symbol::T(b) => nfa.add_arc(cur, ByteSet::singleton(*b), next),
                Symbol::N(y) => {
                    nfa.add_eps(cur, entry[y]);
                    nfa.add_eps(exit[y], next);
                }
            }
            cur = next;
        }
        nfa.add_eps(cur, exit[&lhs]);
    }
    nfa.set_start(entry[&new_root]);
    nfa.set_accepting(exit[&new_root], true);
    nfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol as S;
    use strtaint_automata::Dfa;

    #[test]
    fn exact_for_nonrecursive() {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        let b = g.add_nonterminal("B");
        g.add_production(a, vec![S::T(b'x'), S::N(b)]);
        g.add_literal_production(b, b"y");
        g.add_literal_production(b, b"z");
        let nfa = overapproximate(&g, a);
        assert!(nfa.accepts(b"xy"));
        assert!(nfa.accepts(b"xz"));
        assert!(!nfa.accepts(b"x"));
        assert!(!nfa.accepts(b"xyz"));
    }

    #[test]
    fn superset_for_recursive() {
        // A -> '(' A ')' | ε — approximation is ('('|')')-balanced-ish:
        // must contain the language, may contain more.
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'('), S::N(a), S::T(b')')]);
        g.add_production(a, vec![]);
        let nfa = overapproximate(&g, a);
        for s in [&b""[..], b"()", b"(())", b"((()))"] {
            assert!(nfa.accepts(s), "{:?} must be contained", s);
        }
        // The classic unbalanced witness the approximation admits:
        assert!(nfa.accepts(b"(("), "superset approximation expected");
    }

    #[test]
    fn right_recursion_is_exact_enough() {
        // A -> 'x' A | 'y'
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'x'), S::N(a)]);
        g.add_literal_production(a, b"y");
        let nfa = overapproximate(&g, a);
        let d = Dfa::from_nfa(&nfa).minimize();
        assert!(d.accepts(b"y"));
        assert!(d.accepts(b"xxxy"));
        assert!(!d.accepts(b"x"));
        assert!(!d.accepts(b"yx"));
    }

    #[test]
    fn containment_property() {
        // L(G) ⊆ L(approx) checked via sampling.
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'a'), S::N(a), S::T(b'b'), S::N(a)]);
        g.add_production(a, vec![]);
        let nfa = overapproximate(&g, a);
        for s in crate::lang::sample_strings(&g, a, 8, 50) {
            assert!(nfa.accepts(&s), "{:?} missing from approximation", s);
        }
    }
}
