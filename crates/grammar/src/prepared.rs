//! The prepared intersection engine: pay grammar setup once, answer
//! many CFG∩FSA queries.
//!
//! The policy-conformance phase (paper §3.2) asks a *pile* of emptiness
//! questions about the same hotspot grammar: C1–C5 each intersect
//! `L(G, root)` with a different fixed DFA, and a witness query follows
//! any nonempty answer. [`crate::intersect`] re-trims and re-normalizes
//! the whole grammar on every call; at hotspot scale that setup
//! dominates. This module splits the work along its natural seam:
//!
//! - [`PreparedGrammar`] trims + binary-normalizes `(cfg, root)` once
//!   and precomputes the production/occurrence indexes the Bar-Hillel
//!   worklist needs. It is immutable and `Send + Sync`, so one
//!   preparation serves every check of a hotspot and every hotspot
//!   sharing a root — across threads ([`PreparedCache`]).
//! - [`PreparedGrammar::query`] runs the fixpoint against a
//!   [`ClassDfa`] (byte-equivalence-class compressed, so step tables
//!   are indexed per class, not per raw byte) and returns a resumable
//!   [`Intersection`]. In [`QueryMode::EarlyExit`] the worklist stops
//!   the moment an accepting root triple is realized — emptiness is
//!   decided without draining the remaining frontier.
//! - [`Intersection::grammar`]/[`Intersection::witness`] *resume* the
//!   same fixpoint to completion and reconstruct the intersection
//!   grammar, so a witness after an emptiness query costs only the
//!   leftover frontier instead of a second full fixpoint. Resumption is
//!   sound because the realized set is monotone: every triple already
//!   discovered stays realized, and draining the worklist discovers
//!   exactly the triples the from-scratch fixpoint would.
//!
//! Realized end-state sets are kept **sorted** and probed with
//! `binary_search` (debug assertions check orderedness), replacing the
//! linear `contains` scans of the naive engine. Engine work is observable
//! through [`EngineStats`](crate::stats::EngineStats), which reports
//! surface on `HotspotReport`/`AppReport`.
//!
//! The naive path in [`crate::intersect`] is retained as the reference
//! implementation; equivalence is property-tested in
//! `crates/grammar/tests/engine.rs`.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

use strtaint_automata::ClassDfa;

use crate::budget::{Budget, BudgetExceeded};
use crate::cfg::Cfg;
use crate::normal::normalize;
use crate::symbol::{NtId, Symbol, Taint};

/// A binary-normalized production, pre-classified by shape.
#[derive(Clone, Copy)]
enum P {
    Eps,
    T(u8),
    N(NtId),
    TT(u8, u8),
    TN(u8, NtId),
    NT(NtId, u8),
    NN(NtId, NtId),
}

/// A grammar trimmed + binary-normalized once, ready to intersect with
/// any number of DFAs.
///
/// Construction does all the per-grammar work of
/// [`crate::intersect::intersect`] — trimming to the reachable,
/// productive part, `NORMALIZE` (paper Fig. 7), production shape
/// classification and occurrence indexing — so each
/// [`query`](Self::query) only pays for the fixpoint itself.
pub struct PreparedGrammar {
    /// Normalized (trimmed) grammar; taint labels preserved.
    norm: Cfg,
    norm_root: NtId,
    /// Name and taint of the *original* root, for result-grammar
    /// reconstruction parity with the naive engine.
    root_name: String,
    root_taint: Taint,
    prods: Vec<(NtId, P)>,
    /// occ_unit[x] = productions `lhs -> x`.
    occ_unit: Vec<Vec<usize>>,
    /// occ_left[x] = productions with `x` in the left slot (NT/NN).
    occ_left: Vec<Vec<usize>>,
    /// occ_right[x] = productions with `x` in the right slot (TN/NN).
    occ_right: Vec<Vec<usize>>,
    /// Sorted distinct terminal bytes the grammar mentions.
    bytes: Vec<u8>,
    /// Structural fingerprint of `(norm_root, prods)` — see
    /// [`Self::fingerprint`].
    fingerprint: (u64, u64),
    /// Whether `L(root)` is empty, read off the trimmed grammar at
    /// construction — see [`Self::is_empty_language`].
    empty: bool,
}

/// 64-bit FNV-1a over a byte stream, parameterized by offset basis so
/// two independent streams give a 128-bit combined fingerprint.
struct Fnv(u64);

impl Fnv {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new(basis: u64) -> Fnv {
        Fnv(basis)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
}

impl fmt::Debug for PreparedGrammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedGrammar")
            .field("root", &self.root_name)
            .field("nonterminals", &self.norm.num_nonterminals())
            .field("productions", &self.prods.len())
            .field("distinct_bytes", &self.bytes.len())
            .finish()
    }
}

impl PreparedGrammar {
    /// Trims and normalizes `(g, root)` and builds the worklist indexes.
    pub fn new(g: &Cfg, root: NtId) -> Self {
        let _span = strtaint_obs::Span::enter_with("prepare", || g.name(root).to_owned());
        let (trimmed, troot) = g.trimmed(root);
        // Trimming keeps a production only when every RHS symbol is
        // productive, so the root retains a production iff it derives
        // some string: emptiness of L(root) is free to read off here.
        let empty = trimmed.productions(troot).is_empty();
        let norm = normalize(&trimmed);
        let nv = norm.num_nonterminals();

        let mut prods: Vec<(NtId, P)> = Vec::new();
        for (lhs, rhs) in norm.iter_productions() {
            let p = match rhs {
                [] => P::Eps,
                [Symbol::T(a)] => P::T(*a),
                [Symbol::N(x)] => P::N(*x),
                [Symbol::T(a), Symbol::T(b)] => P::TT(*a, *b),
                [Symbol::T(a), Symbol::N(x)] => P::TN(*a, *x),
                [Symbol::N(x), Symbol::T(b)] => P::NT(*x, *b),
                [Symbol::N(x), Symbol::N(y)] => P::NN(*x, *y),
                _ => unreachable!("grammar is normalized"),
            };
            prods.push((lhs, p));
        }

        let mut occ_unit: Vec<Vec<usize>> = vec![Vec::new(); nv];
        let mut occ_left: Vec<Vec<usize>> = vec![Vec::new(); nv];
        let mut occ_right: Vec<Vec<usize>> = vec![Vec::new(); nv];
        let mut bytes: Vec<u8> = Vec::new();
        for (pid, (_, p)) in prods.iter().enumerate() {
            match p {
                P::N(x) => occ_unit[x.index()].push(pid),
                P::TN(a, x) => {
                    bytes.push(*a);
                    occ_right[x.index()].push(pid);
                }
                P::NT(x, b) => {
                    bytes.push(*b);
                    occ_left[x.index()].push(pid);
                }
                P::NN(x, y) => {
                    occ_left[x.index()].push(pid);
                    occ_right[y.index()].push(pid);
                }
                P::T(a) => bytes.push(*a),
                P::TT(a, b) => {
                    bytes.push(*a);
                    bytes.push(*b);
                }
                P::Eps => {}
            }
        }
        bytes.sort_unstable();
        bytes.dedup();

        // Structural fingerprint over the exact normalized production
        // sequence. Names and taints are excluded on purpose: they
        // affect neither query verdicts nor (canonical) witness bytes,
        // so structurally identical grammars from different pages hash
        // equal — which is what makes cross-page verdict memoization
        // hit. Trimming renumbers nonterminals in root-discovery order,
        // so identical shapes produce identical id sequences here.
        let mut h1 = Fnv::new(0xcbf2_9ce4_8422_2325);
        let mut h2 = Fnv::new(0x6c62_272e_07bb_0142);
        for h in [&mut h1, &mut h2] {
            h.u32(troot.0);
            h.u32(nv as u32);
            for &(lhs, p) in &prods {
                h.u32(lhs.0);
                match p {
                    P::Eps => h.byte(0),
                    P::T(a) => {
                        h.byte(1);
                        h.byte(a);
                    }
                    P::N(x) => {
                        h.byte(2);
                        h.u32(x.0);
                    }
                    P::TT(a, b) => {
                        h.byte(3);
                        h.byte(a);
                        h.byte(b);
                    }
                    P::TN(a, x) => {
                        h.byte(4);
                        h.byte(a);
                        h.u32(x.0);
                    }
                    P::NT(x, b) => {
                        h.byte(5);
                        h.u32(x.0);
                        h.byte(b);
                    }
                    P::NN(x, y) => {
                        h.byte(6);
                        h.u32(x.0);
                        h.u32(y.0);
                    }
                }
            }
        }

        PreparedGrammar {
            norm,
            norm_root: troot,
            root_name: g.name(root).to_owned(),
            root_taint: g.taint(root),
            prods,
            occ_unit,
            occ_left,
            occ_right,
            bytes,
            fingerprint: (h1.0, h2.0),
            empty,
        }
    }

    /// Number of nonterminals in the normalized grammar.
    pub fn num_nonterminals(&self) -> usize {
        self.norm.num_nonterminals()
    }

    /// Whether the prepared language is empty — equivalent to
    /// `Cfg::is_empty_language` on the original `(g, root)`, but O(1):
    /// trimming already ran the productivity fixpoint, so checkers that
    /// hold a preparation need not re-walk the raw grammar.
    pub fn is_empty_language(&self) -> bool {
        self.empty
    }

    /// Structural fingerprint of the normalized grammar (128 bits as a
    /// pair of independent 64-bit FNV-1a hashes over the production
    /// sequence). Equal fingerprints mean — up to hash collision —
    /// byte-identical `(norm_root, prods)` sequences, so two prepared
    /// grammars with equal fingerprints run any query with the same
    /// verdict, the same charge schedule, and the same canonical
    /// witness: exactly the contract memoized verdict replay needs.
    pub fn fingerprint(&self) -> (u64, u64) {
        self.fingerprint
    }

    /// The sorted distinct terminal bytes the grammar can emit. Every
    /// string of the language is a word over this alphabet — the fact
    /// the checker's attack-fragment prefilter exploits to prove
    /// non-membership without an intersection.
    pub fn alphabet(&self) -> &[u8] {
        &self.bytes
    }

    /// Runs the Bar-Hillel worklist fixpoint against `dfa`.
    ///
    /// Charges `budget` one unit per discovery attempt and per worklist
    /// pop (same schedule as the naive engine) and caps the realized
    /// triple count via [`Budget::check_grammar_size`]. In
    /// [`QueryMode::EarlyExit`] the loop suspends as soon as an
    /// accepting root triple is realized; the returned [`Intersection`]
    /// answers emptiness immediately and can be
    /// [resumed](Intersection::complete) for grammar reconstruction.
    pub fn query<'g, 'd>(
        &'g self,
        dfa: &'d ClassDfa,
        budget: &Budget,
        mode: QueryMode,
    ) -> Result<Intersection<'g, 'd>, BudgetExceeded> {
        let _span = strtaint_obs::Span::enter_with("intersect", || self.root_name.clone());
        let q = dfa.num_states() as u32;
        let nc = dfa.num_classes() as usize;

        // Per-class step tables, filled only for the classes the
        // grammar's terminals actually inhabit.
        let mut forward: Vec<Vec<u32>> = vec![Vec::new(); nc];
        let mut reverse: Vec<Vec<Vec<u32>>> = vec![Vec::new(); nc];
        for &b in &self.bytes {
            let c = dfa.class_of(b) as usize;
            if !forward[c].is_empty() {
                continue;
            }
            let fwd: Vec<u32> = (0..q).map(|i| dfa.step_class(i, c as u16)).collect();
            let mut rev: Vec<Vec<u32>> = vec![Vec::new(); q as usize];
            for (i, &j) in fwd.iter().enumerate() {
                rev[j as usize].push(i as u32);
            }
            forward[c] = fwd;
            reverse[c] = rev;
        }

        let mut ix = Intersection {
            prep: self,
            dfa,
            forward,
            reverse,
            by_start: vec![HashMap::new(); self.norm.num_nonterminals()],
            by_end: vec![HashMap::new(); self.norm.num_nonterminals()],
            worklist: Vec::new(),
            triples: 0,
            charged: 0,
            completions: 0,
            hit: false,
            exited_early: false,
            seeded: false,
        };
        ix.run(budget, mode)?;
        Ok(ix)
    }
}

/// How much of the fixpoint a [`PreparedGrammar::query`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Suspend as soon as an accepting root triple is realized.
    /// Emptiness is already decided; resume with
    /// [`Intersection::complete`] before reconstruction.
    EarlyExit,
    /// Drain the worklist to the full fixpoint.
    Full,
}

/// A (possibly suspended) intersection fixpoint over a
/// [`PreparedGrammar`] and a [`ClassDfa`].
pub struct Intersection<'g, 'd> {
    prep: &'g PreparedGrammar,
    dfa: &'d ClassDfa,
    /// forward[class] = successor state per start state (empty = class
    /// unused by the grammar).
    forward: Vec<Vec<u32>>,
    /// reverse[class][end] = start states stepping to `end`.
    reverse: Vec<Vec<Vec<u32>>>,
    /// by_start[X][i] = **sorted** end states j with X_{ij} realized.
    by_start: Vec<HashMap<u32, Vec<u32>>>,
    /// by_end[X][j] = **sorted** start states i with X_{ij} realized.
    by_end: Vec<HashMap<u32, Vec<u32>>>,
    worklist: Vec<(NtId, u32, u32)>,
    triples: usize,
    /// Fuel units successfully charged to the budget by this
    /// intersection so far (query + resumption + reconstruction). The
    /// query cache records this so a replayed verdict charges exactly
    /// what recomputing it would.
    charged: u64,
    /// Times a suspended early-exit run was actually resumed
    /// ([`Self::complete`] with pending work). Lazy witness extraction
    /// promises this stays zero for empty intersections.
    completions: u64,
    /// Latched when an accepting root triple is realized.
    hit: bool,
    exited_early: bool,
    seeded: bool,
}

impl fmt::Debug for Intersection<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Intersection")
            .field("triples", &self.triples)
            .field("hit", &self.hit)
            .field("exited_early", &self.exited_early)
            .field("pending", &self.worklist.len())
            .finish()
    }
}

impl<'g, 'd> Intersection<'g, 'd> {
    fn realized(&self, x: NtId, i: u32, j: u32) -> bool {
        self.by_start[x.index()]
            .get(&i)
            .is_some_and(|v| v.binary_search(&j).is_ok())
    }

    /// Records `X_{ij}` if new. Returns `Err` on budget exhaustion.
    fn discover(&mut self, budget: &Budget, x: NtId, i: u32, j: u32) -> Result<(), BudgetExceeded> {
        budget.charge(1)?;
        self.charged += 1;
        let ends = self.by_start[x.index()].entry(i).or_default();
        debug_assert!(ends.windows(2).all(|w| w[0] < w[1]), "ends not sorted");
        if let Err(pos) = ends.binary_search(&j) {
            ends.insert(pos, j);
            let starts = self.by_end[x.index()].entry(j).or_default();
            debug_assert!(starts.windows(2).all(|w| w[0] < w[1]), "starts not sorted");
            if let Err(spos) = starts.binary_search(&i) {
                starts.insert(spos, i);
            }
            self.triples += 1;
            budget.check_grammar_size(self.triples)?;
            self.worklist.push((x, i, j));
            if x == self.prep.norm_root && i == self.dfa.start() && self.dfa.is_accepting(j) {
                self.hit = true;
            }
        }
        Ok(())
    }

    /// Seeds (first call only) and drains the worklist; in
    /// [`QueryMode::EarlyExit`], suspends once [`Self::hit`] latches.
    fn run(&mut self, budget: &Budget, mode: QueryMode) -> Result<(), BudgetExceeded> {
        if !self.seeded {
            self.seeded = true;
            for pid in 0..self.prep.prods.len() {
                let (lhs, p) = self.prep.prods[pid];
                let q = self.dfa.num_states() as u32;
                match p {
                    P::Eps => {
                        for i in 0..q {
                            self.discover(budget, lhs, i, i)?;
                        }
                    }
                    P::T(a) => {
                        let c = self.dfa.class_of(a) as usize;
                        for i in 0..q {
                            let j = self.forward[c][i as usize];
                            self.discover(budget, lhs, i, j)?;
                        }
                    }
                    P::TT(a, b) => {
                        let ca = self.dfa.class_of(a) as usize;
                        let cb = self.dfa.class_of(b) as usize;
                        for i in 0..q {
                            let j = self.forward[cb][self.forward[ca][i as usize] as usize];
                            self.discover(budget, lhs, i, j)?;
                        }
                    }
                    _ => {}
                }
            }
        }
        while let Some((x, i, j)) = {
            if matches!(mode, QueryMode::EarlyExit) && self.hit {
                self.exited_early = !self.worklist.is_empty();
                None
            } else {
                self.worklist.pop()
            }
        } {
            budget.charge(1)?;
            self.charged += 1;
            for oi in 0..self.prep.occ_unit[x.index()].len() {
                let pid = self.prep.occ_unit[x.index()][oi];
                let (lhs, _) = self.prep.prods[pid];
                self.discover(budget, lhs, i, j)?;
            }
            for oi in 0..self.prep.occ_right[x.index()].len() {
                let pid = self.prep.occ_right[x.index()][oi];
                let (lhs, p) = self.prep.prods[pid];
                match p {
                    P::TN(a, _) => {
                        let c = self.dfa.class_of(a) as usize;
                        let starts = self.reverse[c][i as usize].clone();
                        for i0 in starts {
                            self.discover(budget, lhs, i0, j)?;
                        }
                    }
                    P::NN(left, _) => {
                        // x is in the right slot; join with realized
                        // left triples ending at i.
                        if let Some(starts) = self.by_end[left.index()].get(&i) {
                            for i0 in starts.clone() {
                                self.discover(budget, lhs, i0, j)?;
                            }
                        }
                    }
                    _ => unreachable!("occ_right holds TN/NN only"),
                }
            }
            for oi in 0..self.prep.occ_left[x.index()].len() {
                let pid = self.prep.occ_left[x.index()][oi];
                let (lhs, p) = self.prep.prods[pid];
                match p {
                    P::NT(_, b) => {
                        let c = self.dfa.class_of(b) as usize;
                        let jb = self.forward[c][j as usize];
                        self.discover(budget, lhs, i, jb)?;
                    }
                    P::NN(_, right) => {
                        if let Some(ends) = self.by_start[right.index()].get(&j) {
                            for k in ends.clone() {
                                self.discover(budget, lhs, i, k)?;
                            }
                        }
                    }
                    _ => unreachable!("occ_left holds NT/NN only"),
                }
            }
        }
        Ok(())
    }

    /// `true` if no accepting root triple is realized.
    ///
    /// Valid immediately after [`PreparedGrammar::query`] in either
    /// mode: the `hit` latch is monotone, and a suspended early-exit
    /// run only suspends *because* it latched.
    pub fn is_empty(&self) -> bool {
        !self.hit
    }

    /// Number of realized triples so far.
    pub fn triples(&self) -> usize {
        self.triples
    }

    /// `true` if the query suspended before draining its worklist.
    pub fn exited_early(&self) -> bool {
        self.exited_early
    }

    /// Fuel units this intersection has successfully charged so far.
    pub fn charged(&self) -> u64 {
        self.charged
    }

    /// Times a suspended run was resumed to completion — zero for any
    /// intersection whose worklist was already drained (in particular,
    /// every *empty* query result).
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Resumes the fixpoint to completion (no-op if already complete).
    pub fn complete(&mut self, budget: &Budget) -> Result<(), BudgetExceeded> {
        if self.exited_early {
            self.completions += 1;
        }
        self.run(budget, QueryMode::Full)?;
        self.exited_early = false;
        Ok(())
    }

    /// Completes the fixpoint and reconstructs the intersection grammar
    /// with taint labels propagated (paper Fig. 7 `TAINTIF`), exactly
    /// as [`crate::intersect::intersect_with`] would.
    pub fn grammar(&mut self, budget: &Budget) -> Result<(Cfg, NtId), BudgetExceeded> {
        self.complete(budget)?;
        let norm = &self.prep.norm;
        let dfa = self.dfa;

        let mut out = Cfg::new();
        let out_root = out.add_nonterminal(format!("{}∩", self.prep.root_name));
        out.set_taint(out_root, self.prep.root_taint);

        // Realized-triple iteration order: `by_start` is a HashMap, so
        // its raw order varies per instance. Reconstruction walks the
        // start states sorted instead — the output grammar (nonterminal
        // numbering, production order) is then a pure function of the
        // realized set, identical across engines, runs, and threads.
        let sorted_starts = |x: NtId| -> Vec<u32> {
            let mut starts: Vec<u32> = self.by_start[x.index()].keys().copied().collect();
            starts.sort_unstable();
            starts
        };

        // Create result nonterminals for realized triples.
        let mut map: HashMap<(u32, u32, u32), NtId> = HashMap::new();
        for x in norm.nonterminals() {
            for i in sorted_starts(x) {
                for &j in &self.by_start[x.index()][&i] {
                    let id = out.add_nonterminal(norm.name(x));
                    out.set_taint(id, norm.taint(x)); // TAINTIF
                    map.insert((x.0, i, j), id);
                }
            }
        }

        // Productions.
        let mut charged_here = 0u64;
        for x in norm.nonterminals() {
            for i in sorted_starts(x) {
                for &j in &self.by_start[x.index()][&i] {
                    budget.charge(1)?;
                    charged_here += 1;
                    let lhs = map[&(x.0, i, j)];
                    for rhs in norm.productions(x) {
                        match rhs.as_slice() {
                            [] => {
                                if i == j {
                                    out.add_production(lhs, vec![]);
                                }
                            }
                            [Symbol::T(a)] => {
                                if dfa.step_byte(i, *a) == j {
                                    out.add_production(lhs, vec![Symbol::T(*a)]);
                                }
                            }
                            [Symbol::N(y)] => {
                                if let Some(&sub) = map.get(&(y.0, i, j)) {
                                    out.add_production(lhs, vec![Symbol::N(sub)]);
                                }
                            }
                            [Symbol::T(a), Symbol::T(b)] => {
                                if dfa.step_byte(dfa.step_byte(i, *a), *b) == j {
                                    out.add_production(lhs, vec![Symbol::T(*a), Symbol::T(*b)]);
                                }
                            }
                            [Symbol::T(a), Symbol::N(y)] => {
                                let m = dfa.step_byte(i, *a);
                                if let Some(&sub) = map.get(&(y.0, m, j)) {
                                    out.add_production(lhs, vec![Symbol::T(*a), Symbol::N(sub)]);
                                }
                            }
                            [Symbol::N(y), Symbol::T(b)] => {
                                // Any mid m with Y_{im} realized and
                                // step(m,b)=j.
                                if let Some(mids) = self.by_start[y.index()].get(&i) {
                                    for &m in mids {
                                        if dfa.step_byte(m, *b) == j {
                                            let sub = map[&(y.0, i, m)];
                                            out.add_production(
                                                lhs,
                                                vec![Symbol::N(sub), Symbol::T(*b)],
                                            );
                                        }
                                    }
                                }
                            }
                            [Symbol::N(y), Symbol::N(z)] => {
                                if let Some(mids) = self.by_start[y.index()].get(&i) {
                                    for &m in mids {
                                        if self.realized(*z, m, j) {
                                            let sy = map[&(y.0, i, m)];
                                            let sz = map[&(z.0, m, j)];
                                            out.add_production(
                                                lhs,
                                                vec![Symbol::N(sy), Symbol::N(sz)],
                                            );
                                        }
                                    }
                                }
                            }
                            _ => unreachable!("grammar is normalized"),
                        }
                    }
                }
            }
        }

        // Start productions: root from DFA start to each accepting state.
        let q0 = dfa.start();
        for qf in 0..dfa.num_states() as u32 {
            if dfa.is_accepting(qf) {
                if let Some(&sub) = map.get(&(self.prep.norm_root.0, q0, qf)) {
                    out.add_production(out_root, vec![Symbol::N(sub)]);
                }
            }
        }
        self.charged += charged_here;
        Ok((out, out_root))
    }

    /// Completes the fixpoint and extracts a shortest witness string of
    /// the intersection, or `None` if it is empty.
    pub fn witness(&mut self, budget: &Budget) -> Result<Option<Vec<u8>>, BudgetExceeded> {
        if self.is_empty() && self.worklist.is_empty() {
            return Ok(None);
        }
        let _span = strtaint_obs::Span::enter_with("witness", || self.prep.root_name.clone());
        self.complete(budget)?;
        if self.is_empty() {
            return Ok(None);
        }
        let (out, root) = self.grammar(budget)?;
        Ok(crate::lang::shortest_string(&out, root))
    }
}

/// A thread-safe cache of [`PreparedGrammar`]s keyed by root, scoped to
/// one immutable [`Cfg`].
///
/// Hotspots on the same page frequently share a root (the same `$query`
/// variable flowing into several sinks), and every C1–C5 check of one
/// hotspot shares it by construction. **The cache is keyed by [`NtId`]
/// only** — it must never be used across different `Cfg`s (e.g. the
/// fresh marked grammars built per check), whose ids overlap.
#[derive(Debug, Default)]
pub struct PreparedCache {
    map: RwLock<HashMap<u32, Arc<PreparedGrammar>>>,
}

impl PreparedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the prepared grammar for `(g, root)`, preparing it on
    /// first use. The boolean is `true` on a cache hit.
    pub fn prepared(&self, g: &Cfg, root: NtId) -> (Arc<PreparedGrammar>, bool) {
        // A poisoned lock only means another worker panicked mid-insert;
        // the map itself is still a valid cache, so keep using it.
        {
            let map = self.map.read().unwrap_or_else(|e| e.into_inner());
            if let Some(p) = map.get(&root.0) {
                return (Arc::clone(p), true);
            }
        }
        let prepared = Arc::new(PreparedGrammar::new(g, root));
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        // Another worker may have raced us here; keep the first entry so
        // every caller shares one preparation.
        let entry = map
            .entry(root.0)
            .or_insert_with(|| Arc::clone(&prepared));
        (Arc::clone(entry), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::{intersect, is_intersection_empty};
    use crate::lang::shortest_string;
    use crate::symbol::Symbol as S;
    use strtaint_automata::{Dfa, Regex};

    fn dfa(pattern: &str) -> Dfa {
        Regex::new(pattern).unwrap().match_dfa()
    }

    fn paren_grammar() -> (Cfg, NtId) {
        let mut g = Cfg::new();
        let a = g.add_nonterminal("A");
        g.add_production(a, vec![S::T(b'('), S::N(a), S::T(b')')]);
        g.add_literal_production(a, b"x");
        (g, a)
    }

    #[test]
    fn agrees_with_naive_on_emptiness_and_witness() {
        let (g, a) = paren_grammar();
        let prep = PreparedGrammar::new(&g, a);
        let unlimited = Budget::unlimited();
        for pattern in ["^\\(\\(.*$", "^[0-9]+$", "^x$", ".*", "^\\)"] {
            let d = dfa(pattern);
            let cd = ClassDfa::new(&d);
            let mut ix = prep.query(&cd, &unlimited, QueryMode::EarlyExit).unwrap();
            assert_eq!(
                ix.is_empty(),
                is_intersection_empty(&g, a, &d),
                "emptiness disagrees on {pattern}"
            );
            let witness = ix.witness(&unlimited).unwrap();
            let (out, root) = intersect(&g, a, &d);
            let naive = shortest_string(&out, root);
            match (&witness, &naive) {
                (Some(w), Some(n)) => {
                    // Both engines produce the canonical (length,
                    // lexicographic)-minimal witness, so the bytes
                    // match exactly — the query cache replays them.
                    assert_eq!(w, n, "witness bytes differ on {pattern}");
                    assert!(out.derives(root, w), "witness not in naive language");
                }
                (None, None) => {}
                _ => panic!("witness presence disagrees on {pattern}: {witness:?} vs {naive:?}"),
            }
        }
    }

    #[test]
    fn early_exit_suspends_and_resumes() {
        let (g, a) = paren_grammar();
        let prep = PreparedGrammar::new(&g, a);
        let unlimited = Budget::unlimited();
        let cd = ClassDfa::new(&Dfa::any_string());
        let mut ix = prep.query(&cd, &unlimited, QueryMode::EarlyExit).unwrap();
        assert!(!ix.is_empty());
        let suspended_triples = ix.triples();
        ix.complete(&unlimited).unwrap();
        assert!(!ix.exited_early());
        assert!(ix.triples() >= suspended_triples);
        // Full-mode query from scratch realizes the same fixpoint.
        let full = prep.query(&cd, &unlimited, QueryMode::Full).unwrap();
        assert_eq!(ix.triples(), full.triples());
    }

    #[test]
    fn prepared_reuse_across_queries_preserves_results() {
        let (g, a) = paren_grammar();
        let prep = PreparedGrammar::new(&g, a);
        let unlimited = Budget::unlimited();
        // Same prepared grammar, many DFAs, interleaved — no state leaks.
        let deep = ClassDfa::new(&dfa("^\\(\\(.*$"));
        let digits = ClassDfa::new(&dfa("^[0-9]+$"));
        for _ in 0..3 {
            assert!(!prep.query(&deep, &unlimited, QueryMode::EarlyExit).unwrap().is_empty());
            assert!(prep.query(&digits, &unlimited, QueryMode::EarlyExit).unwrap().is_empty());
        }
    }

    #[test]
    fn budget_trips_in_prepared_engine() {
        use crate::budget::Resource;
        let (g, a) = paren_grammar();
        let prep = PreparedGrammar::new(&g, a);
        let cd = ClassDfa::new(&dfa("^\\(\\(.*$"));
        let tiny = Budget::new(None, Some(3), None);
        let err = prep.query(&cd, &tiny, QueryMode::Full).unwrap_err();
        assert_eq!(err.resource, Resource::Fuel);
        let capped = Budget::new(None, None, Some(2));
        let err = prep.query(&cd, &capped, QueryMode::Full).unwrap_err();
        assert_eq!(err.resource, Resource::GrammarSize);
    }

    #[test]
    fn cache_shares_preparation_per_root() {
        let (g, a) = paren_grammar();
        let cache = PreparedCache::new();
        let (p1, hit1) = cache.prepared(&g, a);
        let (p2, hit2) = cache.prepared(&g, a);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn taint_propagates_through_prepared_reconstruction() {
        use crate::symbol::Taint;
        let mut g = Cfg::new();
        let userid = g.add_nonterminal("userid");
        g.set_taint(userid, Taint::DIRECT);
        g.add_literal_production(userid, b"1");
        g.add_literal_production(userid, b"1'");
        let query = g.add_nonterminal("query");
        let mut rhs = g.literal_symbols(b"id='");
        rhs.push(S::N(userid));
        rhs.push(S::T(b'\''));
        g.add_production(query, rhs);

        let prep = PreparedGrammar::new(&g, query);
        let unlimited = Budget::unlimited();
        let cd = ClassDfa::new(&dfa("^id=.*$"));
        let mut ix = prep.query(&cd, &unlimited, QueryMode::Full).unwrap();
        let (out, root) = ix.grammar(&unlimited).unwrap();
        assert!(out.derives(root, b"id='1'"));
        assert!(out
            .labeled_nonterminals()
            .iter()
            .any(|&id| out.taint(id).is_direct() && out.name(id) == "userid"));
    }
}
