//! Abstraction of labeled subgrammars out of the query grammar
//! (paper §3.2: "abstracting the subgrammars that represent untrusted
//! substrings out of the larger CFG, determining the syntactic
//! contexts of those subgrammars").

use std::collections::HashMap;

use strtaint_grammar::{Cfg, NtId, Symbol};
use strtaint_sql::VAR_MARKER;

/// Byte used to neutralize stray [`VAR_MARKER`] terminals coming from
/// *other* (Σ*-like) subgrammars when one nonterminal is marked; the
/// substitution is parity-neutral for the quote-tracking automata.
const MARKER_SUBSTITUTE: u8 = 0x1b;

/// Returns the labeled nonterminals reachable from `root` that are
/// *maximal*: not properly contained in another labeled subgrammar.
///
/// Checking only maximal labeled nonterminals is sound: an inner
/// labeled nonterminal derives substrings of its enclosing labeled
/// nonterminal, so the enclosing check subsumes it.
///
/// Runs in time linear in the subgraph reachable from `root` (one
/// Tarjan SCC pass plus a multi-source BFS on the condensation) —
/// transducer images can leave hundreds of labeled copies, so a
/// per-label reachability walk would dominate checking time.
pub fn maximal_labeled(cfg: &Cfg, root: NtId) -> Vec<NtId> {
    let nodes = cfg.reachable_list(root);
    let labeled: Vec<NtId> = nodes
        .iter()
        .copied()
        .filter(|&id| !cfg.taint(id).is_empty())
        .collect();
    if labeled.len() <= 1 {
        return labeled;
    }
    // SCC condensation of the reachable subgraph.
    let index: HashMap<NtId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let succ: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&n| {
            let mut v: Vec<usize> = cfg
                .productions(n)
                .iter()
                .flat_map(|rhs| rhs.iter())
                .filter_map(|s| match s {
                    Symbol::N(t) => index.get(t).copied(),
                    Symbol::T(_) => None,
                })
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let scc = scc_ids(&succ);
    let num_sccs = scc.iter().copied().max().map(|m| m + 1).unwrap_or(0);

    // Representative (smallest-id) labeled NT per SCC, if any.
    let mut scc_label_rep: Vec<Option<NtId>> = vec![None; num_sccs];
    for &l in &labeled {
        let c = scc[index[&l]];
        let rep = &mut scc_label_rep[c];
        if rep.map_or(true, |r| l < r) {
            *rep = Some(l);
        }
    }
    // Multi-source BFS on the condensation from every labeled SCC's
    // successors: marks SCCs strictly dominated by a labeled SCC.
    let mut scc_succ: Vec<Vec<usize>> = vec![Vec::new(); num_sccs];
    for (i, succs) in succ.iter().enumerate() {
        for &j in succs {
            if scc[i] != scc[j] {
                scc_succ[scc[i]].push(scc[j]);
            }
        }
    }
    let mut dominated = vec![false; num_sccs];
    let mut queue: Vec<usize> = Vec::new();
    for (c, rep) in scc_label_rep.iter().enumerate() {
        if rep.is_some() {
            for &d in &scc_succ[c] {
                if !dominated[d] {
                    dominated[d] = true;
                    queue.push(d);
                }
            }
        }
    }
    while let Some(c) = queue.pop() {
        for &d in &scc_succ[c] {
            if !dominated[d] {
                dominated[d] = true;
                queue.push(d);
            }
        }
    }

    labeled
        .into_iter()
        .filter(|&x| {
            let c = scc[index[&x]];
            // Dropped if the SCC is strictly below a labeled SCC, or a
            // smaller-id labeled NT shares the SCC.
            !dominated[c] && scc_label_rep[c] == Some(x)
        })
        .collect()
}

/// Iterative Tarjan SCC over an adjacency list; returns a component id
/// per node.
fn scc_ids(succ: &[Vec<usize>]) -> Vec<usize> {
    let n = succ.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < succ[v].len() {
                let w = succ[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Builds the *marked grammar* for `x`: a copy of the grammar reachable
/// from `root` where every occurrence of `x` on a right-hand side is
/// replaced by the terminal [`VAR_MARKER`], and every nonterminal in
/// `replacements` is replaced by a fixed byte string (used to splice in
/// representative values for sibling tainted subgrammars).
///
/// Occurrences of the raw marker byte in ordinary terminals (possible
/// when a Σ* subgrammar is present) are substituted with a
/// parity-neutral byte so the context automata only ever see markers
/// that stand for `x`.
pub fn marked_grammar(
    cfg: &Cfg,
    root: NtId,
    x: NtId,
    replacements: &HashMap<NtId, Vec<u8>>,
) -> (Cfg, NtId) {
    let reachable = cfg.reachable(root);
    let mut out = Cfg::new();
    let mut map: HashMap<NtId, NtId> = HashMap::new();
    for id in cfg.nonterminals() {
        if reachable[id.index()] && id != x && !replacements.contains_key(&id) {
            let n = out.add_nonterminal(cfg.name(id));
            map.insert(id, n);
        }
    }
    // If the root itself is the marked nonterminal the whole query is
    // the tainted value: the marked grammar is a single marker.
    if x == root {
        let r = out.add_nonterminal(cfg.name(root));
        out.add_production(r, vec![Symbol::T(VAR_MARKER)]);
        return (out, r);
    }
    for (lhs, rhs) in cfg.iter_productions() {
        let Some(&new_lhs) = map.get(&lhs) else { continue };
        let mut new_rhs: Vec<Symbol> = Vec::with_capacity(rhs.len());
        for s in rhs {
            match s {
                Symbol::T(b) if *b == VAR_MARKER => new_rhs.push(Symbol::T(MARKER_SUBSTITUTE)),
                Symbol::T(b) => new_rhs.push(Symbol::T(*b)),
                Symbol::N(id) if *id == x => new_rhs.push(Symbol::T(VAR_MARKER)),
                Symbol::N(id) => match replacements.get(id) {
                    Some(bytes) => {
                        new_rhs.extend(bytes.iter().map(|&b| Symbol::T(b)));
                    }
                    None => new_rhs.push(Symbol::N(map[id])),
                },
            }
        }
        out.add_production(new_lhs, new_rhs);
    }
    (out, map[&root])
}

#[cfg(test)]
mod tests {
    use super::*;
    use strtaint_grammar::Taint;

    #[test]
    fn maximal_filters_nested_labels() {
        let mut g = Cfg::new();
        let inner = g.add_nonterminal("inner");
        g.set_taint(inner, Taint::DIRECT);
        g.add_literal_production(inner, b"i");
        let outer = g.add_nonterminal("outer");
        g.set_taint(outer, Taint::DIRECT);
        g.add_production(outer, vec![Symbol::N(inner)]);
        let root = g.add_nonterminal("root");
        g.add_production(root, vec![Symbol::N(outer)]);
        assert_eq!(maximal_labeled(&g, root), vec![outer]);
    }

    #[test]
    fn unreachable_labels_ignored() {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("x");
        g.set_taint(x, Taint::DIRECT);
        g.add_literal_production(x, b"i");
        let root = g.literal_nonterminal("root", b"safe");
        assert!(maximal_labeled(&g, root).is_empty());
    }

    #[test]
    fn marking_replaces_occurrences() {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("x");
        g.set_taint(x, Taint::DIRECT);
        g.add_literal_production(x, b"evil");
        let root = g.add_nonterminal("root");
        let mut rhs = g.literal_symbols(b"id='");
        rhs.push(Symbol::N(x));
        rhs.push(Symbol::T(b'\''));
        g.add_production(root, rhs);
        let (m, mroot) = marked_grammar(&g, root, x, &HashMap::new());
        let mut expected = b"id='".to_vec();
        expected.push(VAR_MARKER);
        expected.push(b'\'');
        assert!(m.derives(mroot, &expected));
        assert!(!m.derives(mroot, b"id='evil'"));
    }

    #[test]
    fn sibling_replacement_splices_literal() {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("x");
        g.add_literal_production(x, b"X");
        let y = g.add_nonterminal("y");
        g.add_literal_production(y, b"a");
        g.add_literal_production(y, b"bb");
        let root = g.add_nonterminal("root");
        g.add_production(root, vec![Symbol::N(y), Symbol::T(b'='), Symbol::N(x)]);
        let mut repl = HashMap::new();
        repl.insert(y, b"a".to_vec());
        let (m, mroot) = marked_grammar(&g, root, x, &repl);
        let expected = [b'a', b'=', VAR_MARKER];
        assert!(m.derives(mroot, &expected));
        let not_expected = [b'b', b'b', b'=', VAR_MARKER];
        assert!(!m.derives(mroot, &not_expected));
    }

    #[test]
    fn root_marked_directly() {
        let mut g = Cfg::new();
        let root = g.add_nonterminal("q");
        g.set_taint(root, Taint::DIRECT);
        g.add_literal_production(root, b"whatever");
        let (m, mroot) = marked_grammar(&g, root, root, &HashMap::new());
        assert!(m.derives(mroot, &[VAR_MARKER]));
    }
}
