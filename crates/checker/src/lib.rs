//! Policy-conformance checking for **strtaint** (paper §3.2).
//!
//! Given the annotated query grammar from `strtaint-analysis`, the
//! [`Checker`] decides for every hotspot whether each tainted
//! subgrammar is *syntactically confined* (paper Definitions 2.2/2.3):
//! derivable from a single symbol of the reference SQL grammar in every
//! query context. Violations become [`Finding`]s; if none are found
//! the hotspot is verified, and by Theorem 3.4 (soundness) the program
//! point is free of SQL command injection vulnerabilities with respect
//! to the modeled semantics.
//!
//! # Examples
//!
//! ```
//! use strtaint_checker::Checker;
//! use strtaint_grammar::{Cfg, Symbol, Taint};
//!
//! // query -> "SELECT * FROM t WHERE id='" X "'" with X tainted Σ-ish.
//! let mut g = Cfg::new();
//! let x = g.add_nonterminal("_GET[id]");
//! g.set_taint(x, Taint::DIRECT);
//! g.add_literal_production(x, b"1");
//! g.add_literal_production(x, b"1'; DROP TABLE t; --");
//! let q = g.add_nonterminal("query");
//! let mut rhs = g.literal_symbols(b"SELECT * FROM t WHERE id='");
//! rhs.push(Symbol::N(x));
//! rhs.push(Symbol::T(b'\''));
//! g.add_production(q, rhs);
//!
//! let report = Checker::new().check_hotspot(&g, q);
//! assert!(!report.is_safe());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abstraction;
pub mod checks;
pub mod dfas;
mod engine;
pub mod policy_driver;
mod pmemo;
mod prefilter;
mod qcache;
pub mod report;
pub mod skeletons;
pub mod xss;

pub use checks::{CheckOptions, Checker};
pub use policy_driver::{GenericChecker, PolicyChecker};
pub use report::{CheckKind, Finding, HotspotReport, MAX_WITNESS_BYTES};
pub use skeletons::skeleton_display;
pub use strtaint_grammar::prepared::PreparedCache;
pub use strtaint_grammar::stats::EngineStats;
pub use xss::XssChecker;

/// The engine-evidence version string stamped into persisted artifacts
/// (the daemon's verdict store) and profile exports. The suffix names
/// the evidence generations an artifact must carry to be replayable:
/// `qc1` (query-cache era witness bytes), `rm1` (remediation-era
/// skeleton evidence), and `fe1` (frontend-era per-dependency language
/// evidence). Bumping the suffix drops — rather than replays — every
/// artifact written before the corresponding evidence existed.
pub fn engine_version() -> &'static str {
    concat!("strtaint-", env!("CARGO_PKG_VERSION"), "+qc1.rm1.fe1")
}
