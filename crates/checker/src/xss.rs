//! Cross-site-scripting conformance checking — the extension the paper
//! names as future work (§7: "We would like to apply the same
//! technique to detecting vulnerabilities that allow cross-site
//! scripting attacks").
//!
//! The machinery is identical to the SQLCIV checker: the string-taint
//! analysis hands us a grammar for everything a page can `echo`, with
//! tainted subgrammars labeled; an HTML-context automaton plays the
//! role the quote-parity automata play for SQL. A tainted substring is
//! confined when, in every emission context, its language cannot
//! introduce markup:
//!
//! - **text context** (between tags): must not contain `<`;
//! - **double-/single-quoted attribute context**: must not contain the
//!   closing quote (and `<` is harmless there);
//! - **inside a tag** (attribute-name position): attacker-controlled
//!   tokens are reported unless the language is a bare alphanumeric
//!   word.

use std::sync::Arc;

use strtaint_automata::{ByteSet, Dfa, Nfa};
use strtaint_grammar::budget::{Budget, BudgetExceeded, DegradeAction};
use strtaint_grammar::lang::shortest_string;
use strtaint_grammar::prepared::PreparedCache;
use strtaint_grammar::{Cfg, NtId};
use strtaint_sql::VAR_MARKER;

use crate::abstraction::maximal_labeled;
use crate::engine::{run_parallel, Engine, Qdfa};
use crate::pmemo::PreparedMemo;
use crate::qcache::QueryCache;
use crate::report::{CheckKind, Finding, HotspotReport};

/// HTML contexts a marker can occur in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HtmlCtx {
    /// Between tags.
    Text,
    /// Inside `<...>` but outside attribute values.
    Tag,
    /// Inside a double-quoted attribute value.
    AttrDq,
    /// Inside a single-quoted attribute value.
    AttrSq,
}

/// Builds a DFA accepting strings in which some [`VAR_MARKER`] occurs
/// in the given HTML context.
fn marker_in_context(ctx: HtmlCtx) -> Dfa {
    // States: 0 text, 1 tag, 2 attr-dq, 3 attr-sq, 4 hit (sink).
    let mut n = Nfa::default();
    let s: Vec<_> = (0..5).map(|_| n.add_state()).collect();
    n.set_start(s[0]);
    let lt = ByteSet::singleton(b'<');
    let gt = ByteSet::singleton(b'>');
    let dq = ByteSet::singleton(b'"');
    let sq = ByteSet::singleton(b'\'');
    let marker = ByteSet::singleton(VAR_MARKER);
    let hit = s[4];
    let target = |c: HtmlCtx| match c {
        HtmlCtx::Text => s[0],
        HtmlCtx::Tag => s[1],
        HtmlCtx::AttrDq => s[2],
        HtmlCtx::AttrSq => s[3],
    };
    // Text.
    n.add_arc(s[0], lt, s[1]);
    n.add_arc(
        s[0],
        lt.union(&marker).complement(),
        s[0],
    );
    // Tag.
    n.add_arc(s[1], gt, s[0]);
    n.add_arc(s[1], dq, s[2]);
    n.add_arc(s[1], sq, s[3]);
    n.add_arc(
        s[1],
        gt.union(&dq).union(&sq).union(&marker).complement(),
        s[1],
    );
    // Attr values.
    n.add_arc(s[2], dq, s[1]);
    n.add_arc(s[2], dq.union(&marker).complement(), s[2]);
    n.add_arc(s[3], sq, s[1]);
    n.add_arc(s[3], sq.union(&marker).complement(), s[3]);
    // Marker transitions: hit from the requested context, self-loop in
    // the others.
    for c in [HtmlCtx::Text, HtmlCtx::Tag, HtmlCtx::AttrDq, HtmlCtx::AttrSq] {
        let st = target(c);
        if c == ctx {
            n.add_arc(st, marker, hit);
        } else {
            n.add_arc(st, marker, st);
        }
    }
    n.add_arc(hit, ByteSet::FULL, hit);
    n.set_accepting(hit, true);
    Dfa::from_nfa(&n).minimize()
}

/// The XSS conformance checker (precompiled automata).
#[derive(Debug, Clone)]
pub struct XssChecker {
    in_text: Qdfa,
    in_tag: Qdfa,
    in_attr_dq: Qdfa,
    in_attr_sq: Qdfa,
    has_lt: Qdfa,
    has_dq: Qdfa,
    has_sq: Qdfa,
    non_word: Qdfa,
    naive_engine: bool,
    /// Cross-page verdict cache (see `qcache`); all XSS queries are
    /// emptiness-only, so witness-replay concerns never arise here.
    qcache: Option<Arc<QueryCache>>,
    /// Cross-page preparation memo (see `pmemo`), gated with `qcache`.
    pmemo: Option<Arc<PreparedMemo>>,
}

impl XssChecker {
    /// Builds the checker.
    pub fn new() -> Self {
        Self::with_naive_engine(false)
    }

    /// Builds the checker, optionally routing every intersection
    /// through the naive reference engine (see
    /// [`crate::CheckOptions::naive_engine`]).
    pub fn with_naive_engine(naive_engine: bool) -> Self {
        Self::with_engine_options(naive_engine, true)
    }

    /// Builds the checker with explicit engine routing: naive
    /// reference path and/or cross-page verdict memoization (see
    /// [`crate::CheckOptions::query_cache`]).
    pub fn with_engine_options(naive_engine: bool, query_cache: bool) -> Self {
        let contains = |b: u8| {
            Dfa::from_nfa(
                &Nfa::any_string()
                    .concat(&Nfa::class(ByteSet::singleton(b)))
                    .concat(&Nfa::any_string()),
            )
            .minimize()
        };
        XssChecker {
            in_text: Qdfa::new(marker_in_context(HtmlCtx::Text)),
            in_tag: Qdfa::new(marker_in_context(HtmlCtx::Tag)),
            in_attr_dq: Qdfa::new(marker_in_context(HtmlCtx::AttrDq)),
            in_attr_sq: Qdfa::new(marker_in_context(HtmlCtx::AttrSq)),
            has_lt: Qdfa::new(contains(b'<')),
            has_dq: Qdfa::new(contains(b'"')),
            has_sq: Qdfa::new(contains(b'\'')),
            non_word: Qdfa::new(
                strtaint_automata::Regex::new("^[A-Za-z0-9_-]*$")
                    .expect("static pattern")
                    .match_dfa()
                    .complement(),
            ),
            naive_engine,
            qcache: (query_cache && !naive_engine).then(|| Arc::new(QueryCache::new())),
            pmemo: (query_cache && !naive_engine).then(|| Arc::new(PreparedMemo::new())),
        }
    }

    /// Stamps the config-fingerprint namespace for cross-page verdict
    /// memoization (see [`crate::Checker::set_query_scope`]).
    pub fn set_query_scope(&self, scope: u64) {
        if let Some(qc) = &self.qcache {
            qc.set_scope(scope);
        }
    }

    /// Exports this sink's canonical output-skeleton set (see
    /// [`crate::skeletons`]); the marker stands at the tainted
    /// position of the emitted document.
    pub fn skeletons_for(&self, cfg: &Cfg, root: NtId) -> (Vec<Vec<u8>>, bool) {
        crate::skeletons::hotspot_skeletons(cfg, root, self.pmemo.as_deref())
    }

    /// Checks one `echo` sink whose emitted language is rooted at
    /// `root`.
    pub fn check_echo(&self, cfg: &Cfg, root: NtId) -> HotspotReport {
        self.check_echo_with(cfg, root, &Budget::unlimited())
    }

    /// Like [`XssChecker::check_echo`] under a resource budget. A
    /// budget trip marks the nonterminal unverified (a conservative
    /// [`CheckKind::BudgetExhausted`] finding), never verified.
    pub fn check_echo_with(&self, cfg: &Cfg, root: NtId, budget: &Budget) -> HotspotReport {
        self.check_echo_cached(cfg, root, budget, &PreparedCache::new())
    }

    /// Like [`XssChecker::check_echo_with`], sharing `cache` across the
    /// echo sinks of one page (cache scoping rules as in
    /// [`crate::Checker::check_hotspot_cached`]).
    pub fn check_echo_cached(
        &self,
        cfg: &Cfg,
        root: NtId,
        budget: &Budget,
        cache: &PreparedCache,
    ) -> HotspotReport {
        let mut report = HotspotReport::default();
        let candidates = maximal_labeled(cfg, root);
        report.checked = candidates.len();
        let mut engine = Engine::new(
            cache,
            self.naive_engine,
            self.qcache.as_deref(),
            self.pmemo.as_deref(),
            false,
        );
        for x in candidates {
            let _span = strtaint_obs::Span::enter_with("check:xss", || cfg.name(x).to_owned());
            match self.check_one(cfg, root, x, budget, &mut engine) {
                Ok(None) => report.verified += 1,
                Ok(Some(f)) => report.findings.push(f),
                Err(err) => {
                    report.degradations.push(budget.degradation(
                        err,
                        format!("xss-check:{}", cfg.name(x)),
                        DegradeAction::MarkedUnverified,
                    ));
                    report.findings.push(Finding {
                        nonterminal: x,
                        name: cfg.name(x).to_owned(),
                        taint: cfg.taint(x),
                        kind: CheckKind::BudgetExhausted,
                        witness: None,
                        witness_truncated: false,
                        example_query: None,
                        detail: err.to_string(),
                        at: None,
                    });
                }
            }
        }
        report.engine = engine.stats;
        for f in &mut report.findings {
            f.cap_witness();
        }
        report
    }

    /// Checks every echo-sink root of one page, on up to `workers`
    /// threads, returning reports in input order (see
    /// [`crate::Checker::check_hotspots_with`]).
    pub fn check_echoes_with(
        &self,
        cfg: &Cfg,
        roots: &[NtId],
        budget: &Budget,
        workers: usize,
    ) -> Vec<HotspotReport> {
        let cache = PreparedCache::new();
        run_parallel(roots, workers, |&root| {
            self.check_echo_cached(cfg, root, budget, &cache)
        })
    }

    fn check_one(
        &self,
        cfg: &Cfg,
        root: NtId,
        x: NtId,
        budget: &Budget,
        engine: &mut Engine<'_>,
    ) -> Result<Option<Finding>, BudgetExceeded> {
        let finding = |detail: &str, witness: Option<Vec<u8>>| {
            Ok(Some(Finding {
                nonterminal: x,
                name: cfg.name(x).to_owned(),
                taint: cfg.taint(x),
                kind: CheckKind::NotDerivable,
                witness,
                witness_truncated: false,
                example_query: None,
                detail: format!("XSS: {detail}"),
                at: None,
            }))
        };
        // One preparation of the marked grammar serves all four context
        // queries; one preparation of (cfg, x) serves all four
        // containment queries (shared with other sinks via the cache).
        // An empty L(X) has nothing to check.
        let Some(mut tx) = engine.target(cfg, x) else {
            return Ok(None);
        };
        let mut scratch = None;
        let mut tm = engine.target_marked(cfg, root, x, &mut scratch);
        // Text context: a `<` opens attacker markup.
        if !engine.is_empty(&mut tm, &self.in_text, budget)?
            && !engine.is_empty(&mut tx, &self.has_lt, budget)?
        {
            return finding("can open a tag in text context", shortest_string(cfg, x));
        }
        // Quoted attribute contexts: the closing quote escapes.
        if !engine.is_empty(&mut tm, &self.in_attr_dq, budget)?
            && !engine.is_empty(&mut tx, &self.has_dq, budget)?
        {
            return finding(
                "can close its double-quoted attribute",
                shortest_string(cfg, x),
            );
        }
        if !engine.is_empty(&mut tm, &self.in_attr_sq, budget)?
            && !engine.is_empty(&mut tx, &self.has_sq, budget)?
        {
            return finding(
                "can close its single-quoted attribute",
                shortest_string(cfg, x),
            );
        }
        // Raw tag-interior position: only bare words are tolerable.
        if !engine.is_empty(&mut tm, &self.in_tag, budget)?
            && !engine.is_empty(&mut tx, &self.non_word, budget)?
        {
            return finding(
                "controls tag-interior tokens",
                shortest_string(cfg, x),
            );
        }
        Ok(None)
    }
}

impl Default for XssChecker {
    fn default() -> Self {
        XssChecker::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strtaint_grammar::{Symbol, Taint};

    fn harness(pre: &[u8], strings: &[&[u8]], post: &[u8]) -> (Cfg, NtId) {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("_GET[v]");
        g.set_taint(x, Taint::DIRECT);
        for s in strings {
            g.add_literal_production(x, s);
        }
        let root = g.add_nonterminal("html");
        let mut rhs = g.literal_symbols(pre);
        rhs.push(Symbol::N(x));
        rhs.extend(g.literal_symbols(post));
        g.add_production(root, rhs);
        (g, root)
    }

    #[test]
    fn raw_output_in_text_reported() {
        let (g, root) = harness(b"<p>Hello ", &[b"bob", b"<script>alert(1)</script>"], b"</p>");
        let c = XssChecker::new();
        let r = c.check_echo(&g, root);
        assert!(!r.is_safe());
        assert!(r.findings[0].detail.contains("open a tag"));
    }

    #[test]
    fn escaped_output_in_text_verifies() {
        // htmlspecialchars output: no angle brackets survive.
        let (g, root) = harness(b"<p>", &[b"bob", b"a&lt;b&gt;c"], b"</p>");
        let c = XssChecker::new();
        assert!(c.check_echo(&g, root).is_safe());
    }

    #[test]
    fn attribute_breakout_reported() {
        let (g, root) = harness(
            br#"<a href="profile.php?u="#,
            &[b"bob", br#"x" onmouseover="alert(1)"#],
            br#"">me</a>"#,
        );
        let c = XssChecker::new();
        let r = c.check_echo(&g, root);
        assert!(!r.is_safe());
        assert!(r.findings[0].detail.contains("double-quoted attribute"));
    }

    #[test]
    fn quoted_attribute_with_safe_values_verifies() {
        let (g, root) = harness(br#"<a href=""#, &[b"a.php", b"b.php"], br#"">x</a>"#);
        let c = XssChecker::new();
        assert!(c.check_echo(&g, root).is_safe());
    }

    #[test]
    fn tag_interior_word_is_tolerated() {
        let (g, root) = harness(b"<div class=", &[b"wide", b"narrow"], b">x</div>");
        let c = XssChecker::new();
        assert!(c.check_echo(&g, root).is_safe());
    }

    #[test]
    fn tag_interior_payload_reported() {
        let (g, root) = harness(b"<div class=", &[b"x onload=alert(1)"], b">x</div>");
        let c = XssChecker::new();
        assert!(!c.check_echo(&g, root).is_safe());
    }

    #[test]
    fn untainted_output_trivially_safe() {
        let mut g = Cfg::new();
        let root = g.literal_nonterminal("html", b"<p>static</p>");
        let c = XssChecker::new();
        let r = c.check_echo(&g, root);
        assert!(r.is_safe());
        assert_eq!(r.checked, 0);
    }
}
