//! Hand-built character-level automata for the policy checks
//! (paper §3.2.1).
//!
//! The paper expresses these checks as Perl regexes over quotes and
//! escapes; the published text of those regexes suffered in
//! typesetting, so we construct the automata directly from the stated
//! intent and verify them against the regex engine in tests. All
//! automata track the two-bit state (quote parity, pending backslash
//! escape).

use strtaint_automata::{ByteSet, Dfa, Nfa};
use strtaint_sql::VAR_MARKER;

fn quote() -> u8 {
    b'\''
}

/// Builds a DFA over the (parity, escape) state machine and lets the
/// caller pick accepting states and a marker behavior.
fn quote_machine(accept: impl Fn(/*odd:*/ bool) -> bool) -> Dfa {
    // States: 0 = (even, normal), 1 = (even, escaped),
    //         2 = (odd, normal),  3 = (odd, escaped).
    // Encode as an NFA with singleton arcs, then determinize (cheap and
    // keeps construction readable).
    let mut n = Nfa::default();
    let s: Vec<_> = (0..4).map(|_| n.add_state()).collect();
    n.set_start(s[0]);
    let bs = ByteSet::singleton(b'\\');
    let q = ByteSet::singleton(quote());
    let other = bs.union(&q).complement();
    // normal states
    n.add_arc(s[0], bs, s[1]);
    n.add_arc(s[0], q, s[2]);
    n.add_arc(s[0], other, s[0]);
    n.add_arc(s[2], bs, s[3]);
    n.add_arc(s[2], q, s[0]);
    n.add_arc(s[2], other, s[2]);
    // escaped states consume one byte (the escaped char) verbatim.
    n.add_arc(s[1], ByteSet::FULL, s[0]);
    n.add_arc(s[3], ByteSet::FULL, s[2]);
    for (i, &st) in s.iter().enumerate() {
        let odd = i >= 2;
        if accept(odd) {
            n.set_accepting(st, true);
        }
    }
    Dfa::from_nfa(&n).minimize()
}

/// Strings with an **odd number of unescaped quotes** — the paper's
/// first check: such a substring cannot be syntactically confined in
/// any SQL query.
pub fn odd_unescaped_quotes() -> Dfa {
    quote_machine(|odd| odd)
}

/// Strings containing **at least one unescaped quote** — used to
/// reject literal-position substrings that could close their quote
/// context. Both SQL escaping conventions are honored: a quote is
/// *escaped* when preceded by a backslash (`\'`) or doubled (`''`);
/// any other quote can terminate the enclosing literal.
pub fn contains_unescaped_quote() -> Dfa {
    let mut n = Nfa::default();
    let norm = n.add_state();
    let esc = n.add_state();
    let qseen = n.add_state(); // just read a quote; next byte decides
    let bad = n.add_state();
    n.set_start(norm);
    let bs = ByteSet::singleton(b'\\');
    let q = ByteSet::singleton(quote());
    n.add_arc(norm, bs, esc);
    n.add_arc(norm, q, qseen);
    n.add_arc(norm, bs.union(&q).complement(), norm);
    n.add_arc(esc, ByteSet::FULL, norm);
    // Doubled quote: the pair is an escaped quote character.
    n.add_arc(qseen, q, norm);
    // Any other byte after a lone quote: the quote was unescaped.
    n.add_arc(qseen, q.complement(), bad);
    n.add_arc(bad, ByteSet::FULL, bad);
    // A trailing lone quote is also unescaped.
    n.set_accepting(qseen, true);
    n.set_accepting(bad, true);
    Dfa::from_nfa(&n).minimize()
}

/// Strings in which some [`VAR_MARKER`] occurs **outside** a
/// single-quoted string literal — the complement check of the paper's
/// "labeled nonterminal occurs only in the syntactic position of a
/// string literal".
pub fn marker_outside_literal() -> Dfa {
    let mut n = Nfa::default();
    let s: Vec<_> = (0..4).map(|_| n.add_state()).collect();
    let hit = n.add_state();
    n.set_start(s[0]);
    let bs = ByteSet::singleton(b'\\');
    let q = ByteSet::singleton(quote());
    let marker = ByteSet::singleton(VAR_MARKER);
    let other = bs.union(&q).union(&marker).complement();
    // Even parity, normal: a marker here is outside a literal.
    n.add_arc(s[0], bs, s[1]);
    n.add_arc(s[0], q, s[2]);
    n.add_arc(s[0], marker, hit);
    n.add_arc(s[0], other, s[0]);
    // Odd parity, normal: marker is inside the literal — fine.
    n.add_arc(s[2], bs, s[3]);
    n.add_arc(s[2], q, s[0]);
    n.add_arc(s[2], marker, s[2]);
    n.add_arc(s[2], other, s[2]);
    // Escaped states.
    n.add_arc(s[1], ByteSet::FULL, s[0]);
    n.add_arc(s[3], ByteSet::FULL, s[2]);
    // Sink.
    n.add_arc(hit, ByteSet::FULL, hit);
    n.set_accepting(hit, true);
    Dfa::from_nfa(&n).minimize()
}

/// Numeric SQL literals: `-? digits (. digits)?` — the paper's third
/// check (unquoted numeric position).
pub fn numeric_literal() -> Dfa {
    strtaint_automata::Regex::new(r"^-?[0-9]+(\.[0-9]+)?$")
        .expect("static pattern")
        .match_dfa()
}

/// SQL keywords (case-insensitive), for excluding keyword capture when
/// a tainted value sits in identifier position.
pub fn sql_keywords() -> Dfa {
    const KEYWORDS: &[&str] = &[
        "select", "insert", "update", "delete", "from", "where", "and", "or", "not",
        "into", "values", "set", "order", "group", "by", "having", "limit", "offset",
        "union", "all", "like", "in", "is", "null", "between", "join", "on", "as",
        "drop", "create", "alter", "table", "exec", "execute",
    ];
    let mut n = Nfa::empty();
    for kw in KEYWORDS {
        let mut lit = Nfa::epsilon();
        for b in kw.bytes() {
            lit = lit.concat(&Nfa::class(ByteSet::singleton(b).ascii_case_fold()));
        }
        n = n.union(&lit);
    }
    Dfa::from_nfa(&n).minimize()
}

/// The classic non-confinable attack fragments, matched
/// case-insensitively. Single source for both [`attack_fragments`]
/// (the exact C4 automaton) and the Aho–Corasick prefilter
/// (`crate::prefilter`), so the two can never drift apart.
pub(crate) const ATTACK_FRAGMENTS: &[&[u8]] = &[
    b"DROP TABLE",
    b"--",
    b";",
    b" OR ",
    b"UNION SELECT",
    b"#",
    b"/*",
];

/// Strings *containing* any classic non-confinable attack fragment —
/// the paper's fourth check (`DROP`, `--`, `;`, `UNION`, …) used to
/// confirm a suspected vulnerability.
pub fn attack_fragments() -> Dfa {
    // One shared Σ*(f1|…|fn)Σ* — per-fragment Σ* loops would make the
    // subset construction track a powerset of matched-fragment flags.
    let mut alts = Nfa::empty();
    for f in ATTACK_FRAGMENTS {
        let mut lit = Nfa::epsilon();
        for b in f.iter() {
            lit = lit.concat(&Nfa::class(ByteSet::singleton(*b).ascii_case_fold()));
        }
        alts = alts.union(&lit);
    }
    let any = Nfa::any_string();
    let n = any.concat(&alts).concat(&any);
    Dfa::from_nfa(&n).minimize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_quotes_parity() {
        let d = odd_unescaped_quotes();
        assert!(d.accepts(b"'"));
        assert!(d.accepts(b"1'; DROP TABLE unp_user; --"));
        assert!(d.accepts(b"a'b'c'"));
        assert!(!d.accepts(b""));
        assert!(!d.accepts(b"''"));
        assert!(!d.accepts(b"no quotes"));
        // Escaped quotes do not count.
        assert!(!d.accepts(br"\'"));
        assert!(d.accepts(br"\''"));
        assert!(!d.accepts(br"it\'s fine"));
    }

    #[test]
    fn odd_quotes_matches_regex_engine() {
        // Cross-validate against the regex formulation of the same
        // language on a sample set.
        use strtaint_automata::Regex;
        let re = Regex::new(r"^([^'\\]|\\.)*'(([^'\\]|\\.)*'([^'\\]|\\.)*')*([^'\\]|\\.)*$")
            .unwrap()
            .match_dfa();
        let d = odd_unescaped_quotes();
        for s in [
            &b""[..], b"'", b"''", b"'''", br"\'", br"\''", b"a'b", br"a\'b'c", b"x",
            br"\\'", br"\\''",
        ] {
            assert_eq!(d.accepts(s), re.accepts(s), "{:?}", s);
        }
    }

    #[test]
    fn unescaped_quote_presence() {
        let d = contains_unescaped_quote();
        assert!(d.accepts(b"'"));
        assert!(d.accepts(b"ab'cd"));
        assert!(!d.accepts(br"ab\'cd"));
        assert!(!d.accepts(b"abcd"));
        assert!(d.accepts(br"\''")); // second quote is unescaped
        // SQL quote doubling is an escape:
        assert!(!d.accepts(b"a''b"));
        assert!(!d.accepts(b"''"));
        assert!(d.accepts(b"'''"), "pair + trailing lone quote");
        assert!(d.accepts(b"a' OR 'x"), "two lone quotes");
    }

    #[test]
    fn marker_position() {
        use strtaint_sql::VAR_MARKER as M;
        let d = marker_outside_literal();
        let inside = [b'a', b'\'', M, b'\'', b'b'];
        assert!(!d.accepts(&inside), "marker inside quotes is fine");
        let outside = [b'a', b'=', M];
        assert!(d.accepts(&outside), "marker outside quotes detected");
        let after_close = [b'\'', b'x', b'\'', M];
        assert!(d.accepts(&after_close));
        // Escaped quote does not close the literal.
        let tricky = [b'\'', b'\\', b'\'', M, b'\'', b' '];
        assert!(!d.accepts(&tricky));
    }

    #[test]
    fn numeric() {
        let d = numeric_literal();
        assert!(d.accepts(b"0") && d.accepts(b"-12") && d.accepts(b"3.14"));
        assert!(!d.accepts(b"") && !d.accepts(b"1a") && !d.accepts(b"1.") && !d.accepts(b"--1"));
    }

    #[test]
    fn keywords_case_insensitive() {
        let d = sql_keywords();
        assert!(d.accepts(b"SELECT") && d.accepts(b"select") && d.accepts(b"SeLeCt"));
        assert!(d.accepts(b"drop"));
        assert!(!d.accepts(b"username"));
    }

    #[test]
    fn attack_fragment_detection() {
        let d = attack_fragments();
        assert!(d.accepts(b"1'; DROP TABLE unp_user; --"));
        assert!(d.accepts(b"1 UNION SELECT password"));
        assert!(d.accepts(b"x' or 'a'='a"));
        assert!(!d.accepts(b"plain value"));
        assert!(!d.accepts(b"12345"));
    }
}
