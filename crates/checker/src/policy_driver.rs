//! The generic policy driver: runs any data-defined [`Cascade`] from
//! the `strtaint-policy` registry through the prepared intersection
//! engine, and multiplexes the hand-built SQL/XSS checkers with the
//! data-defined ones behind one [`PolicyChecker`] façade.
//!
//! The driver is the registry's executable semantics (see the cascade
//! contract in `strtaint_policy::registry`): for each maximal labeled
//! nonterminal `X` of a hotspot, steps run in order against `L(X)`;
//! a `VerifyIfEmpty` step with an empty intersection verifies `X`,
//! a `ReportIfNonEmpty` step with a non-empty intersection reports its
//! witness, and the residual decides anything that falls through. The
//! budget discipline is identical to the SQL checker: a trip yields a
//! conservative `BudgetExhausted` finding, never a silent "verified".

use std::sync::Arc;

use strtaint_grammar::budget::{Budget, BudgetExceeded, DegradeAction};
use strtaint_grammar::lang::shortest_string;
use strtaint_grammar::prepared::PreparedCache;
use strtaint_grammar::{Cfg, NtId};
use strtaint_policy::{Cascade, CheckKind, Policy, PolicyKind, Residual, StepAction};

use crate::abstraction::maximal_labeled;
use crate::checks::{splice_example_memo, CheckOptions, Checker};
use crate::pmemo::PreparedMemo;
use crate::engine::{run_parallel, Engine, Qdfa};
use crate::qcache::QueryCache;
use crate::report::{Finding, HotspotReport};
use crate::xss::XssChecker;

/// A data-defined policy compiled for the intersection engine: every
/// cascade DFA in byte-class form, built once per checker.
#[derive(Debug, Clone)]
pub struct GenericChecker {
    id: &'static str,
    steps: Vec<(Qdfa, StepAction)>,
    residual: Residual,
    naive_engine: bool,
    eager_witness: bool,
    /// Cross-page verdict cache (see `qcache`), one per policy —
    /// entries never cross policy ids anyway (the cascade DFAs differ).
    qcache: Option<Arc<QueryCache>>,
    /// Cross-page preparation memo (see `pmemo`), gated with `qcache`.
    pmemo: Option<Arc<PreparedMemo>>,
}

impl GenericChecker {
    fn new(policy: &Policy, cascade: &Cascade, opts: &CheckOptions) -> Self {
        GenericChecker {
            id: policy.id,
            steps: cascade
                .steps
                .iter()
                .map(|s| (Qdfa::new(s.dfa.clone()), s.action.clone()))
                .collect(),
            residual: cascade.residual.clone(),
            naive_engine: opts.naive_engine,
            eager_witness: opts.eager_witness,
            qcache: (opts.query_cache && !opts.naive_engine)
                .then(|| Arc::new(QueryCache::new())),
            pmemo: (opts.query_cache && !opts.naive_engine)
                .then(|| Arc::new(PreparedMemo::new())),
        }
    }

    /// Stamps the config-fingerprint namespace for cross-page verdict
    /// memoization (see [`Checker::set_query_scope`]).
    pub fn set_query_scope(&self, scope: u64) {
        if let Some(qc) = &self.qcache {
            qc.set_scope(scope);
        }
    }

    /// Policy id this checker runs.
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// Exports this hotspot's canonical skeleton set (see
    /// [`crate::skeletons`]).
    pub fn skeletons_for(&self, cfg: &Cfg, root: NtId) -> (Vec<Vec<u8>>, bool) {
        crate::skeletons::hotspot_skeletons(cfg, root, self.pmemo.as_deref())
    }

    /// Checks one hotspot of this policy, sharing `cache` across the
    /// page (cache scoping rules as in
    /// [`Checker::check_hotspot_cached`]).
    pub fn check_hotspot_cached(
        &self,
        cfg: &Cfg,
        root: NtId,
        budget: &Budget,
        cache: &PreparedCache,
    ) -> HotspotReport {
        let mut report = HotspotReport::default();
        let candidates = maximal_labeled(cfg, root);
        report.checked = candidates.len();
        let mut engine = Engine::new(
            cache,
            self.naive_engine,
            self.qcache.as_deref(),
            self.pmemo.as_deref(),
            self.eager_witness,
        );
        for &x in &candidates {
            let _span = strtaint_obs::Span::enter_with("check", || cfg.name(x).to_owned());
            match self.check_one(cfg, root, x, budget, &mut engine) {
                Ok(None) => report.verified += 1,
                Ok(Some(finding)) => report.findings.push(finding),
                Err(err) => {
                    report.degradations.push(budget.degradation(
                        err,
                        format!("{}-check:{}", self.id, cfg.name(x)),
                        DegradeAction::MarkedUnverified,
                    ));
                    report.findings.push(Finding {
                        nonterminal: x,
                        name: cfg.name(x).to_owned(),
                        taint: cfg.taint(x),
                        kind: CheckKind::BudgetExhausted,
                        witness: None,
                        witness_truncated: false,
                        example_query: None,
                        detail: err.to_string(),
                        at: None,
                    });
                }
            }
        }
        report.engine = engine.stats;
        for f in &mut report.findings {
            f.cap_witness();
        }
        report
    }

    fn check_one(
        &self,
        cfg: &Cfg,
        root: NtId,
        x: NtId,
        budget: &Budget,
        engine: &mut Engine<'_>,
    ) -> Result<Option<Finding>, BudgetExceeded> {
        let finding = |kind: CheckKind, witness: Option<Vec<u8>>, detail: &str| {
            let example_query = witness
                .as_deref()
                .and_then(|w| splice_example_memo(cfg, root, x, w, self.pmemo.as_deref()));
            Ok(Some(Finding {
                nonterminal: x,
                name: cfg.name(x).to_owned(),
                taint: cfg.taint(x),
                kind,
                witness,
                witness_truncated: false,
                example_query,
                detail: detail.to_owned(),
                at: None,
            }))
        };
        // One prepared grammar serves every step of the cascade and,
        // via the shared cache, any other hotspot reaching `x`. An
        // empty L(X) has nothing to check.
        let Some(mut tx) = engine.target(cfg, x) else {
            return Ok(None);
        };
        for (q, action) in &self.steps {
            match action {
                StepAction::VerifyIfEmpty => {
                    if engine.is_empty(&mut tx, q, budget)? {
                        return Ok(None);
                    }
                }
                StepAction::ReportIfNonEmpty { kind, detail } => {
                    let (empty, witness) =
                        engine.is_empty_or_witness(&mut tx, q, budget, (cfg, x))?;
                    if !empty {
                        return finding(*kind, witness, detail);
                    }
                }
            }
        }
        match &self.residual {
            Residual::Verified => Ok(None),
            Residual::Report { kind, detail } => {
                finding(*kind, shortest_string(cfg, x), detail)
            }
        }
    }
}

/// One checker for every enabled policy: the hand-built SQL (C1–C5)
/// and XSS cascades plus a [`GenericChecker`] per data-defined policy,
/// dispatched by the policy id each hotspot carries.
#[derive(Debug, Clone)]
pub struct PolicyChecker {
    sql: Checker,
    xss: XssChecker,
    generic: Vec<GenericChecker>,
}

impl PolicyChecker {
    /// Builds a checker for every built-in policy with default options.
    pub fn new() -> Self {
        Self::with_options(CheckOptions::default())
    }

    /// Builds a checker for every built-in policy; `opts` applies to
    /// the SQL cascade, and `opts.naive_engine` to all of them.
    pub fn with_options(opts: CheckOptions) -> Self {
        let generic = strtaint_policy::builtin()
            .iter()
            .filter_map(|p| match &p.kind {
                PolicyKind::Cascade(c) => Some(GenericChecker::new(p, c, &opts)),
                PolicyKind::SqlCiv | PolicyKind::Xss => None,
            })
            .collect();
        PolicyChecker {
            xss: XssChecker::with_engine_options(opts.naive_engine, opts.query_cache),
            sql: Checker::with_options(opts),
            generic,
        }
    }

    /// Stamps the config-fingerprint namespace on every per-policy
    /// verdict cache (see [`Checker::set_query_scope`]).
    pub fn set_query_scope(&self, scope: u64) {
        self.sql.set_query_scope(scope);
        self.xss.set_query_scope(scope);
        for g in &self.generic {
            g.set_query_scope(scope);
        }
    }

    /// The hand-built SQL checker — the exact object the single-policy
    /// pipeline uses, so SQL-only runs stay byte-identical.
    pub fn sql(&self) -> &Checker {
        &self.sql
    }

    /// The hand-built XSS checker.
    pub fn xss(&self) -> &XssChecker {
        &self.xss
    }

    /// Checks one hotspot under the named policy. Unknown ids fall
    /// back to the SQL cascade (cannot happen for hotspots produced by
    /// the analysis layer, which only tags registry ids; the fallback
    /// keeps the driver total without a panic path).
    pub fn check_hotspot_cached(
        &self,
        policy: &str,
        cfg: &Cfg,
        root: NtId,
        budget: &Budget,
        cache: &PreparedCache,
    ) -> HotspotReport {
        if policy == strtaint_policy::XSS_POLICY {
            return self.xss.check_echo_cached(cfg, root, budget, cache);
        }
        if let Some(g) = self.generic.iter().find(|g| g.id == policy) {
            return g.check_hotspot_cached(cfg, root, budget, cache);
        }
        self.sql.check_hotspot_cached(cfg, root, budget, cache)
    }

    /// Exports one hotspot's canonical skeleton set under the named
    /// policy, dispatching exactly like [`Self::check_hotspot_cached`]
    /// so the skeletons share the same per-policy prepared memo.
    pub fn skeletons_for(&self, policy: &str, cfg: &Cfg, root: NtId) -> (Vec<Vec<u8>>, bool) {
        if policy == strtaint_policy::XSS_POLICY {
            return self.xss.skeletons_for(cfg, root);
        }
        if let Some(g) = self.generic.iter().find(|g| g.id == policy) {
            return g.skeletons_for(cfg, root);
        }
        self.sql.skeletons_for(cfg, root)
    }

    /// Checks every `(root, policy)` hotspot of one page, on up to
    /// `workers` threads, returning reports in input order — the
    /// multi-policy analogue of [`Checker::check_hotspots_with`], on
    /// the same lock-free worker loop and shared prepared cache.
    pub fn check_hotspots_with(
        &self,
        cfg: &Cfg,
        items: &[(NtId, String)],
        budget: &Budget,
        workers: usize,
    ) -> Vec<HotspotReport> {
        let cache = PreparedCache::new();
        run_parallel(items, workers, |(root, policy)| {
            self.check_hotspot_cached(policy, cfg, *root, budget, &cache)
        })
    }
}

impl Default for PolicyChecker {
    fn default() -> Self {
        PolicyChecker::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strtaint_grammar::{Symbol, Taint};

    /// `root -> pre X post` with `X` tainted over `strings`.
    fn harness(pre: &[u8], strings: &[&[u8]], post: &[u8]) -> (Cfg, NtId) {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("_GET[v]");
        g.set_taint(x, Taint::DIRECT);
        for s in strings {
            g.add_literal_production(x, s);
        }
        let root = g.add_nonterminal("arg");
        let mut rhs = g.literal_symbols(pre);
        rhs.push(Symbol::N(x));
        rhs.extend(g.literal_symbols(post));
        g.add_production(root, rhs);
        (g, root)
    }

    fn check(policy: &str, g: &Cfg, root: NtId) -> HotspotReport {
        PolicyChecker::new().check_hotspot_cached(
            policy,
            g,
            root,
            &Budget::unlimited(),
            &PreparedCache::new(),
        )
    }

    #[test]
    fn shell_metachar_reported_with_example() {
        let (g, root) = harness(b"convert thumb/", &[b"a.png", b"x; rm -rf ~"], b" out.png");
        let r = check("shell", &g, root);
        assert_eq!(r.findings.len(), 1, "{r}");
        assert_eq!(r.findings[0].kind, CheckKind::ShellMetachar);
        assert!(r.findings[0].witness.is_some());
        // The witness splices into the full command skeleton.
        let eg = r.findings[0].example_query.as_deref().expect("example");
        assert!(eg.starts_with(b"convert thumb/"), "{:?}", String::from_utf8_lossy(eg));
    }

    #[test]
    fn shell_word_confined_verifies() {
        let (g, root) = harness(b"convert thumb/", &[b"a.png", b"b_2.png"], b" out.png");
        let r = check("shell", &g, root);
        assert!(r.is_safe(), "{r}");
        assert_eq!(r.verified, 1);
    }

    #[test]
    fn shell_whitespace_hits_residual() {
        let (g, root) = harness(b"ls ", &[b"a b"], b"");
        let r = check("shell", &g, root);
        assert_eq!(r.findings.len(), 1, "{r}");
        assert_eq!(r.findings[0].kind, CheckKind::ShellUnconfined);
    }

    #[test]
    fn path_traversal_and_absolute_reported() {
        let (g, root) = harness(b"pages/", &[b"home.php", b"../../etc/passwd"], b"");
        let r = check("path", &g, root);
        assert_eq!(r.findings.len(), 1, "{r}");
        assert_eq!(r.findings[0].kind, CheckKind::PathTraversal);

        let (g, root) = harness(b"", &[b"/etc/passwd"], b"");
        let r = check("path", &g, root);
        assert_eq!(r.findings.len(), 1, "{r}");
        assert_eq!(r.findings[0].kind, CheckKind::PathAbsolute);
    }

    #[test]
    fn path_relative_verifies() {
        let (g, root) = harness(b"pages/", &[b"home", b"about_us"], b".php");
        let r = check("path", &g, root);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn eval_code_tokens_reported_identifier_verifies() {
        let (g, root) = harness(b"$x = ", &[b"1", b"phpinfo()"], b";");
        let r = check("eval", &g, root);
        assert_eq!(r.findings.len(), 1, "{r}");
        assert_eq!(r.findings[0].kind, CheckKind::CodeInjection);

        let (g, root) = harness(b"$x = ", &[b"price", b"name_2"], b";");
        let r = check("eval", &g, root);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn budget_trip_is_conservative_for_generic_policies() {
        let (g, root) = harness(b"ls ", &[b"a", b"b; id"], b"");
        let pc = PolicyChecker::new();
        let tiny = Budget::new(None, Some(1), None);
        let r = pc.check_hotspot_cached("shell", &g, root, &tiny, &PreparedCache::new());
        assert!(!r.is_safe(), "exhausted budget must not verify: {r}");
        assert!(r.findings.iter().all(|f| f.kind == CheckKind::BudgetExhausted));
        assert!(!r.degradations.is_empty());
    }

    #[test]
    fn dispatch_matches_dedicated_checkers() {
        // SQL and XSS hotspots routed through the façade must produce
        // the same reports as the dedicated checkers (same objects).
        let pc = PolicyChecker::new();
        let mut g = Cfg::new();
        let x = g.add_nonterminal("_GET[id]");
        g.set_taint(x, Taint::DIRECT);
        g.add_literal_production(x, b"1'; DROP TABLE t; --");
        let root = g.add_nonterminal("query");
        let mut rhs = g.literal_symbols(b"SELECT * FROM t WHERE id='");
        rhs.push(Symbol::N(x));
        rhs.extend(g.literal_symbols(b"'"));
        g.add_production(root, rhs);

        let budget = Budget::unlimited();
        let a = pc.check_hotspot_cached("sql", &g, root, &budget, &PreparedCache::new());
        let b = pc.sql().check_hotspot_with(&g, root, &budget);
        assert_eq!(a.findings.len(), b.findings.len());
        assert_eq!(a.findings[0].kind, b.findings[0].kind);
        assert_eq!(a.findings[0].witness, b.findings[0].witness);

        let (h, hroot) = harness(b"<p>", &[b"<script>x</script>"], b"</p>");
        let a = pc.check_hotspot_cached("xss", &h, hroot, &budget, &PreparedCache::new());
        let b = pc.xss().check_echo_with(&h, hroot, &budget);
        assert_eq!(a.findings.len(), b.findings.len());
        assert_eq!(a.findings[0].detail, b.findings[0].detail);
    }

    #[test]
    fn parallel_multi_policy_matches_serial() {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("_GET[f]");
        g.set_taint(x, Taint::DIRECT);
        g.add_literal_production(x, b"ok");
        g.add_literal_production(x, b"../secret");
        let mk = |g: &mut Cfg, pre: &[u8]| {
            let root = g.add_nonterminal("arg");
            let mut rhs = g.literal_symbols(pre);
            rhs.push(Symbol::N(x));
            g.add_production(root, rhs);
            root
        };
        let r1 = mk(&mut g, b"cat ");
        let r2 = mk(&mut g, b"pages/");
        let r3 = mk(&mut g, b"");
        let items = vec![
            (r1, "shell".to_string()),
            (r2, "path".to_string()),
            (r3, "eval".to_string()),
        ];
        let pc = PolicyChecker::new();
        let budget = Budget::unlimited();
        let serial: Vec<_> = items
            .iter()
            .map(|(r, p)| pc.check_hotspot_cached(p, &g, *r, &budget, &PreparedCache::new()))
            .collect();
        let parallel = pc.check_hotspots_with(&g, &items, &budget, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.findings.len(), p.findings.len());
            assert_eq!(s.verified, p.verified);
            for (sf, pf) in s.findings.iter().zip(&p.findings) {
                assert_eq!(sf.kind, pf.kind);
                assert_eq!(sf.witness, pf.witness);
            }
        }
    }
}
