//! Cross-page memoization of intersection verdicts.
//!
//! Pages that share includes keep asking the engine the same question:
//! the same (structurally identical) tainted grammar intersected with
//! the same check automaton under the same budget class. This cache
//! memoizes those verdicts the way `SummaryCache` already dedupes
//! lowering, collapsing the checking wall across hotspots and pages.
//!
//! ## Key derivation
//!
//! A cached verdict is only sound to replay when the replayed
//! computation would have been *identical*. The key therefore captures
//! every input the fixpoint depends on:
//!
//! - `scope` — the session [`Config`] fingerprint, stamped by the
//!   driver via [`QueryCache::set_scope`]. Changing analysis options
//!   re-namespaces every key, so verdicts computed under one config can
//!   never answer queries made under another (mirrors the artifact
//!   store, which keys evidence by the same fingerprint).
//! - `grammar` — the [`PreparedGrammar`] content fingerprint (128-bit,
//!   two independent FNV streams). Equal fingerprints mean an
//!   identical normalized production sequence, which drives an
//!   identical fixpoint: same discovery order, same fuel charges, same
//!   triple count, same canonical witness.
//! - `dfa` — the content fingerprint of the check automaton's
//!   byte-class form (tables, start, accepting set).
//! - `mode` — emptiness-only versus emptiness-or-witness, and for the
//!   latter whether the caller's reachable-production guard suppressed
//!   extraction ([`Mode::Witness::guarded`]); the guard changes which
//!   phases run, so it must split the key.
//! - `fuel_limit` / `grammar_cap` — the *budget class*. A verdict
//!   computed under one fuel ceiling may not answer a query under
//!   another: the same computation could complete under the first and
//!   trip under the second. The wall-clock deadline is deliberately
//!   not part of the class — it never alters the fuel accounting of a
//!   trip-free run, only whether the run survives, and tripped runs
//!   are never cached.
//!
//! ## Replay parity
//!
//! Only trip-free computations are inserted. Replay re-charges the
//! recorded fuel against the caller's live budget ([`Verdict`] stores
//! the per-phase charge counts), so a replayed verdict consumes
//! exactly the fuel the recomputation would have, trips exactly when
//! the recomputation would have tripped, and a post-trip latched budget
//! behaves identically either way. See `Engine::is_empty` /
//! `Engine::is_empty_or_witness` for the charging discipline.
//!
//! ## Concurrency
//!
//! The parallel hotspot driver hammers the cache from every worker, so
//! it is striped: 16 mutex shards selected by key hash, each with its
//! own FIFO eviction queue. Hit/miss/eviction counts are *not* kept
//! here — workers accumulate them in their thread-local
//! [`EngineStats`](strtaint_grammar::stats::EngineStats) and merge,
//! keeping the hot path lock-free beyond the shard probe itself.
//!
//! [`Config`]: strtaint_policy::Config
//! [`PreparedGrammar`]: strtaint_grammar::prepared::PreparedGrammar

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards.
const SHARDS: usize = 16;

/// Per-shard entry cap; total capacity is `SHARDS * PER_SHARD_CAP`.
const PER_SHARD_CAP: usize = 512;

/// Which engine entry point the verdict answers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Mode {
    /// `Engine::is_empty` — early-exit emptiness only.
    Empty,
    /// `Engine::is_empty_or_witness`.
    Witness {
        /// Whether the caller's reachable-production guard suppressed
        /// witness extraction. Computed *before* lookup so that two
        /// call sites sharing a grammar fingerprint but differing in
        /// guard outcome can never exchange verdicts.
        guarded: bool,
    },
}

/// Complete identity of one engine query. See the module docs for why
/// each component is load-bearing.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct QueryKey {
    pub scope: u64,
    pub grammar: (u64, u64),
    pub dfa: u64,
    pub mode: Mode,
    pub fuel_limit: Option<u64>,
    pub grammar_cap: Option<usize>,
}

/// A memoized verdict plus everything needed to replay it with
/// byte-identical observable behavior: the answer, the canonical
/// witness, and the per-phase fuel charges to re-apply.
#[derive(Clone, Debug)]
pub(crate) enum Verdict {
    /// Result of an emptiness-only query.
    Empty {
        empty: bool,
        /// Fuel the fixpoint charged; replayed with one bulk charge.
        fuel: u64,
        /// Realized triples, for stats parity.
        triples: u64,
    },
    /// Result of an emptiness-or-witness query.
    Witness {
        empty: bool,
        /// Canonical (length, lex)-minimal witness when nonempty and
        /// extraction ran; stored *uncapped* — display truncation is a
        /// rendering concern.
        witness: Option<Vec<u8>>,
        /// Fuel charged by the emptiness fixpoint (replay propagates a
        /// trip, exactly like the live query).
        fuel_query: u64,
        /// Fuel charged by resumption + reconstruction (replay
        /// swallows a trip into a missing witness, exactly like the
        /// live `.ok()` path).
        fuel_witness: u64,
        /// Triples realized by the emptiness phase alone.
        triples_query: u64,
        /// Triples realized after reconstruction.
        triples_final: u64,
    },
}

#[derive(Default)]
struct Shard {
    map: HashMap<QueryKey, Verdict>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<QueryKey>,
}

/// The cross-page verdict cache. One per checker, shared by all pages
/// and worker threads of a run.
pub(crate) struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    /// Current config-fingerprint namespace, mixed into every key.
    /// Stamping a new scope leaves stale entries in place but
    /// unreachable — they age out by FIFO — which keeps a daemon
    /// flipping between per-request configs from thrashing a shared
    /// checker.
    scope: AtomicU64,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("shards", &self.shards.len())
            .field("scope", &self.scope.load(Ordering::Relaxed))
            .finish()
    }
}

impl QueryCache {
    pub(crate) fn new() -> Self {
        QueryCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            scope: AtomicU64::new(0),
        }
    }

    /// Stamps the config-fingerprint namespace for subsequent keys.
    pub(crate) fn set_scope(&self, scope: u64) {
        self.scope.store(scope, Ordering::Relaxed);
    }

    /// The namespace callers must put in [`QueryKey::scope`].
    pub(crate) fn scope(&self) -> u64 {
        self.scope.load(Ordering::Relaxed)
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks up a verdict. A poisoned shard (worker panic while
    /// holding the lock) degrades to a miss — the caller recomputes.
    pub(crate) fn get(&self, key: &QueryKey) -> Option<Verdict> {
        let shard = self.shard(key).lock().ok()?;
        shard.map.get(key).cloned()
    }

    /// Inserts a verdict, returning how many entries were evicted to
    /// make room (usually 0 or 1; surfaced as `qcache.evictions`).
    pub(crate) fn insert(&self, key: QueryKey, verdict: Verdict) -> u64 {
        let Ok(mut shard) = self.shard(&key).lock() else {
            return 0;
        };
        if shard.map.insert(key.clone(), verdict).is_none() {
            shard.order.push_back(key);
        }
        let mut evicted = 0;
        while shard.map.len() > PER_SHARD_CAP {
            let Some(old) = shard.order.pop_front() else {
                break;
            };
            if shard.map.remove(&old).is_some() {
                evicted += 1;
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> QueryKey {
        QueryKey {
            scope: 7,
            grammar: (n, n ^ 0xabcd),
            dfa: 3,
            mode: Mode::Empty,
            fuel_limit: None,
            grammar_cap: None,
        }
    }

    #[test]
    fn roundtrip_and_namespacing() {
        let c = QueryCache::new();
        let k = key(1);
        assert!(c.get(&k).is_none());
        c.insert(
            k.clone(),
            Verdict::Empty {
                empty: true,
                fuel: 42,
                triples: 9,
            },
        );
        match c.get(&k) {
            Some(Verdict::Empty {
                empty: true,
                fuel: 42,
                triples: 9,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        // A different scope is a different key entirely.
        let mut other_scope = k.clone();
        other_scope.scope = 8;
        assert!(c.get(&other_scope).is_none());
        // So are a different mode and budget class.
        let mut other_mode = k.clone();
        other_mode.mode = Mode::Witness { guarded: false };
        assert!(c.get(&other_mode).is_none());
        let mut other_fuel = k;
        other_fuel.fuel_limit = Some(10);
        assert!(c.get(&other_fuel).is_none());
    }

    #[test]
    fn reinsert_does_not_duplicate_order() {
        let c = QueryCache::new();
        for _ in 0..10 {
            c.insert(
                key(1),
                Verdict::Empty {
                    empty: false,
                    fuel: 0,
                    triples: 0,
                },
            );
        }
        let shard = c.shard(&key(1)).lock().unwrap();
        assert_eq!(shard.map.len(), 1);
        assert_eq!(shard.order.len(), 1);
    }

    #[test]
    fn fifo_eviction_is_bounded_and_counted() {
        let c = QueryCache::new();
        let mut evicted = 0;
        // Far more keys than total capacity.
        for n in 0..(SHARDS * PER_SHARD_CAP * 2) as u64 {
            evicted += c.insert(
                key(n),
                Verdict::Empty {
                    empty: true,
                    fuel: 1,
                    triples: 1,
                },
            );
        }
        let total: usize = c
            .shards
            .iter()
            .map(|s| {
                let s = s.lock().unwrap();
                assert_eq!(s.map.len(), s.order.len());
                assert!(s.map.len() <= PER_SHARD_CAP);
                s.map.len()
            })
            .sum();
        assert!(total <= SHARDS * PER_SHARD_CAP);
        assert!(evicted > 0);
        assert_eq!(evicted as usize + total, SHARDS * PER_SHARD_CAP * 2);
    }
}
