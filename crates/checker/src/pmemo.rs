//! Cross-page preparation memo: content-addressed sharing of
//! [`PreparedGrammar`]s and canonical example-query skeletons.
//!
//! The query cache (see [`crate::qcache`]) collapses the *fixpoint*
//! cost of re-checking a page, but a warm re-check still paid two
//! setup walls on every pass:
//!
//! 1. **Preparation** — `PreparedGrammar::new` (trim + binary
//!    normalization + occurrence indexing) ran again for every
//!    hotspot subgrammar and for every check-local marked grammar,
//!    because the per-batch [`PreparedCache`](strtaint_grammar::prepared::PreparedCache)
//!    is keyed by `NtId` and scoped to one `Cfg`.
//! 2. **Skeleton reconstruction** — the example-query splice runs a
//!    canonical `shortest_string` over the whole marked page grammar
//!    per reporting hotspot.
//!
//! Both are *pure functions of grammar content*, so this module keys
//! them by a structural fingerprint of the reachable subgrammar and
//! shares them across pages, calls, and worker threads. Crucially,
//! check-local *marked grammars* (and their skeletons) are keyed by
//! the fingerprint of the *page* subgrammar plus the marked
//! nonterminal's content-stable position — the inputs of
//! `marked_grammar`, not its output — so a warm hit skips not only
//! the preparation but the whole-grammar clone that builds the marked
//! grammar in the first place.
//!
//! # Soundness of sharing
//!
//! [`subgrammar_fingerprint`] hashes everything `PreparedGrammar::new`
//! and `shortest_string` can observe: the production structure of the
//! subgrammar reachable from the root (with nonterminals renumbered in
//! deterministic discovery order, so absolute `NtId`s don't matter),
//! every terminal byte, every nonterminal *name*, and every taint
//! label. Preparation and canonical-witness reconstruction are
//! deterministic functions of exactly that content, so — up to hash
//! collision on the 128-bit fingerprint — a memo hit returns an object
//! byte-identical in every observable way to what recomputation would
//! build. Names and taints are included even though engine verdicts
//! ignore them, because prepared grammars carry them into
//! reconstructed result grammars (`root_name`/`root_taint` parity with
//! the naive engine).
//!
//! The memo is an optimization cache, never an oracle: entries are
//! evicted FIFO past a bounded capacity and rebuilt on demand, and the
//! whole memo is disabled together with the query cache
//! (`--no-query-cache`), keeping one escape hatch for the entire
//! optimized check path.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use strtaint_grammar::lang::shortest_string;
use strtaint_grammar::prepared::PreparedGrammar;
use strtaint_grammar::{Cfg, NtId, Symbol};

use crate::abstraction::marked_grammar;

/// Prepared grammars retained (each is a trimmed, normalized, indexed
/// copy of a hotspot subgrammar — the heavyweight entries).
const PREPARED_CAP: usize = 512;

/// Canonical skeletons retained (short byte strings — cheap entries).
const SKELETON_CAP: usize = 4096;

/// Two word-wise FNV-1a streams with distinct offset bases, advanced
/// in lockstep so one grammar traversal yields a 128-bit combined key
/// (same two-stream scheme as the prepared grammar's
/// post-normalization fingerprint). Word-wise mixing — one
/// xor-multiply per encoded `u64`, not per byte — keeps the
/// fingerprint cheap enough to run on every warm lookup: it *is* the
/// cache key computation, so it sits on the hot path of a fully
/// memoized pass.
struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv2 {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    fn word(&mut self, w: u64) {
        self.a = (self.a ^ w).wrapping_mul(Self::PRIME);
        self.b = (self.b ^ w).wrapping_mul(Self::PRIME);
    }

    /// Length-prefixed so adjacent variable-length fields can't alias.
    fn bytes(&mut self, bs: &[u8]) {
        self.word(bs.len() as u64);
        for chunk in bs.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.word(u64::from_le_bytes(buf));
        }
    }
}

/// Structural fingerprint of the subgrammar of `g` reachable from
/// `root`: production shapes, terminal bytes, nonterminal names, and
/// taint labels, with nonterminals renumbered in deterministic
/// discovery order. Equal fingerprints mean — up to collision —
/// content-identical subgrammars, for which preparation and canonical
/// reconstruction produce observationally identical results.
#[cfg(test)]
fn subgrammar_fingerprint(g: &Cfg, root: NtId) -> (u64, u64) {
    fingerprint_with_locals(g, root).0
}

/// Production count of the subgrammar of `g` reachable from `root`
/// (exact, uncapped). Matches `Cfg::count_reachable_productions` on
/// reachable sets, so `count > cap` answers the same guards.
#[cfg(test)]
fn subgrammar_production_count(g: &Cfg, root: NtId) -> usize {
    fingerprint_with_locals(g, root).2
}

/// Sentinel in the dense local-id table for "not reachable from the
/// root" (never a real local id: there are at most `u32::MAX - 1`
/// nonterminals).
const UNDISCOVERED: u32 = u32::MAX;

/// [`subgrammar_fingerprint`] plus the discovery-order renumbering it
/// used — `locals[x.index()]` is the content-stable position of `x`
/// within the subgrammar ([`UNDISCOVERED`] if unreachable), the second
/// half of derived keys ([`derive_key`]) — plus the subgrammar's
/// reachable production count. The count falls out of the traversal
/// for free and lets callers answer the witness-reconstruction guard
/// (`count_reachable_productions(root, cap) > cap`) without a second
/// full walk.
fn fingerprint_with_locals(g: &Cfg, root: NtId) -> ((u64, u64), Vec<u32>, usize) {
    let _span = strtaint_obs::Span::enter("pmemo:fp", "");
    // Discovery order: depth-first from the root, productions in
    // declaration order, right-hand sides left to right. The local id
    // of a nonterminal is its position in this order, so two
    // structurally identical subgrammars at different absolute NtIds
    // renumber identically.
    let mut local = vec![UNDISCOVERED; g.num_nonterminals()];
    let mut order: Vec<NtId> = Vec::new();
    let mut stack = vec![root];
    local[root.index()] = 0;
    order.push(root);
    while let Some(nt) = stack.pop() {
        for rhs in g.productions(nt) {
            for sym in rhs {
                if let Symbol::N(x) = sym {
                    if local[x.index()] == UNDISCOVERED {
                        local[x.index()] = order.len() as u32;
                        order.push(*x);
                        stack.push(*x);
                    }
                }
            }
        }
    }

    let mut h = Fnv2::new();
    let mut count = 0usize;
    h.word(order.len() as u64);
    for &nt in &order {
        h.bytes(g.name(nt).as_bytes());
        let t = g.taint(nt);
        h.word(u64::from(
            u8::from(t.is_direct()) | (u8::from(t.is_indirect()) << 1),
        ));
        let prods = g.productions(nt);
        count += prods.len();
        h.word(prods.len() as u64);
        for rhs in prods {
            h.word(rhs.len() as u64);
            for sym in rhs {
                // Injective symbol encoding: terminals fit in the low
                // byte, nonterminal references set bit 32.
                match sym {
                    Symbol::T(b) => h.word(u64::from(*b)),
                    Symbol::N(x) => h.word((1 << 32) | u64::from(local[x.index()])),
                }
            }
        }
    }
    ((h.a, h.b), local, count)
}

/// Tag for keys of plain `(g, root)` preparations.
const TAG_PLAIN: u8 = 0;
/// Tag for keys of marked-grammar preparations (`marked_grammar` of
/// `(g, root, x)` with no replacements).
const TAG_MARKED: u8 = 1;
/// Tag for keys of example-query skeletons of the same marked grammar.
const TAG_SKELETON: u8 = 2;

/// Derives a store key from a subgrammar fingerprint, the local id of
/// the distinguished nonterminal (`u32::MAX` when there is none), and
/// a domain-separation tag. This is what lets marked grammars and
/// skeletons be memoized *without constructing them*: the marked
/// grammar is a pure function of the subgrammar reachable from `root`
/// and of `x`'s content-stable position in it, so `(fingerprint,
/// local(x))` already names the result.
fn derive_key(fp: (u64, u64), x_local: u32, tag: u8) -> (u64, u64) {
    let mut h = Fnv2 { a: fp.0, b: fp.1 };
    h.word(u64::from(x_local) | (u64::from(tag) << 32));
    (h.a, h.b)
}

/// One bounded FIFO map shard: insertion order drives eviction.
struct Store<V> {
    map: HashMap<(u64, u64), V>,
    order: VecDeque<(u64, u64)>,
    cap: usize,
}

impl<V: Clone> Store<V> {
    fn new(cap: usize) -> Self {
        Store {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    fn get(&self, key: &(u64, u64)) -> Option<V> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: (u64, u64), value: V) -> V {
        // First writer wins, so racing workers converge on one shared
        // entry exactly like `PreparedCache`.
        if let Some(existing) = self.map.get(&key) {
            return existing.clone();
        }
        self.map.insert(key, value.clone());
        self.order.push_back(key);
        while self.map.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            } else {
                break;
            }
        }
        value
    }
}

/// The cross-page preparation memo shared by every page and worker a
/// checker serves. All fallible lock states degrade to recomputation —
/// the memo can make nothing wrong, only some things slower.
pub(crate) struct PreparedMemo {
    prepared: Mutex<Store<Arc<PreparedGrammar>>>,
    skeletons: Mutex<Store<Option<Vec<u8>>>>,
}

impl std::fmt::Debug for PreparedMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedMemo").finish_non_exhaustive()
    }
}

impl PreparedMemo {
    pub(crate) fn new() -> Self {
        PreparedMemo {
            prepared: Mutex::new(Store::new(PREPARED_CAP)),
            skeletons: Mutex::new(Store::new(SKELETON_CAP)),
        }
    }

    /// Returns the prepared grammar for `(g, root)`, sharing a prior
    /// preparation of any content-identical subgrammar. The boolean is
    /// `true` on a memo hit; the count is the subgrammar's reachable
    /// production total, a free byproduct of the key traversal that
    /// answers the witness-reconstruction guard without another walk.
    pub(crate) fn prepared(&self, g: &Cfg, root: NtId) -> (Arc<PreparedGrammar>, bool, usize) {
        let (fp, _, count) = fingerprint_with_locals(g, root);
        let key = derive_key(fp, u32::MAX, TAG_PLAIN);
        if let Ok(store) = self.prepared.lock() {
            if let Some(p) = store.get(&key) {
                return (p, true, count);
            }
        }
        // Prepare outside the lock: preparation is the expensive part,
        // and a racing duplicate is resolved by first-writer-wins.
        let prep = Arc::new(PreparedGrammar::new(g, root));
        match self.prepared.lock() {
            Ok(mut store) => (store.insert(key, prep), false, count),
            Err(_) => (prep, false, count),
        }
    }

    /// Returns the prepared *marked grammar* of `(g, root, x)` — the
    /// context grammar both cascades query — sharing prior work across
    /// content-identical pages. On a hit the marked grammar is never
    /// even constructed: the key is derived from the page subgrammar
    /// fingerprint and `x`'s content-stable position, which fully
    /// determine `marked_grammar`'s (replacement-free) output.
    pub(crate) fn marked_prepared(&self, g: &Cfg, root: NtId, x: NtId) -> (Arc<PreparedGrammar>, bool) {
        let (fp, locals, _) = fingerprint_with_locals(g, root);
        let lx = locals.get(x.index()).copied().filter(|&v| v != UNDISCOVERED);
        let Some(lx) = lx else {
            // `x` unreachable from `root`: the marked grammar is not
            // content-addressable from this key, so build it directly.
            let (marked, mroot) = marked_grammar(g, root, x, &HashMap::new());
            return (Arc::new(PreparedGrammar::new(&marked, mroot)), false);
        };
        let key = derive_key(fp, lx, TAG_MARKED);
        if let Ok(store) = self.prepared.lock() {
            if let Some(p) = store.get(&key) {
                return (p, true);
            }
        }
        let (marked, mroot) = marked_grammar(g, root, x, &HashMap::new());
        let prep = Arc::new(PreparedGrammar::new(&marked, mroot));
        match self.prepared.lock() {
            Ok(mut store) => (store.insert(key, prep), false),
            Err(_) => (prep, false),
        }
    }

    /// Returns the canonical shortest string of the marked grammar of
    /// `(g, root, x)` — the example-query skeleton — computing it once
    /// per content-identical page. `None` (no finite string) is
    /// memoized too, and a hit skips the grammar construction exactly
    /// as in [`PreparedMemo::marked_prepared`]. `cap` is the
    /// reconstruction guard: grammars with more reachable productions
    /// yield `None`, the same decision as
    /// `count_reachable_productions(root, cap) > cap` — answered here
    /// from the key traversal's own count.
    pub(crate) fn skeleton_for(&self, g: &Cfg, root: NtId, x: NtId, cap: usize) -> Option<Vec<u8>> {
        let (fp, locals, count) = fingerprint_with_locals(g, root);
        if count > cap {
            return None;
        }
        let lx = locals.get(x.index()).copied().filter(|&v| v != UNDISCOVERED);
        let Some(lx) = lx else {
            let (marked, mroot) = marked_grammar(g, root, x, &HashMap::new());
            return shortest_string(&marked, mroot);
        };
        let key = derive_key(fp, lx, TAG_SKELETON);
        if let Ok(store) = self.skeletons.lock() {
            if let Some(s) = store.get(&key) {
                return s;
            }
        }
        let (marked, mroot) = marked_grammar(g, root, x, &HashMap::new());
        let skeleton = shortest_string(&marked, mroot);
        match self.skeletons.lock() {
            Ok(mut store) => store.insert(key, skeleton),
            Err(_) => skeleton,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strtaint_grammar::Taint;

    fn sample(name_suffix: &str) -> (Cfg, NtId) {
        let mut g = Cfg::new();
        let x = g.add_nonterminal(format!("x{name_suffix}"));
        g.set_taint(x, Taint::DIRECT);
        g.add_literal_production(x, b"1");
        let root = g.add_nonterminal("query");
        let mut rhs = g.literal_symbols(b"SELECT ");
        rhs.push(Symbol::N(x));
        g.add_production(root, rhs);
        (g, root)
    }

    #[test]
    fn fingerprint_ignores_absolute_ids() {
        let (g1, r1) = sample("");
        // Same content shifted to different absolute NtIds.
        let mut g2 = Cfg::new();
        for i in 0..7 {
            g2.add_nonterminal(format!("pad{i}"));
        }
        let r2 = g2.import_from(&g1, r1);
        assert_eq!(
            subgrammar_fingerprint(&g1, r1),
            subgrammar_fingerprint(&g2, r2)
        );
    }

    #[test]
    fn fingerprint_sees_names_taints_and_structure() {
        let (g1, r1) = sample("");
        let (g2, r2) = sample("renamed");
        assert_ne!(
            subgrammar_fingerprint(&g1, r1),
            subgrammar_fingerprint(&g2, r2),
            "name change must change the fingerprint"
        );
        let (mut g3, r3) = sample("");
        let extra = g3.add_nonterminal("x");
        g3.add_literal_production(extra, b"2");
        g3.add_production(r3, vec![Symbol::N(extra)]);
        assert_ne!(
            subgrammar_fingerprint(&g1, r1),
            subgrammar_fingerprint(&g3, r3),
            "structure change must change the fingerprint"
        );
    }

    #[test]
    fn memo_shares_preparation_and_skeleton() {
        let memo = PreparedMemo::new();
        let (g, root) = sample("");
        let (p1, hit1, _) = memo.prepared(&g, root);
        let (p2, hit2, _) = memo.prepared(&g, root);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn marked_memo_matches_direct_construction() {
        let memo = PreparedMemo::new();
        let (g, root) = sample("");
        let x = g
            .nonterminals()
            .find(|&n| g.name(n) == "x")
            .expect("sample tainted nonterminal");
        let (m1, hit1) = memo.marked_prepared(&g, root, x);
        let (m2, hit2) = memo.marked_prepared(&g, root, x);
        assert!(!hit1);
        assert!(hit2, "second call must hit without reconstructing");
        assert!(Arc::ptr_eq(&m1, &m2));
        // A hit returns exactly what direct construction would build.
        let (marked, mroot) = marked_grammar(&g, root, x, &HashMap::new());
        let direct = PreparedGrammar::new(&marked, mroot);
        assert_eq!(m1.fingerprint(), direct.fingerprint());

        let s1 = memo.skeleton_for(&g, root, x, 50_000);
        let s2 = memo.skeleton_for(&g, root, x, 50_000);
        assert_eq!(s1, s2);
        assert_eq!(s1, shortest_string(&marked, mroot));
        // The size guard fires from the traversal's own count.
        assert_eq!(memo.skeleton_for(&g, root, x, 0), None);
    }

    #[test]
    fn traversal_count_matches_cfg_count() {
        let (g, root) = sample("");
        let n = subgrammar_production_count(&g, root);
        assert_eq!(n, g.count_reachable_productions(root, usize::MAX - 1));
        // An unreachable extra production must not count.
        let mut g2 = g;
        let stray = g2.add_nonterminal("stray");
        g2.add_literal_production(stray, b"zzz");
        assert_eq!(n, subgrammar_production_count(&g2, root));
    }
}
