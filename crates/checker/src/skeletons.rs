//! Query-skeleton export: the per-hotspot evidence the remediation
//! layer (`strtaint-remedy`) turns into fix plans and runtime guard
//! profiles.
//!
//! A *skeleton* is the canonical (length, lex)-minimal string of the
//! hotspot's marked grammar: the shortest query the program can build
//! with [`strtaint_sql::VAR_MARKER`] standing in at one tainted
//! position. The set of skeletons over every maximal labeled
//! nonterminal describes the *shapes* this hotspot ever sends to the
//! downstream interpreter — exactly the SQLBlock-style allowlist a
//! runtime guard needs, and exactly the context evidence a fix planner
//! needs to pick a quoted-position vs numeric-position sanitizer.
//!
//! Derivation is shared with witness splicing: with a `PreparedMemo`
//! the skeleton is content-addressed, so exporting it after a check is
//! a cache hit, and a daemon warm replay serves the identical bytes.
//! Hotspots whose grammar exceeds the reconstruction budget export an
//! incomplete set (`complete == false`) rather than an unsound one.

use std::collections::HashMap;

use strtaint_grammar::lang::shortest_string;
use strtaint_grammar::{Cfg, NtId};

use crate::abstraction::{marked_grammar, maximal_labeled};
use crate::pmemo::PreparedMemo;

/// Reconstruction budget, aligned with witness splicing so a hotspot
/// that can render an `example_query` can always render its skeleton.
const SKELETON_BUDGET: usize = 50_000;

/// Derives the skeleton set for one hotspot: one canonical marked
/// shortest string per maximal labeled nonterminal, sorted and
/// deduplicated. An untainted hotspot (no labeled nonterminals)
/// exports its canonical minimal query as the single representative
/// shape. Returns `(skeletons, complete)`; `complete` is `false` when
/// any candidate exceeded the reconstruction budget or derives no
/// finite string.
pub(crate) fn hotspot_skeletons(
    cfg: &Cfg,
    root: NtId,
    memo: Option<&PreparedMemo>,
) -> (Vec<Vec<u8>>, bool) {
    let candidates = maximal_labeled(cfg, root);
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut complete = true;
    if candidates.is_empty() {
        if cfg.count_reachable_productions(root, SKELETON_BUDGET) > SKELETON_BUDGET {
            complete = false;
        } else {
            match shortest_string(cfg, root) {
                Some(s) => out.push(s),
                None => complete = false,
            }
        }
    }
    for &x in &candidates {
        let skeleton = match memo {
            Some(m) => m.skeleton_for(cfg, root, x, SKELETON_BUDGET),
            None => {
                if cfg.count_reachable_productions(root, SKELETON_BUDGET) > SKELETON_BUDGET {
                    None
                } else {
                    let (marked, mroot) = marked_grammar(cfg, root, x, &HashMap::new());
                    shortest_string(&marked, mroot)
                }
            }
        };
        match skeleton {
            Some(s) => out.push(s),
            None => complete = false,
        }
    }
    out.sort();
    out.dedup();
    (out, complete)
}

/// Renders one skeleton for display or profile export: lossy UTF-8
/// with the tainted-position marker shown as `?` (the placeholder
/// convention of prepared statements).
pub fn skeleton_display(bytes: &[u8]) -> String {
    let printable: Vec<u8> = bytes
        .iter()
        .map(|&b| {
            if b == strtaint_sql::VAR_MARKER {
                b'?'
            } else {
                b
            }
        })
        .collect();
    String::from_utf8_lossy(&printable).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strtaint_grammar::{Symbol, Taint};

    /// `query -> "SELECT * FROM t WHERE id='" X "'"`, X tainted.
    fn harness() -> (Cfg, NtId) {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("_GET[id]");
        g.set_taint(x, Taint::DIRECT);
        g.add_literal_production(x, b"1");
        g.add_literal_production(x, b"1' OR '1'='1");
        let root = g.add_nonterminal("query");
        let mut rhs = g.literal_symbols(b"SELECT * FROM t WHERE id='");
        rhs.push(Symbol::N(x));
        rhs.push(Symbol::T(b'\''));
        g.add_production(root, rhs);
        (g, root)
    }

    #[test]
    fn tainted_hotspot_exports_marked_skeleton() {
        let (g, root) = harness();
        let (sk, complete) = hotspot_skeletons(&g, root, None);
        assert!(complete);
        assert_eq!(sk.len(), 1);
        assert_eq!(
            skeleton_display(&sk[0]),
            "SELECT * FROM t WHERE id='?'"
        );
    }

    #[test]
    fn memoized_and_direct_paths_agree() {
        let (g, root) = harness();
        let memo = PreparedMemo::new();
        let (direct, _) = hotspot_skeletons(&g, root, None);
        let (memoized, complete) = hotspot_skeletons(&g, root, Some(&memo));
        assert!(complete);
        assert_eq!(direct, memoized);
    }

    #[test]
    fn constant_hotspot_exports_minimal_query() {
        let mut g = Cfg::new();
        let root = g.add_nonterminal("query");
        g.add_literal_production(root, b"SELECT 1");
        g.add_literal_production(root, b"SELECT 1 FROM dual");
        let (sk, complete) = hotspot_skeletons(&g, root, None);
        assert!(complete);
        assert_eq!(sk, vec![b"SELECT 1".to_vec()]);
    }

    #[test]
    fn unproductive_grammar_is_incomplete() {
        let mut g = Cfg::new();
        let root = g.add_nonterminal("query");
        // root -> root: no finite string derivable.
        g.add_production(root, vec![Symbol::N(root)]);
        let (sk, complete) = hotspot_skeletons(&g, root, None);
        assert!(sk.is_empty());
        assert!(!complete);
    }
}
