//! The policy-conformance checking pipeline (paper §3.2).
//!
//! For each *maximal* labeled nonterminal `X` reachable from a hotspot
//! root, the checks run in the paper's order:
//!
//! 1. **C1 — odd unescaped quotes**: if `L(X)` intersects the language
//!    of strings with an odd number of unescaped quotes, `X` cannot be
//!    syntactically confined in any query → report.
//! 2. **C2 — string-literal position**: if every occurrence of `X` in
//!    the query language sits inside a string literal, then `X` is safe
//!    iff it cannot produce an unescaped quote.
//! 3. **C3 — numeric literals**: if `L(X)` ⊆ numeric literals, safe.
//! 4. **C4 — attack strings**: if `X` derives a known non-confinable
//!    fragment, report.
//! 5. **C5 — derivability** (§3.2.2): enumerate the query contexts with
//!    `X` held by a marker; for each context find a SQL grammar symbol
//!    the marker can stand for (sentential-form Earley) whose lexeme
//!    language contains `L(X)`. Anything inconclusive → report
//!    (soundness, Theorem 3.4).

use std::collections::HashMap;
use std::sync::Arc;

use strtaint_grammar::budget::{Budget, BudgetExceeded, DegradeAction};
use strtaint_grammar::lang::{bounded_language, shortest_string};
use strtaint_grammar::prepared::PreparedCache;
use strtaint_grammar::{Cfg, NtId};
use strtaint_sql::derive::{context_candidates_with, lexeme_dfa};
use strtaint_sql::{lex_form, SqlGrammar, TokenKind, VarPosition};

use crate::abstraction::{marked_grammar, maximal_labeled};
use crate::dfas;
use crate::engine::{run_parallel, Engine, Qdfa, Target};
use crate::pmemo::PreparedMemo;
use crate::prefilter::Prefilter;
use crate::qcache::QueryCache;
use crate::report::{CheckKind, Finding, HotspotReport};

/// Tunables for the conformance checker.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Maximum number of query context strings enumerated for the
    /// derivability check before reporting `Unresolved`.
    pub max_contexts: usize,
    /// Route every intersection through the naive reference engine
    /// (re-trim + re-normalize per query) instead of the prepared one.
    /// The cold baseline for benches and equivalence tests; verdicts
    /// are identical either way.
    pub naive_engine: bool,
    /// Run the sub-millisecond C3 prover (numeric-only language) ahead
    /// of the C1/C2 refuters and short-circuit on its verdict. Verdicts
    /// are unchanged — a numeric-only `L(X)` contains no quote byte, so
    /// C1 (odd quotes) and the C2 escape arm (needs a quote) can never
    /// fire on it — only the engine work order moves. Off reproduces
    /// the paper's published C1→C5 order for equivalence tests.
    pub cheap_first: bool,
    /// Memoize intersection verdicts across hotspots and pages (the
    /// cross-page query cache; see the `qcache` module). Replay is
    /// observationally identical to recomputation — same verdicts,
    /// same canonical witness bytes, same fuel charges. Off
    /// (`--no-query-cache`) recomputes every query; the baseline for
    /// benches and the cache-parity tests.
    pub query_cache: bool,
    /// Never replay witness bytes from the query cache: witness-mode
    /// queries bypass memoization and extract live
    /// (`--eager-witness`). Emptiness-only queries still memoize.
    pub eager_witness: bool,
    /// Skip the C4 intersection when the Aho–Corasick prefilter proves
    /// no attack fragment is spellable over the prepared grammar's
    /// realized terminal alphabet (see the `prefilter` module for the
    /// soundness argument — the filter can only ever prove absence).
    pub prefilter: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_contexts: 256,
            naive_engine: false,
            cheap_first: true,
            query_cache: true,
            eager_witness: false,
            prefilter: true,
        }
    }
}

/// Precompiled check automata, shareable across hotspots.
#[derive(Debug, Clone)]
pub struct Checker {
    sql: SqlGrammar,
    odd_quotes: Qdfa,
    has_quote: Qdfa,
    marker_outside: Qdfa,
    non_numeric: Qdfa,
    keywords: Qdfa,
    attack: Qdfa,
    backquote: Qdfa,
    /// Aho–Corasick prefilter over the same fragments as `attack`.
    prefilter: Prefilter,
    /// Cross-page verdict cache, shared by every page and worker
    /// thread served by this checker (clones share it too).
    qcache: Option<Arc<QueryCache>>,
    /// Cross-page preparation + skeleton memo, content-keyed; enabled
    /// and disabled together with `qcache`.
    pmemo: Option<Arc<PreparedMemo>>,
    opts: CheckOptions,
}

impl Checker {
    /// Builds a checker with default options.
    pub fn new() -> Self {
        Self::with_options(CheckOptions::default())
    }

    /// Builds a checker with explicit options.
    pub fn with_options(opts: CheckOptions) -> Self {
        use strtaint_automata::{Dfa, Nfa};
        let backquote = Dfa::from_nfa(
            &Nfa::any_string()
                .concat(&Nfa::literal(b"`"))
                .concat(&Nfa::any_string()),
        )
        .minimize();
        Checker {
            sql: SqlGrammar::standard(),
            odd_quotes: Qdfa::new(dfas::odd_unescaped_quotes()),
            has_quote: Qdfa::new(dfas::contains_unescaped_quote()),
            marker_outside: Qdfa::new(dfas::marker_outside_literal()),
            non_numeric: Qdfa::new(dfas::numeric_literal().complement()),
            keywords: Qdfa::new(dfas::sql_keywords()),
            attack: Qdfa::new(dfas::attack_fragments()),
            backquote: Qdfa::new(backquote),
            prefilter: Prefilter::new(),
            // The naive path is the reference engine; it never
            // memoizes, whatever the options say.
            qcache: (opts.query_cache && !opts.naive_engine)
                .then(|| Arc::new(QueryCache::new())),
            pmemo: (opts.query_cache && !opts.naive_engine)
                .then(|| Arc::new(PreparedMemo::new())),
            opts,
        }
    }

    /// Stamps the config-fingerprint namespace for cross-page verdict
    /// memoization. Verdicts computed under one scope can never answer
    /// queries made under another; drivers call this whenever the
    /// effective analysis `Config` changes (mirroring the artifact
    /// store, which keys evidence by the same fingerprint).
    pub fn set_query_scope(&self, scope: u64) {
        if let Some(qc) = &self.qcache {
            qc.set_scope(scope);
        }
    }

    /// Returns the reference SQL grammar in use.
    pub fn sql_grammar(&self) -> &SqlGrammar {
        &self.sql
    }

    /// Exports this hotspot's canonical query-skeleton set (see
    /// [`crate::skeletons`]). Shares the prepared memo with witness
    /// splicing, so exporting after a check is a warm lookup.
    pub fn skeletons_for(&self, cfg: &Cfg, root: NtId) -> (Vec<Vec<u8>>, bool) {
        crate::skeletons::hotspot_skeletons(cfg, root, self.pmemo.as_deref())
    }

    /// Checks one hotspot: `root` must derive every query string the
    /// hotspot can send.
    pub fn check_hotspot(&self, cfg: &Cfg, root: NtId) -> HotspotReport {
        self.check_hotspot_with(cfg, root, &Budget::unlimited())
    }

    /// Budgeted form of [`Checker::check_hotspot`].
    ///
    /// A budget trip while checking a labeled nonterminal yields a
    /// [`CheckKind::BudgetExhausted`] finding and a degradation record —
    /// the nonterminal is *never* counted verified. This is the sound
    /// direction: exhaustion can only add false positives.
    pub fn check_hotspot_with(&self, cfg: &Cfg, root: NtId, budget: &Budget) -> HotspotReport {
        self.check_hotspot_cached(cfg, root, budget, &PreparedCache::new())
    }

    /// Like [`Checker::check_hotspot_with`], sharing `cache` so
    /// prepared grammars are reused across the hotspots of one page.
    ///
    /// `cache` must be scoped to `cfg`: it is keyed by root [`NtId`]
    /// only, and ids from different grammars collide.
    pub fn check_hotspot_cached(
        &self,
        cfg: &Cfg,
        root: NtId,
        budget: &Budget,
        cache: &PreparedCache,
    ) -> HotspotReport {
        let mut report = HotspotReport::default();
        let candidates = maximal_labeled(cfg, root);
        report.checked = candidates.len();
        let mut engine = Engine::new(
            cache,
            self.opts.naive_engine,
            self.qcache.as_deref(),
            self.pmemo.as_deref(),
            self.opts.eager_witness,
        );
        for &x in &candidates {
            let _span = strtaint_obs::Span::enter_with("check", || cfg.name(x).to_owned());
            match self.check_one(cfg, root, x, &candidates, budget, &mut engine) {
                Ok(None) => report.verified += 1,
                Ok(Some(finding)) => report.findings.push(finding),
                Err(err) => {
                    report.degradations.push(budget.degradation(
                        err,
                        format!("check:{}", cfg.name(x)),
                        DegradeAction::MarkedUnverified,
                    ));
                    report.findings.push(Finding {
                        nonterminal: x,
                        name: cfg.name(x).to_owned(),
                        taint: cfg.taint(x),
                        kind: CheckKind::BudgetExhausted,
                        witness: None,
                        witness_truncated: false,
                        example_query: None,
                        detail: err.to_string(),
                        at: None,
                    });
                }
            }
        }
        report.engine = engine.stats;
        for f in &mut report.findings {
            f.cap_witness();
        }
        report
    }

    /// Checks every hotspot root of one page, on up to `workers`
    /// threads, returning reports in input order.
    ///
    /// Hotspots are independent given the immutable `cfg`; a shared
    /// [`PreparedCache`] lets them reuse each other's prepared
    /// grammars (sinks frequently share roots or labeled sources). A
    /// worker panic propagates to the caller unchanged, so page-level
    /// fault isolation behaves exactly as in the serial loop.
    pub fn check_hotspots_with(
        &self,
        cfg: &Cfg,
        roots: &[NtId],
        budget: &Budget,
        workers: usize,
    ) -> Vec<HotspotReport> {
        let cache = PreparedCache::new();
        run_parallel(roots, workers, |&root| {
            self.check_hotspot_cached(cfg, root, budget, &cache)
        })
    }

    /// Splices a witness tainted substring into the shortest query
    /// context, producing the full query a database would receive.
    fn example_query(
        &self,
        cfg: &Cfg,
        root: NtId,
        x: NtId,
        witness: &[u8],
    ) -> Option<Vec<u8>> {
        splice_example_memo(cfg, root, x, witness, self.pmemo.as_deref())
    }

    fn check_one(
        &self,
        cfg: &Cfg,
        root: NtId,
        x: NtId,
        all: &[NtId],
        budget: &Budget,
        engine: &mut Engine<'_>,
    ) -> Result<Option<Finding>, BudgetExceeded> {
        let finding = |kind: CheckKind, witness: Option<Vec<u8>>, detail: String| {
            let example_query = witness
                .as_deref()
                .and_then(|w| self.example_query(cfg, root, x, w));
            Ok(Some(Finding {
                nonterminal: x,
                name: cfg.name(x).to_owned(),
                taint: cfg.taint(x),
                kind,
                witness,
                witness_truncated: false,
                example_query,
                detail,
                at: None,
            }))
        };
        // One prepared grammar serves every (cfg, x) query below —
        // C1 through C5 — and, via the shared cache, any other hotspot
        // whose checks reach the same labeled nonterminal. An empty
        // L(X) has nothing to check.
        let Some(mut tx) = engine.target(cfg, x) else {
            return Ok(None);
        };

        // Cheap-first: hoist the C3 prover (one early-exit emptiness
        // query against a tiny numeric DFA) ahead of the refuters. See
        // `CheckOptions::cheap_first` for the verdict-preservation
        // argument.
        if self.opts.cheap_first {
            let _c = strtaint_obs::Span::enter("check:C3", "");
            if engine.is_empty(&mut tx, &self.non_numeric, budget)? {
                return Ok(None);
            }
        }

        // C1: odd number of unescaped quotes.
        {
            let _c = strtaint_obs::Span::enter("check:C1", "");
            let (empty, witness) =
                engine.is_empty_or_witness(&mut tx, &self.odd_quotes, budget, (cfg, x))?;
            if !empty {
                return finding(CheckKind::OddQuotes, witness, String::new());
            }
        }

        // C2: always in string-literal position?
        {
            let _c = strtaint_obs::Span::enter("check:C2", "");
            let mut scratch = None;
            let mut tm = engine.target_marked(cfg, root, x, &mut scratch);
            if engine.is_empty(&mut tm, &self.marker_outside, budget)? {
                let (empty, witness) =
                    engine.is_empty_or_witness(&mut tx, &self.has_quote, budget, (cfg, x))?;
                if !empty {
                    return finding(CheckKind::EscapesLiteral, witness, String::new());
                }
                return Ok(None); // confined within a string literal
            }
        }

        // C3: numeric-only language is confined anywhere a literal
        // fits (already decided up front when `cheap_first` is on).
        if !self.opts.cheap_first {
            let _c = strtaint_obs::Span::enter("check:C3", "");
            if engine.is_empty(&mut tx, &self.non_numeric, budget)? {
                return Ok(None);
            }
        }

        // C4: known attack fragments confirm a vulnerability. The
        // Aho–Corasick prefilter proves non-membership first when it
        // can: if no fragment is spellable over the realized terminal
        // alphabet, no string of L(X) contains one and the
        // intersection is skipped outright (absence proofs only — a
        // spellable alphabet falls through to the exact engine).
        {
            let _c = strtaint_obs::Span::enter("check:C4", "");
            let prefiltered = self.opts.prefilter
                && match &tx {
                    Target::Prepared { prep, .. } => {
                        !self.prefilter.any_spellable(prep.alphabet())
                    }
                    Target::Naive { .. } => false,
                };
            if prefiltered {
                engine.stats.prefilter_skips += 1;
            } else {
                let (empty, witness) =
                    engine.is_empty_or_witness(&mut tx, &self.attack, budget, (cfg, x))?;
                if !empty {
                    debug_assert!(
                        witness
                            .as_deref()
                            .is_none_or(|w| self.prefilter.contains_match(w)),
                        "C4 witness must contain an attack fragment"
                    );
                    return finding(CheckKind::AttackString, witness, String::new());
                }
            }
        }

        let _c5 = strtaint_obs::Span::enter("check:C5", "");
        // C5: derivability in context. Sibling tainted subgrammars are
        // spliced as representative strings (computed lazily — only
        // hotspots that reach C5 pay for them).
        let mut replacements: HashMap<NtId, Vec<u8>> = HashMap::new();
        for &y in all {
            if y != x {
                let sample = shortest_string(cfg, y).unwrap_or_else(|| b"1".to_vec());
                replacements.insert(y, sample);
            }
        }
        let (marked, mroot) = marked_grammar(cfg, root, x, &replacements);
        let Some(contexts) = bounded_language(&marked, mroot, self.opts.max_contexts)
        else {
            return finding(
                CheckKind::Unresolved,
                shortest_string(cfg, x),
                "query contexts are unbounded".into(),
            );
        };
        // Subset checks for L(X), computed lazily once per token kind.
        let mut fits: HashMap<TokenKind, bool> = HashMap::new();
        for ctx in &contexts {
            let Ok(form) = lex_form(ctx) else {
                return finding(
                    CheckKind::NotDerivable,
                    Some(ctx.clone()),
                    "query context does not lex as SQL".into(),
                );
            };
            if form.vars.is_empty() {
                continue; // X erased in this derivation
            }
            if form.vars.iter().any(|v| *v == VarPosition::Glued) {
                return finding(
                    CheckKind::GluedContext,
                    Some(ctx.clone()),
                    String::new(),
                );
            }
            if form.vars.iter().any(|v| *v == VarPosition::InString) {
                // Inside a literal in this context: no unescaped quotes.
                if !engine.is_empty(&mut tx, &self.has_quote, budget)? {
                    return finding(
                        CheckKind::EscapesLiteral,
                        shortest_string(cfg, x),
                        "string-literal context".into(),
                    );
                }
            }
            if form.vars.iter().any(|v| *v == VarPosition::InBackquotes)
                && !engine.is_empty(&mut tx, &self.backquote, budget)?
            {
                return finding(
                    CheckKind::EscapesLiteral,
                    shortest_string(cfg, x),
                    "backquoted-identifier context".into(),
                );
            }
            if form
                .vars
                .iter()
                .any(|v| *v == VarPosition::Bare)
            {
                let candidates = context_candidates_with(&self.sql, &form, budget)?;
                let mut ok = false;
                for &k in &candidates {
                    let v = match fits.get(&k) {
                        Some(&v) => v,
                        None => {
                            let lex = Qdfa::new(lexeme_dfa(k).complement());
                            let mut v = engine.is_empty(&mut tx, &lex, budget)?;
                            if v
                                && k == TokenKind::Ident
                                && !engine.is_empty(&mut tx, &self.keywords, budget)?
                            {
                                v = false;
                            }
                            fits.insert(k, v);
                            v
                        }
                    };
                    if v {
                        ok = true;
                        break;
                    }
                }
                if !ok {
                    return finding(
                        CheckKind::NotDerivable,
                        shortest_string(cfg, x),
                        format!(
                            "context {:?} admits {:?}",
                            String::from_utf8_lossy(ctx),
                            candidates
                        ),
                    );
                }
            }
        }
        Ok(None)
    }
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

/// Splices a witness tainted substring into the shortest query context
/// (the marked-grammar skeleton with [`strtaint_sql::VAR_MARKER`] at
/// the tainted position), producing the full payload the downstream
/// interpreter would receive. Shared by the SQL checker and the
/// generic policy driver; `None` when the grammar is too large for
/// reconstruction to be worth it. With a [`PreparedMemo`], the
/// skeleton (the canonical shortest string of the marked grammar, the
/// expensive part) is shared across content-identical marked grammars,
/// so a warm re-check of an unchanged page skips the reconstruction.
pub(crate) fn splice_example_memo(
    cfg: &Cfg,
    root: NtId,
    x: NtId,
    witness: &[u8],
    memo: Option<&PreparedMemo>,
) -> Option<Vec<u8>> {
    const BUDGET: usize = 50_000;
    let skeleton = match memo {
        // The memoized path derives its key from `(cfg, root, x)`
        // directly, so a warm hit skips the marked-grammar clone too;
        // the size guard is answered by the key traversal itself.
        Some(m) => m.skeleton_for(cfg, root, x, BUDGET)?,
        None => {
            if cfg.count_reachable_productions(root, BUDGET) > BUDGET {
                return None;
            }
            let (marked, mroot) =
                crate::abstraction::marked_grammar(cfg, root, x, &HashMap::new());
            shortest_string(&marked, mroot)?
        }
    };
    let mut out = Vec::with_capacity(skeleton.len() + witness.len());
    for b in skeleton {
        if b == strtaint_sql::VAR_MARKER {
            out.extend_from_slice(witness);
        } else {
            out.push(b);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strtaint_grammar::{Symbol, Taint};

    /// Builds `query -> "SELECT * FROM t WHERE id=" pre X post`.
    fn harness(pre: &[u8], x_strings: &[&[u8]], post: &[u8]) -> (Cfg, NtId, NtId) {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("_GET[id]");
        g.set_taint(x, Taint::DIRECT);
        for s in x_strings {
            g.add_literal_production(x, s);
        }
        let root = g.add_nonterminal("query");
        let mut rhs = g.literal_symbols(b"SELECT * FROM t WHERE id=");
        rhs.extend(g.literal_symbols(pre));
        rhs.push(Symbol::N(x));
        rhs.extend(g.literal_symbols(post));
        g.add_production(root, rhs);
        (g, root, x)
    }

    #[test]
    fn c1_fires_on_odd_quotes() {
        let (g, root, _) = harness(b"'", &[b"1", b"1'; DROP TABLE t; --"], b"'");
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, CheckKind::OddQuotes);
        assert!(r.findings[0].witness.is_some());
        assert!(r.findings[0].taint.is_direct());
    }

    #[test]
    fn quoted_numeric_verifies() {
        let (g, root, _) = harness(b"'", &[b"1", b"42", b"007"], b"'");
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert!(r.is_safe(), "{r}");
        assert_eq!(r.verified, 1);
    }

    #[test]
    fn c2_catches_escaped_literal_breakout() {
        // X always inside quotes and with an even number of unescaped
        // quotes (so C1 passes), but the quotes are lone — the classic
        // `' OR '` literal breakout.
        let (g, root, _) = harness(b"'", &[b"ok", b"a' OR 'b"], b"'");
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert_eq!(r.findings.len(), 1, "{r}");
        assert_eq!(r.findings[0].kind, CheckKind::EscapesLiteral);
    }

    #[test]
    fn c2_accepts_doubled_quote_escaping() {
        // MySQL's '' escape inside a literal is safe.
        let (g, root, _) = harness(b"'", &[b"ok", b"a''b"], b"'");
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn addslashed_literal_context_verifies() {
        // Escaped quotes only — safe inside a literal.
        let (g, root, _) = harness(b"'", &[b"ok", br"a\'b", br"it\'s"], b"'");
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn c3_numeric_unquoted_verifies() {
        let (g, root, _) = harness(b"", &[b"1", b"42"], b"");
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn unquoted_attack_reported() {
        // The paper's motivating taint-analysis blind spot: escaped
        // input in numeric (unquoted) context.
        let (g, root, _) = harness(b"", &[b"1", b"1 OR 1=1 -- x"], b"");
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert_eq!(r.findings.len(), 1, "{r}");
        assert_eq!(r.findings[0].kind, CheckKind::AttackString);
    }

    #[test]
    fn c5_ident_in_order_by_verifies() {
        // X = filtered column name in ORDER BY position.
        let mut g = Cfg::new();
        let x = g.add_nonterminal("_GET[sort]");
        g.set_taint(x, Taint::DIRECT);
        g.add_literal_production(x, b"name");
        g.add_literal_production(x, b"date");
        let root = g.add_nonterminal("query");
        let mut rhs = g.literal_symbols(b"SELECT * FROM t ORDER BY ");
        rhs.push(Symbol::N(x));
        g.add_production(root, rhs);
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn c5_keyword_capture_reported() {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("_GET[sort]");
        g.set_taint(x, Taint::DIRECT);
        g.add_literal_production(x, b"name");
        g.add_literal_production(x, b"union");
        let root = g.add_nonterminal("query");
        let mut rhs = g.literal_symbols(b"SELECT * FROM t ORDER BY ");
        rhs.push(Symbol::N(x));
        g.add_production(root, rhs);
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert!(!r.is_safe());
    }

    #[test]
    fn whole_query_tainted_reported() {
        let mut g = Cfg::new();
        let root = g.add_nonterminal("_GET[q]");
        g.set_taint(root, Taint::DIRECT);
        g.add_literal_production(root, b"SELECT 1");
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert!(!r.is_safe());
    }

    #[test]
    fn untainted_query_is_trivially_safe() {
        let mut g = Cfg::new();
        let root = g.literal_nonterminal("query", b"SELECT * FROM t");
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert!(r.is_safe());
        assert_eq!(r.checked, 0);
    }

    #[test]
    fn budget_exhaustion_is_conservative() {
        // A hotspot that verifies under an unlimited budget must, under
        // a tiny budget, be reported BudgetExhausted — a false positive
        // is acceptable, a silent "verified" is not.
        let (g, root, _) = harness(b"'", &[b"1", b"42"], b"'");
        let c = Checker::new();
        assert!(c.check_hotspot(&g, root).is_safe());

        let tiny = Budget::new(None, Some(5), None);
        let r = c.check_hotspot_with(&g, root, &tiny);
        assert!(!r.is_safe(), "exhausted budget must not verify: {r}");
        assert!(r
            .findings
            .iter()
            .all(|f| f.kind == CheckKind::BudgetExhausted));
        assert_eq!(r.verified, 0);
        assert!(!r.degradations.is_empty());

        // And a vulnerable hotspot stays flagged under any budget.
        let (g2, root2, _) = harness(b"'", &[b"1", b"1'; DROP TABLE t; --"], b"'");
        for fuel in [1u64, 10, 100, 10_000] {
            let b = Budget::new(None, Some(fuel), None);
            let r = c.check_hotspot_with(&g2, root2, &b);
            assert!(!r.is_safe(), "fuel={fuel} must not verify a vulnerable hotspot");
        }
    }

    #[test]
    fn parallel_hotspots_match_serial_and_count_engine_work() {
        // Two hotspots in one grammar, sharing the tainted source X —
        // the shape the prepared cache exists for.
        let mut g = Cfg::new();
        let x = g.add_nonterminal("_GET[id]");
        g.set_taint(x, Taint::DIRECT);
        g.add_literal_production(x, b"1");
        g.add_literal_production(x, b"1'; DROP TABLE t; --");
        let safe_x = g.add_nonterminal("_GET[n]");
        g.set_taint(safe_x, Taint::DIRECT);
        g.add_literal_production(safe_x, b"42");
        let mk = |g: &mut Cfg, x, pre: &[u8], post: &[u8]| {
            let root = g.add_nonterminal("query");
            let mut rhs = g.literal_symbols(pre);
            rhs.push(Symbol::N(x));
            rhs.extend(g.literal_symbols(post));
            g.add_production(root, rhs);
            root
        };
        let r1 = mk(&mut g, x, b"SELECT * FROM t WHERE id='", b"'");
        let r2 = mk(&mut g, x, b"DELETE FROM t WHERE id='", b"'");
        let r3 = mk(&mut g, safe_x, b"SELECT * FROM t WHERE n=", b"");
        let roots = [r1, r2, r3];

        let c = Checker::new();
        let budget = Budget::unlimited();
        let serial: Vec<_> = roots
            .iter()
            .map(|&r| c.check_hotspot_with(&g, r, &budget))
            .collect();
        let parallel = c.check_hotspots_with(&g, &roots, &budget, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.checked, p.checked);
            assert_eq!(s.verified, p.verified);
            assert_eq!(s.findings.len(), p.findings.len());
            for (sf, pf) in s.findings.iter().zip(&p.findings) {
                assert_eq!(sf.kind, pf.kind);
                assert_eq!(sf.name, pf.name);
                assert_eq!(sf.witness, pf.witness);
            }
        }
        // The shared cache means the second hotspot reuses X's
        // preparation: across all three reports some query must have
        // been served without a fresh normalization.
        let saved: u64 = parallel.iter().map(|r| r.engine.normalizations_saved).sum();
        assert!(saved > 0, "no prepared-grammar reuse recorded");
        let queries: u64 = parallel.iter().map(|r| r.engine.queries).sum();
        assert!(queries > 0);

        // The naive engine produces the same verdicts.
        let naive = Checker::with_options(CheckOptions {
            naive_engine: true,
            ..CheckOptions::default()
        });
        for (&r, s) in roots.iter().zip(&serial) {
            let n = naive.check_hotspot_with(&g, r, &budget);
            assert_eq!(n.findings.len(), s.findings.len());
            assert_eq!(n.verified, s.verified);
        }
    }

    #[test]
    fn cheap_first_preserves_verdicts() {
        // Every harness shape from the suite, checked with the C3
        // prover hoisted and with the paper's published order: the
        // findings (kind, witness) and verified counts must agree
        // exactly — only the engine work order may differ.
        let shapes: Vec<(Cfg, NtId)> = vec![
            {
                let (g, r, _) = harness(b"'", &[b"1", b"1'; DROP TABLE t; --"], b"'");
                (g, r)
            },
            {
                let (g, r, _) = harness(b"'", &[b"1", b"42", b"007"], b"'");
                (g, r)
            },
            {
                let (g, r, _) = harness(b"'", &[b"ok", b"a' OR 'b"], b"'");
                (g, r)
            },
            {
                let (g, r, _) = harness(b"", &[b"1", b"42"], b"");
                (g, r)
            },
            {
                let (g, r, _) = harness(b"", &[b"1", b"1 OR 1=1 -- x"], b"");
                (g, r)
            },
        ];
        let fast = Checker::new();
        let slow = Checker::with_options(CheckOptions {
            cheap_first: false,
            ..CheckOptions::default()
        });
        for (g, root) in &shapes {
            let a = fast.check_hotspot(g, *root);
            let b = slow.check_hotspot(g, *root);
            assert_eq!(a.checked, b.checked);
            assert_eq!(a.verified, b.verified);
            assert_eq!(a.findings.len(), b.findings.len());
            for (fa, fb) in a.findings.iter().zip(&b.findings) {
                assert_eq!(fa.kind, fb.kind);
                assert_eq!(fa.witness, fb.witness);
                assert_eq!(fa.example_query, fb.example_query);
            }
        }
    }

    #[test]
    fn indirect_taint_classified() {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("USER[name]");
        g.set_taint(x, Taint::INDIRECT);
        g.add_literal_production(x, b"bob'); DROP TABLE t; --");
        let root = g.add_nonterminal("query");
        let mut rhs = g.literal_symbols(b"INSERT INTO t (n) VALUES ('");
        rhs.push(Symbol::N(x));
        rhs.extend(g.literal_symbols(b"')"));
        g.add_production(root, rhs);
        let c = Checker::new();
        let r = c.check_hotspot(&g, root);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].taint.is_indirect());
        assert!(!r.findings[0].taint.is_direct());
    }
}
