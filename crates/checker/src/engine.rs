//! Checker-side façade over the prepared intersection engine.
//!
//! Every C1–C5 (and XSS-context) check is an emptiness question about
//! `L(G, x) ∩ L(D)`. This module owns the plumbing both checkers share:
//!
//! - [`Qdfa`]: a check automaton compiled once into its raw [`Dfa`]
//!   *and* its byte-class form ([`ClassDfa`]) at `Checker`
//!   construction, so per-query DFA work is two array loads per step;
//! - [`Engine`]: a per-hotspot session that routes queries either
//!   through the prepared engine (a [`PreparedCache`] shared by every
//!   check of the page) or through the naive reference path
//!   (`CheckOptions::naive_engine`, the cold baseline for benches and
//!   equivalence tests), while accumulating [`EngineStats`];
//! - [`run_parallel`]: the lock-free worker loop that fans hotspot
//!   checks of one page across threads — hotspots are independent given
//!   the immutable `Cfg`, and the cache is thread-safe, so workers
//!   share preparations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use strtaint_automata::{ClassDfa, Dfa};
use strtaint_grammar::budget::{Budget, BudgetExceeded};
use strtaint_grammar::intersect::{intersect_with, is_intersection_empty_with};
use strtaint_grammar::lang::shortest_string;
use strtaint_grammar::prepared::{PreparedCache, PreparedGrammar, QueryMode};
use strtaint_grammar::stats::EngineStats;
use strtaint_grammar::{Cfg, NtId};

use crate::abstraction::marked_grammar;
use crate::pmemo::PreparedMemo;
use crate::qcache::{Mode, QueryCache, QueryKey, Verdict};
use crate::report::HotspotReport;

/// A check automaton in both raw and byte-class-compressed form.
#[derive(Debug, Clone)]
pub(crate) struct Qdfa {
    /// The raw DFA, used by the naive reference path.
    pub dfa: Dfa,
    /// Byte-class compressed form, used by the prepared engine.
    pub classes: ClassDfa,
    /// Content fingerprint of `classes` — the `dfa` component of
    /// query-cache keys. Content-derived (not per-instance), so the
    /// dynamically built C5 lexeme automata fingerprint identically
    /// across hotspots and pages.
    pub fp: u64,
}

impl Qdfa {
    pub(crate) fn new(dfa: Dfa) -> Self {
        let classes = ClassDfa::new(&dfa);
        let fp = classdfa_fingerprint(&classes);
        Qdfa { dfa, classes, fp }
    }
}

/// FNV-1a over the full observable content of a [`ClassDfa`] (class
/// map, step table, start, accepting set). Equal fingerprints mean —
/// modulo 64-bit collision — byte-for-byte identical step behavior,
/// which is what makes them sound as cache-key components.
fn classdfa_fingerprint(c: &ClassDfa) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    mix(c.num_states() as u64);
    mix(u64::from(c.num_classes()));
    mix(u64::from(c.start()));
    for b in 0..=255u8 {
        mix(u64::from(c.class_of(b)));
    }
    for s in 0..c.num_states() as u32 {
        mix(u64::from(c.is_accepting(s)));
        for cls in 0..c.num_classes() {
            mix(u64::from(c.step_class(s, cls)));
        }
    }
    h
}

/// What a query runs against: a `(cfg, root)` pair on the naive path,
/// or a prepared grammar (cached or check-local) on the fast path.
pub(crate) enum Target<'a> {
    Naive {
        cfg: &'a Cfg,
        root: NtId,
    },
    Prepared {
        prep: Arc<PreparedGrammar>,
        /// Whether a query has already used this preparation (drives
        /// the `normalizations_saved` counter).
        used: bool,
        /// Precomputed witness-reconstruction guard for the target's
        /// own `(cfg, root)` — `Some` when the preparation memo's key
        /// traversal already counted the reachable productions, so
        /// witness queries skip the per-query `reachable_list` walk.
        guarded: Option<bool>,
    },
}

/// Per-hotspot query session: routes intersections through the
/// prepared engine or the naive path, and counts engine work.
pub(crate) struct Engine<'a> {
    cache: &'a PreparedCache,
    naive: bool,
    /// Cross-page verdict cache; `None` disables memoization (naive
    /// reference runs, `--no-query-cache`).
    qcache: Option<&'a QueryCache>,
    /// Cross-page preparation memo (content-keyed); disabled together
    /// with the query cache. See the `pmemo` module for the sharing
    /// soundness argument.
    pmemo: Option<&'a PreparedMemo>,
    /// `--eager-witness`: never replay witness bytes from the cache —
    /// witness-mode queries bypass memoization and extract live.
    eager_witness: bool,
    pub(crate) stats: EngineStats,
}

/// Production-count guard above which witness-grammar reconstruction is
/// skipped (the finding is still reported, just without a witness).
const WITNESS_BUDGET: usize = 50_000;

impl<'a> Engine<'a> {
    pub(crate) fn new(
        cache: &'a PreparedCache,
        naive: bool,
        qcache: Option<&'a QueryCache>,
        pmemo: Option<&'a PreparedMemo>,
        eager_witness: bool,
    ) -> Self {
        Engine {
            cache,
            naive,
            // The naive path is the reference engine: it never
            // memoizes, whatever the options say.
            qcache: if naive { None } else { qcache },
            pmemo: if naive { None } else { pmemo },
            eager_witness,
            stats: EngineStats::default(),
        }
    }

    /// Assembles the full identity of one query (see `qcache` module
    /// docs for why every component is load-bearing).
    fn query_key(
        qc: &QueryCache,
        prep: &PreparedGrammar,
        q: &Qdfa,
        mode: Mode,
        budget: &Budget,
    ) -> QueryKey {
        QueryKey {
            scope: qc.scope(),
            grammar: prep.fingerprint(),
            dfa: q.fp,
            mode,
            fuel_limit: budget.fuel_limit(),
            grammar_cap: budget.grammar_cap(),
        }
    }

    /// Target for a root of the page grammar — shared via the cache
    /// across all checks of the page (and across worker threads).
    /// Returns `None` when `L(cfg, root)` is empty (nothing to check):
    /// the prepared paths read emptiness off the preparation in O(1)
    /// instead of re-running the productivity fixpoint per hotspot.
    pub(crate) fn target<'t>(&mut self, cfg: &'t Cfg, root: NtId) -> Option<Target<'t>> {
        if self.naive {
            if cfg.is_empty_language(root) {
                return None;
            }
            return Some(Target::Naive { cfg, root });
        }
        // The per-batch cache answers repeats within this page by bare
        // `NtId` lookup; the cross-page memo answers content-identical
        // subgrammars from any page without re-preparing.
        let (prep, hit, guarded) = match self.pmemo {
            Some(memo) => {
                let (prep, hit, count) = memo.prepared(cfg, root);
                (prep, hit, Some(count > WITNESS_BUDGET))
            }
            None => {
                let (prep, hit) = self.cache.prepared(cfg, root);
                (prep, hit, None)
            }
        };
        if !hit {
            self.stats.normalizations += 1;
        }
        if prep.is_empty_language() {
            return None;
        }
        Some(Target::Prepared {
            prep,
            used: hit,
            guarded,
        })
    }

    /// Target for the marked grammar of `(cfg, root, x)` with no
    /// replacements — the context grammar of the C2 and XSS checks.
    /// On the memoized path a warm hit never constructs the marked
    /// grammar at all (see [`PreparedMemo::marked_prepared`]); the
    /// naive path builds it into `scratch`, which must outlive the
    /// returned target.
    pub(crate) fn target_marked<'t>(
        &mut self,
        cfg: &Cfg,
        root: NtId,
        x: NtId,
        scratch: &'t mut Option<(Cfg, NtId)>,
    ) -> Target<'t> {
        if self.naive {
            let (c, r) = scratch.insert(marked_grammar(cfg, root, x, &Default::default()));
            return Target::Naive { cfg: c, root: *r };
        }
        let (prep, hit) = match self.pmemo {
            Some(memo) => memo.marked_prepared(cfg, root, x),
            None => {
                let (marked, mroot) = marked_grammar(cfg, root, x, &Default::default());
                (Arc::new(PreparedGrammar::new(&marked, mroot)), false)
            }
        };
        if !hit {
            self.stats.normalizations += 1;
        }
        Target::Prepared {
            prep,
            used: hit,
            guarded: None,
        }
    }

    /// `true` if `L(target) ∩ L(q)` is empty (early-exit fixpoint on
    /// the prepared path).
    pub(crate) fn is_empty(
        &mut self,
        target: &mut Target<'_>,
        q: &Qdfa,
        budget: &Budget,
    ) -> Result<bool, BudgetExceeded> {
        self.stats.queries += 1;
        match target {
            Target::Naive { cfg, root } => {
                self.stats.normalizations += 1;
                is_intersection_empty_with(cfg, *root, &q.dfa, budget)
            }
            Target::Prepared { prep, used, .. } => {
                if *used {
                    self.stats.normalizations_saved += 1;
                } else {
                    *used = true;
                }
                if let Some(qc) = self.qcache {
                    let key = Self::query_key(qc, prep, q, Mode::Empty, budget);
                    if let Some(Verdict::Empty {
                        empty,
                        fuel,
                        triples,
                    }) = qc.get(&key)
                    {
                        self.stats.qcache_hits += 1;
                        // Replay the recorded fuel so a replayed verdict
                        // consumes (and trips) exactly as the
                        // recomputation would; zero-charge replays skip
                        // the call so an already-exhausted budget is not
                        // probed where the computation wouldn't have.
                        if fuel > 0 {
                            budget.charge(fuel)?;
                        }
                        self.stats.realized_triples += triples;
                        return Ok(empty);
                    }
                    self.stats.qcache_misses += 1;
                    // `?` on a trip: tripped fixpoints are never cached.
                    let ix = prep.query(&q.classes, budget, QueryMode::EarlyExit)?;
                    self.stats.realized_triples += ix.triples() as u64;
                    if ix.exited_early() {
                        self.stats.early_exits += 1;
                    }
                    self.stats.qcache_evictions += qc.insert(
                        key,
                        Verdict::Empty {
                            empty: ix.is_empty(),
                            fuel: ix.charged(),
                            triples: ix.triples() as u64,
                        },
                    );
                    return Ok(ix.is_empty());
                }
                let ix = prep.query(&q.classes, budget, QueryMode::EarlyExit)?;
                self.stats.realized_triples += ix.triples() as u64;
                if ix.exited_early() {
                    self.stats.early_exits += 1;
                }
                Ok(ix.is_empty())
            }
        }
    }

    /// Emptiness plus, when nonempty, a shortest witness string.
    ///
    /// On the prepared path the suspended emptiness fixpoint is resumed
    /// for reconstruction instead of re-running from scratch. `guard`
    /// is the `(cfg, x)` whose reachable-production count gates the
    /// (expensive) reconstruction, exactly as the old `witness_of`;
    /// a budget trip during witness extraction degrades to a missing
    /// witness, not a failed check.
    pub(crate) fn is_empty_or_witness(
        &mut self,
        target: &mut Target<'_>,
        q: &Qdfa,
        budget: &Budget,
        guard: (&Cfg, NtId),
    ) -> Result<(bool, Option<Vec<u8>>), BudgetExceeded> {
        self.stats.queries += 1;
        let (gcfg, gx) = guard;
        match target {
            Target::Naive { cfg, root } => {
                self.stats.normalizations += 1;
                if is_intersection_empty_with(cfg, *root, &q.dfa, budget)? {
                    return Ok((true, None));
                }
                if gcfg.count_reachable_productions(gx, WITNESS_BUDGET) > WITNESS_BUDGET {
                    return Ok((false, None));
                }
                // The naive path pays a second full fixpoint here.
                self.stats.queries += 1;
                self.stats.normalizations += 1;
                let witness = intersect_with(cfg, *root, &q.dfa, budget)
                    .ok()
                    .and_then(|(g, r)| shortest_string(&g, r));
                Ok((false, witness))
            }
            Target::Prepared {
                prep,
                used,
                guarded: precomputed,
            } => {
                if *used {
                    self.stats.normalizations_saved += 1;
                } else {
                    *used = true;
                }
                // The guard decision for this query: precomputed by the
                // memo's key traversal when available (call sites pass
                // the target's own `(cfg, root)` as the guard pair),
                // recomputed from the raw grammar otherwise.
                let guard_decision = |precomputed: Option<bool>| {
                    precomputed.unwrap_or_else(|| {
                        gcfg.count_reachable_productions(gx, WITNESS_BUDGET) > WITNESS_BUDGET
                    })
                };
                // `--eager-witness` distrusts memoized witness bytes:
                // witness-mode queries bypass the cache and extract
                // live (emptiness-only queries still memoize).
                let qc = if self.eager_witness { None } else { self.qcache };
                if let Some(qc) = qc {
                    // The guard is part of the key: it decides whether
                    // the extraction phase runs at all, so it must be
                    // settled *before* lookup.
                    let guarded = guard_decision(*precomputed);
                    let key = Self::query_key(qc, prep, q, Mode::Witness { guarded }, budget);
                    if let Some(Verdict::Witness {
                        empty,
                        witness,
                        fuel_query,
                        fuel_witness,
                        triples_query,
                        triples_final,
                    }) = qc.get(&key)
                    {
                        self.stats.qcache_hits += 1;
                        // Emptiness-phase fuel: a trip propagates,
                        // exactly like the live `?`.
                        if fuel_query > 0 {
                            budget.charge(fuel_query)?;
                        }
                        if empty {
                            self.stats.realized_triples += triples_query;
                            return Ok((true, None));
                        }
                        self.stats.witness_skipped += 1;
                        if guarded {
                            self.stats.realized_triples += triples_query;
                            return Ok((false, None));
                        }
                        // Extraction-phase fuel: a trip degrades to a
                        // missing witness, exactly like the live
                        // `.ok().flatten()`.
                        let witness = if fuel_witness > 0 && budget.charge(fuel_witness).is_err() {
                            None
                        } else {
                            witness
                        };
                        self.stats.realized_triples += triples_final;
                        return Ok((false, witness));
                    }
                    self.stats.qcache_misses += 1;
                    let mut ix = prep.query(&q.classes, budget, QueryMode::EarlyExit)?;
                    let fuel_query = ix.charged();
                    let triples_query = ix.triples() as u64;
                    if ix.exited_early() {
                        self.stats.early_exits += 1;
                    }
                    if ix.is_empty() {
                        self.stats.realized_triples += triples_query;
                        self.stats.qcache_evictions += qc.insert(
                            key,
                            Verdict::Witness {
                                empty: true,
                                witness: None,
                                fuel_query,
                                fuel_witness: 0,
                                triples_query,
                                triples_final: triples_query,
                            },
                        );
                        return Ok((true, None));
                    }
                    if guarded {
                        self.stats.realized_triples += triples_query;
                        self.stats.qcache_evictions += qc.insert(
                            key,
                            Verdict::Witness {
                                empty: false,
                                witness: None,
                                fuel_query,
                                fuel_witness: 0,
                                triples_query,
                                triples_final: triples_query,
                            },
                        );
                        return Ok((false, None));
                    }
                    let wres = ix.witness(budget);
                    self.stats.completions += ix.completions();
                    self.stats.realized_triples += ix.triples() as u64;
                    return match wres {
                        Ok(witness) => {
                            self.stats.qcache_evictions += qc.insert(
                                key,
                                Verdict::Witness {
                                    empty: false,
                                    witness: witness.clone(),
                                    fuel_query,
                                    fuel_witness: ix.charged() - fuel_query,
                                    triples_query,
                                    triples_final: ix.triples() as u64,
                                },
                            );
                            Ok((false, witness))
                        }
                        // Tripped mid-extraction: the finding stands
                        // without a witness, and the (partially
                        // charged) computation is never cached.
                        Err(_) => Ok((false, None)),
                    };
                }
                let mut ix = prep.query(&q.classes, budget, QueryMode::EarlyExit)?;
                if ix.exited_early() {
                    self.stats.early_exits += 1;
                }
                if ix.is_empty() {
                    self.stats.realized_triples += ix.triples() as u64;
                    return Ok((true, None));
                }
                if guard_decision(*precomputed) {
                    self.stats.realized_triples += ix.triples() as u64;
                    return Ok((false, None));
                }
                let witness = ix.witness(budget).ok().flatten();
                self.stats.completions += ix.completions();
                self.stats.realized_triples += ix.triples() as u64;
                Ok((false, witness))
            }
        }
    }
}

/// Checks `items[i]` with `check` on up to `workers` threads and
/// returns the reports in input order.
///
/// Generic over the work item so the same loop drives plain hotspot
/// roots (`NtId`) and policy-tagged roots (`(NtId, policy)`). Lock-free
/// work distribution (shared atomic index, per-worker result buffers,
/// sorted merge) mirroring `analyze_app_parallel_with` in
/// `strtaint-core`. A worker panic is re-raised on the calling thread
/// so page-level fault isolation sees it exactly as a serial panic.
pub(crate) fn run_parallel<T, F>(items: &[T], workers: usize, check: F) -> Vec<HotspotReport>
where
    T: Sync,
    F: Fn(&T) -> HotspotReport + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(&check).collect();
    }
    let next = AtomicUsize::new(0);
    let mut merged: Vec<(usize, HotspotReport)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let check = &check;
                scope.spawn(move || {
                    let mut local: Vec<(usize, HotspotReport)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, check(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => merged.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    merged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(merged.len(), items.len());
    merged.into_iter().map(|(_, r)| r).collect()
}
