//! Checker-side façade over the prepared intersection engine.
//!
//! Every C1–C5 (and XSS-context) check is an emptiness question about
//! `L(G, x) ∩ L(D)`. This module owns the plumbing both checkers share:
//!
//! - [`Qdfa`]: a check automaton compiled once into its raw [`Dfa`]
//!   *and* its byte-class form ([`ClassDfa`]) at `Checker`
//!   construction, so per-query DFA work is two array loads per step;
//! - [`Engine`]: a per-hotspot session that routes queries either
//!   through the prepared engine (a [`PreparedCache`] shared by every
//!   check of the page) or through the naive reference path
//!   (`CheckOptions::naive_engine`, the cold baseline for benches and
//!   equivalence tests), while accumulating [`EngineStats`];
//! - [`run_parallel`]: the lock-free worker loop that fans hotspot
//!   checks of one page across threads — hotspots are independent given
//!   the immutable `Cfg`, and the cache is thread-safe, so workers
//!   share preparations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use strtaint_automata::{ClassDfa, Dfa};
use strtaint_grammar::budget::{Budget, BudgetExceeded};
use strtaint_grammar::intersect::{intersect_with, is_intersection_empty_with};
use strtaint_grammar::lang::shortest_string;
use strtaint_grammar::prepared::{EngineStats, PreparedCache, PreparedGrammar, QueryMode};
use strtaint_grammar::{Cfg, NtId};

use crate::report::HotspotReport;

/// A check automaton in both raw and byte-class-compressed form.
#[derive(Debug, Clone)]
pub(crate) struct Qdfa {
    /// The raw DFA, used by the naive reference path.
    pub dfa: Dfa,
    /// Byte-class compressed form, used by the prepared engine.
    pub classes: ClassDfa,
}

impl Qdfa {
    pub(crate) fn new(dfa: Dfa) -> Self {
        let classes = ClassDfa::new(&dfa);
        Qdfa { dfa, classes }
    }
}

/// What a query runs against: a `(cfg, root)` pair on the naive path,
/// or a prepared grammar (cached or check-local) on the fast path.
pub(crate) enum Target<'a> {
    Naive {
        cfg: &'a Cfg,
        root: NtId,
    },
    Prepared {
        prep: Arc<PreparedGrammar>,
        /// Whether a query has already used this preparation (drives
        /// the `normalizations_saved` counter).
        used: bool,
    },
}

/// Per-hotspot query session: routes intersections through the
/// prepared engine or the naive path, and counts engine work.
pub(crate) struct Engine<'a> {
    cache: &'a PreparedCache,
    naive: bool,
    pub(crate) stats: EngineStats,
}

/// Production-count guard above which witness-grammar reconstruction is
/// skipped (the finding is still reported, just without a witness).
const WITNESS_BUDGET: usize = 50_000;

impl<'a> Engine<'a> {
    pub(crate) fn new(cache: &'a PreparedCache, naive: bool) -> Self {
        Engine {
            cache,
            naive,
            stats: EngineStats::default(),
        }
    }

    /// Target for a root of the page grammar — shared via the cache
    /// across all checks of the page (and across worker threads).
    pub(crate) fn target<'t>(&mut self, cfg: &'t Cfg, root: NtId) -> Target<'t> {
        if self.naive {
            return Target::Naive { cfg, root };
        }
        let (prep, hit) = self.cache.prepared(cfg, root);
        if !hit {
            self.stats.normalizations += 1;
        }
        Target::Prepared { prep, used: hit }
    }

    /// Target for a check-local grammar (e.g. a marked grammar built
    /// for this candidate only). Never cached: marked grammars are
    /// fresh `Cfg`s whose `NtId`s would collide in the root-keyed
    /// cache.
    pub(crate) fn target_local<'t>(&mut self, cfg: &'t Cfg, root: NtId) -> Target<'t> {
        if self.naive {
            return Target::Naive { cfg, root };
        }
        self.stats.normalizations += 1;
        Target::Prepared {
            prep: Arc::new(PreparedGrammar::new(cfg, root)),
            used: false,
        }
    }

    /// `true` if `L(target) ∩ L(q)` is empty (early-exit fixpoint on
    /// the prepared path).
    pub(crate) fn is_empty(
        &mut self,
        target: &mut Target<'_>,
        q: &Qdfa,
        budget: &Budget,
    ) -> Result<bool, BudgetExceeded> {
        self.stats.queries += 1;
        match target {
            Target::Naive { cfg, root } => {
                self.stats.normalizations += 1;
                is_intersection_empty_with(cfg, *root, &q.dfa, budget)
            }
            Target::Prepared { prep, used } => {
                if *used {
                    self.stats.normalizations_saved += 1;
                } else {
                    *used = true;
                }
                let ix = prep.query(&q.classes, budget, QueryMode::EarlyExit)?;
                self.stats.realized_triples += ix.triples() as u64;
                if ix.exited_early() {
                    self.stats.early_exits += 1;
                }
                Ok(ix.is_empty())
            }
        }
    }

    /// Emptiness plus, when nonempty, a shortest witness string.
    ///
    /// On the prepared path the suspended emptiness fixpoint is resumed
    /// for reconstruction instead of re-running from scratch. `guard`
    /// is the `(cfg, x)` whose reachable-production count gates the
    /// (expensive) reconstruction, exactly as the old `witness_of`;
    /// a budget trip during witness extraction degrades to a missing
    /// witness, not a failed check.
    pub(crate) fn is_empty_or_witness(
        &mut self,
        target: &mut Target<'_>,
        q: &Qdfa,
        budget: &Budget,
        guard: (&Cfg, NtId),
    ) -> Result<(bool, Option<Vec<u8>>), BudgetExceeded> {
        self.stats.queries += 1;
        let (gcfg, gx) = guard;
        match target {
            Target::Naive { cfg, root } => {
                self.stats.normalizations += 1;
                if is_intersection_empty_with(cfg, *root, &q.dfa, budget)? {
                    return Ok((true, None));
                }
                if gcfg.count_reachable_productions(gx, WITNESS_BUDGET) > WITNESS_BUDGET {
                    return Ok((false, None));
                }
                // The naive path pays a second full fixpoint here.
                self.stats.queries += 1;
                self.stats.normalizations += 1;
                let witness = intersect_with(cfg, *root, &q.dfa, budget)
                    .ok()
                    .and_then(|(g, r)| shortest_string(&g, r));
                Ok((false, witness))
            }
            Target::Prepared { prep, used } => {
                if *used {
                    self.stats.normalizations_saved += 1;
                } else {
                    *used = true;
                }
                let mut ix = prep.query(&q.classes, budget, QueryMode::EarlyExit)?;
                if ix.exited_early() {
                    self.stats.early_exits += 1;
                }
                if ix.is_empty() {
                    self.stats.realized_triples += ix.triples() as u64;
                    return Ok((true, None));
                }
                if gcfg.count_reachable_productions(gx, WITNESS_BUDGET) > WITNESS_BUDGET {
                    self.stats.realized_triples += ix.triples() as u64;
                    return Ok((false, None));
                }
                let witness = ix.witness(budget).ok().flatten();
                self.stats.realized_triples += ix.triples() as u64;
                Ok((false, witness))
            }
        }
    }
}

/// Checks `items[i]` with `check` on up to `workers` threads and
/// returns the reports in input order.
///
/// Generic over the work item so the same loop drives plain hotspot
/// roots (`NtId`) and policy-tagged roots (`(NtId, policy)`). Lock-free
/// work distribution (shared atomic index, per-worker result buffers,
/// sorted merge) mirroring `analyze_app_parallel_with` in
/// `strtaint-core`. A worker panic is re-raised on the calling thread
/// so page-level fault isolation sees it exactly as a serial panic.
pub(crate) fn run_parallel<T, F>(items: &[T], workers: usize, check: F) -> Vec<HotspotReport>
where
    T: Sync,
    F: Fn(&T) -> HotspotReport + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(&check).collect();
    }
    let next = AtomicUsize::new(0);
    let mut merged: Vec<(usize, HotspotReport)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let check = &check;
                scope.spawn(move || {
                    let mut local: Vec<(usize, HotspotReport)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, check(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => merged.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    merged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(merged.len(), items.len());
    merged.into_iter().map(|(_, r)| r).collect()
}
