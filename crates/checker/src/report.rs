//! Bug-report types produced by the policy-conformance checker.

use std::fmt;

use strtaint_grammar::{Degradation, EngineStats, NtId, Taint};

/// Which check classified the finding (paper §3.2.1–3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// C1: the tainted substring can contain an odd number of
    /// unescaped quotes — not confinable in any query.
    OddQuotes,
    /// C2: the substring always sits inside a string literal but can
    /// contain an unescaped quote, escaping the literal.
    EscapesLiteral,
    /// C4: the substring can contain a known non-confinable attack
    /// fragment (`DROP TABLE`, `--`, `;`, …) outside quotes.
    AttackString,
    /// C5: the substring is not derivable from any single symbol of
    /// the reference SQL grammar in its context.
    NotDerivable,
    /// C5: the substring's position glues onto adjacent tokens, so
    /// token boundaries are attacker-controlled.
    GluedContext,
    /// The checker could not enumerate the query contexts (infinite or
    /// too many); reported conservatively.
    Unresolved,
    /// The analysis budget (deadline, fuel, or grammar cap) ran out
    /// before the hotspot could be verified; reported conservatively —
    /// a budget trip may cause a false positive, never a silent
    /// "verified".
    BudgetExhausted,
}

impl CheckKind {
    /// Stable rule identifier, shared by the SARIF renderer and the
    /// daemon's serialized verdicts. A compatibility surface: adding a
    /// variant adds an id, existing ids never change meaning.
    pub fn rule_id(self) -> &'static str {
        match self {
            CheckKind::OddQuotes => "strtaint/odd-quotes",
            CheckKind::EscapesLiteral => "strtaint/escapes-literal",
            CheckKind::AttackString => "strtaint/attack-string",
            CheckKind::NotDerivable => "strtaint/not-derivable",
            CheckKind::GluedContext => "strtaint/glued-context",
            CheckKind::Unresolved => "strtaint/unresolved",
            CheckKind::BudgetExhausted => "strtaint/budget-exhausted",
        }
    }

    /// Inverse of [`CheckKind::rule_id`]; `None` for unknown ids
    /// (version-skewed or corrupt artifacts — treat as invalid).
    pub fn from_rule_id(id: &str) -> Option<CheckKind> {
        Some(match id {
            "strtaint/odd-quotes" => CheckKind::OddQuotes,
            "strtaint/escapes-literal" => CheckKind::EscapesLiteral,
            "strtaint/attack-string" => CheckKind::AttackString,
            "strtaint/not-derivable" => CheckKind::NotDerivable,
            "strtaint/glued-context" => CheckKind::GluedContext,
            "strtaint/unresolved" => CheckKind::Unresolved,
            "strtaint/budget-exhausted" => CheckKind::BudgetExhausted,
            _ => return None,
        })
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::OddQuotes => "odd number of unescaped quotes",
            CheckKind::EscapesLiteral => "can escape its string literal",
            CheckKind::AttackString => "derives a known attack fragment",
            CheckKind::NotDerivable => "not derivable from the SQL grammar in context",
            CheckKind::GluedContext => "attacker-controlled token boundary",
            CheckKind::Unresolved => "contexts could not be enumerated",
            CheckKind::BudgetExhausted => "analysis budget exhausted before verification",
        };
        write!(f, "{s}")
    }
}

/// A policy violation for one labeled nonterminal at one hotspot.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The offending labeled nonterminal.
    pub nonterminal: NtId,
    /// Its display name (usually names the source, e.g. `_GET[userid]`).
    pub name: String,
    /// Taint labels (drives the paper's direct/indirect report split).
    pub taint: Taint,
    /// Which check fired.
    pub kind: CheckKind,
    /// A witness tainted substring demonstrating the violation, when
    /// one could be extracted.
    pub witness: Option<Vec<u8>>,
    /// A complete example query with the witness spliced into the
    /// shortest query context — what the database would actually
    /// receive.
    pub example_query: Option<Vec<u8>>,
    /// Free-form detail.
    pub detail: String,
    /// Source location `(line, col)` of the sink argument the finding
    /// belongs to, when the analysis supplied IR provenance for the
    /// hotspot (finer than the hotspot's call span).
    pub at: Option<(u32, u32)>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.taint, self.name, self.kind)?;
        if let Some(w) = &self.witness {
            write!(f, " (witness: {:?})", String::from_utf8_lossy(w))?;
        }
        if !self.detail.is_empty() {
            write!(f, " — {}", self.detail)?;
        }
        if let Some(q) = &self.example_query {
            write!(f, "\n      e.g. {:?}", String::from_utf8_lossy(q))?;
        }
        Ok(())
    }
}

/// Outcome of checking one hotspot.
#[derive(Debug, Clone, Default)]
pub struct HotspotReport {
    /// Violations found (empty = hotspot verified safe).
    pub findings: Vec<Finding>,
    /// Number of maximal labeled nonterminals examined.
    pub checked: usize,
    /// Number verified syntactically confined.
    pub verified: usize,
    /// Precision losses from budget trips while checking this hotspot.
    /// Nonempty `degradations` with empty `findings` cannot happen: a
    /// trip always yields a [`CheckKind::BudgetExhausted`] finding.
    pub degradations: Vec<Degradation>,
    /// Intersection-engine work counters for this hotspot's checks.
    pub engine: EngineStats,
}

impl HotspotReport {
    /// `true` when every tainted substring was verified confined.
    pub fn is_safe(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for HotspotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_safe() {
            write!(f, "verified ({} labeled nonterminals)", self.checked)?;
        } else {
            writeln!(f, "{} finding(s):", self.findings.len())?;
            for finding in &self.findings {
                writeln!(f, "  - {finding}")?;
            }
        }
        for d in &self.degradations {
            writeln!(f, "  ~ degraded: {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display() {
        let f = Finding {
            nonterminal: NtId(3),
            name: "_GET[userid]".into(),
            taint: Taint::DIRECT,
            kind: CheckKind::OddQuotes,
            witness: Some(b"1'".to_vec()),
            example_query: None,
            detail: String::new(),
            at: None,
        };
        let s = f.to_string();
        assert!(s.contains("direct"));
        assert!(s.contains("_GET[userid]"));
        assert!(s.contains("odd number"));
        assert!(s.contains("1'"));
    }

    #[test]
    fn report_safety() {
        let r = HotspotReport {
            findings: vec![],
            checked: 2,
            verified: 2,
            degradations: vec![],
            engine: EngineStats::default(),
        };
        assert!(r.is_safe());
        assert!(r.to_string().contains("verified"));
    }
}
