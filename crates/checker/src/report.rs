//! Bug-report types produced by the policy-conformance checker.

use std::fmt;

use strtaint_grammar::{Degradation, EngineStats, NtId, Taint};

// `CheckKind` moved to `strtaint-policy` (the registry names the kinds
// a cascade emits); re-exported here so every existing consumer keeps
// compiling and the rule-id/display strings stay byte-identical.
pub use strtaint_policy::CheckKind;

/// Display cap applied to witness strings ([`Finding::cap_witness`]).
///
/// Witnesses are canonical shortest strings, so they are usually tiny;
/// pathological grammars can still pump very long minimal witnesses,
/// and nobody reads past a couple hundred bytes of payload. Applied
/// uniformly by every check driver — naive, prepared, and memoized
/// paths cap identically (the query cache stores *uncapped* bytes;
/// truncation is a rendering concern) — and rendered honestly in SARIF
/// via [`Finding::witness_truncated`].
pub const MAX_WITNESS_BYTES: usize = 256;

/// A policy violation for one labeled nonterminal at one hotspot.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The offending labeled nonterminal.
    pub nonterminal: NtId,
    /// Its display name (usually names the source, e.g. `_GET[userid]`).
    pub name: String,
    /// Taint labels (drives the paper's direct/indirect report split).
    pub taint: Taint,
    /// Which check fired.
    pub kind: CheckKind,
    /// A witness tainted substring demonstrating the violation, when
    /// one could be extracted (capped at [`MAX_WITNESS_BYTES`]).
    pub witness: Option<Vec<u8>>,
    /// Whether `witness` was truncated to [`MAX_WITNESS_BYTES`];
    /// renderers must say so rather than present the prefix as the
    /// full counterexample.
    pub witness_truncated: bool,
    /// A complete example query with the witness spliced into the
    /// shortest query context — what the database would actually
    /// receive.
    pub example_query: Option<Vec<u8>>,
    /// Free-form detail.
    pub detail: String,
    /// Source location `(line, col)` of the sink argument the finding
    /// belongs to, when the analysis supplied IR provenance for the
    /// hotspot (finer than the hotspot's call span).
    pub at: Option<(u32, u32)>,
}

impl Finding {
    /// Truncates the witness to [`MAX_WITNESS_BYTES`], recording the
    /// truncation. Idempotent; called by every check driver just
    /// before the report leaves the checker.
    pub fn cap_witness(&mut self) {
        if let Some(w) = &mut self.witness {
            if w.len() > MAX_WITNESS_BYTES {
                w.truncate(MAX_WITNESS_BYTES);
                self.witness_truncated = true;
            }
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.taint, self.name, self.kind)?;
        if let Some(w) = &self.witness {
            write!(f, " (witness: {:?}{})", String::from_utf8_lossy(w), if self.witness_truncated { " [truncated]" } else { "" })?;
        }
        if !self.detail.is_empty() {
            write!(f, " — {}", self.detail)?;
        }
        if let Some(q) = &self.example_query {
            write!(f, "\n      e.g. {:?}", String::from_utf8_lossy(q))?;
        }
        Ok(())
    }
}

/// Outcome of checking one hotspot.
#[derive(Debug, Clone, Default)]
pub struct HotspotReport {
    /// Violations found (empty = hotspot verified safe).
    pub findings: Vec<Finding>,
    /// Number of maximal labeled nonterminals examined.
    pub checked: usize,
    /// Number verified syntactically confined.
    pub verified: usize,
    /// Precision losses from budget trips while checking this hotspot.
    /// Nonempty `degradations` with empty `findings` cannot happen: a
    /// trip always yields a [`CheckKind::BudgetExhausted`] finding.
    pub degradations: Vec<Degradation>,
    /// Intersection-engine work counters for this hotspot's checks.
    pub engine: EngineStats,
    /// Canonical query skeletons for this hotspot: the (length, lex)-
    /// minimal string per maximal labeled nonterminal with
    /// `VAR_MARKER` at the tainted position (sorted, deduplicated).
    /// Attached by the analysis driver via the checker's
    /// `skeletons_for` API; empty when export was not requested.
    pub skeletons: Vec<Vec<u8>>,
    /// Whether `skeletons` covers every labeled nonterminal of the
    /// hotspot; `false` when any candidate exceeded the reconstruction
    /// budget (a guard profile built from an incomplete set must say
    /// so rather than over-block).
    pub skeletons_complete: bool,
}

impl HotspotReport {
    /// `true` when every tainted substring was verified confined.
    pub fn is_safe(&self) -> bool {
        self.findings.is_empty()
    }

    /// The skeleton set rendered for display or profile export: lossy
    /// UTF-8 with the tainted-position marker shown as `?`. This is
    /// the single conversion point both the cold CLI path and the
    /// daemon's persisted verdicts use, which is what makes profile
    /// output byte-identical across replay.
    pub fn skeleton_strings(&self) -> Vec<String> {
        self.skeletons
            .iter()
            .map(|s| crate::skeletons::skeleton_display(s))
            .collect()
    }
}

impl fmt::Display for HotspotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_safe() {
            write!(f, "verified ({} labeled nonterminals)", self.checked)?;
        } else {
            writeln!(f, "{} finding(s):", self.findings.len())?;
            for finding in &self.findings {
                writeln!(f, "  - {finding}")?;
            }
        }
        for d in &self.degradations {
            writeln!(f, "  ~ degraded: {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display() {
        let f = Finding {
            nonterminal: NtId(3),
            name: "_GET[userid]".into(),
            taint: Taint::DIRECT,
            kind: CheckKind::OddQuotes,
            witness: Some(b"1'".to_vec()),
            witness_truncated: false,
            example_query: None,
            detail: String::new(),
            at: None,
        };
        let s = f.to_string();
        assert!(s.contains("direct"));
        assert!(s.contains("_GET[userid]"));
        assert!(s.contains("odd number"));
        assert!(s.contains("1'"));
    }

    #[test]
    fn report_safety() {
        let r = HotspotReport {
            findings: vec![],
            checked: 2,
            verified: 2,
            degradations: vec![],
            engine: EngineStats::default(),
            skeletons: vec![],
            skeletons_complete: false,
        };
        assert!(r.is_safe());
        assert!(r.to_string().contains("verified"));
    }

    #[test]
    fn skeleton_strings_mark_placeholder() {
        let r = HotspotReport {
            skeletons: vec![b"SELECT \x1a".to_vec()],
            skeletons_complete: true,
            ..HotspotReport::default()
        };
        assert_eq!(r.skeleton_strings(), vec!["SELECT ?".to_string()]);
    }
}
