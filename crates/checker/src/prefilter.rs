//! Zero-dependency Aho–Corasick prefilter for the C4 attack-fragment
//! check.
//!
//! C4 asks whether `L(G, x) ∩ L(Σ* f Σ*)` is nonempty for any attack
//! fragment `f` (case-insensitively). The exact answer comes from a
//! Bar-Hillel intersection, which is the single most expensive query of
//! the cascade. This module answers a cheaper question first:
//!
//! > Can *any* fragment even be spelled with the bytes the grammar can
//! > realize?
//!
//! Every string of `L(G, x)` is drawn from the prepared grammar's
//! realized terminal alphabet ([`PreparedGrammar::alphabet`]). If no
//! fragment can be written using only (case-folds of) those bytes, then
//! no string of the language contains a fragment, the intersection is
//! provably empty, and the engine query can be skipped outright.
//!
//! Soundness: the prefilter may only ever *prove absence*. A negative
//! [`Prefilter::any_spellable`] answer is a proof that the intersection
//! is empty (alphabet closure is an over-approximation of the
//! language); a positive answer proves nothing and falls through to the
//! exact engine. The prefilter therefore can never introduce a finding,
//! and can never suppress one.
//!
//! The patterns are [`crate::dfas::ATTACK_FRAGMENTS`] — the same
//! constant that builds the exact C4 automaton — so the filter and the
//! automaton cannot drift apart. The full Aho–Corasick scan
//! ([`Prefilter::contains_match`]) backs a debug assertion that every
//! C4 witness really contains a fragment, and is cross-validated
//! against the DFA in tests.
//!
//! [`PreparedGrammar::alphabet`]: strtaint_grammar::prepared::PreparedGrammar::alphabet

use std::collections::VecDeque;

use crate::dfas::ATTACK_FRAGMENTS;

/// Sentinel for a missing trie edge during construction.
const NO_EDGE: u32 = u32::MAX;

/// Case-insensitive multi-pattern matcher over the attack fragments.
///
/// Built once per `Checker`; both operations are allocation-free.
#[derive(Debug, Clone)]
pub(crate) struct Prefilter {
    /// Dense transition function of the Aho–Corasick automaton (goto
    /// edges with failure links pre-resolved), indexed by
    /// `[state][folded byte]`. Tiny: one state per pattern byte.
    delta: Vec<[u32; 256]>,
    /// States at which some fragment has been fully matched (output
    /// states, closed under failure links).
    accepting: Vec<bool>,
    /// The case-folded patterns, kept for the spellability test.
    fragments: Vec<Vec<u8>>,
}

impl Prefilter {
    pub(crate) fn new() -> Self {
        let fragments: Vec<Vec<u8>> = ATTACK_FRAGMENTS
            .iter()
            .map(|f| f.to_ascii_lowercase())
            .collect();

        // Trie over the folded patterns.
        let mut goto_fn: Vec<[u32; 256]> = vec![[NO_EDGE; 256]];
        let mut accepting = vec![false];
        for f in &fragments {
            let mut s = 0usize;
            for &b in f {
                let t = goto_fn[s][b as usize];
                s = if t == NO_EDGE {
                    goto_fn.push([NO_EDGE; 256]);
                    accepting.push(false);
                    let id = (goto_fn.len() - 1) as u32;
                    goto_fn[s][b as usize] = id;
                    id as usize
                } else {
                    t as usize
                };
            }
            accepting[s] = true;
        }

        // Breadth-first failure-link computation, resolving missing
        // edges into a total transition function as we go. BFS order
        // guarantees `delta[fail(s)]` is final before `s` is expanded.
        let mut fail = vec![0u32; goto_fn.len()];
        let mut delta = goto_fn.clone();
        let mut queue = VecDeque::new();
        for b in 0..256 {
            let t = goto_fn[0][b];
            if t == NO_EDGE {
                delta[0][b] = 0;
            } else if !queue.contains(&t) {
                fail[t as usize] = 0;
                queue.push_back(t);
            }
        }
        while let Some(s) = queue.pop_front() {
            let s = s as usize;
            let f = fail[s] as usize;
            if accepting[f] {
                accepting[s] = true;
            }
            for b in 0..256 {
                let t = goto_fn[s][b];
                if t == NO_EDGE {
                    delta[s][b] = delta[f][b];
                } else {
                    fail[t as usize] = delta[f][b];
                    queue.push_back(t);
                }
            }
        }

        Prefilter {
            delta,
            accepting,
            fragments,
        }
    }

    /// `true` iff `text` contains some attack fragment
    /// (case-insensitively). Linear single-pass scan; agrees with
    /// `dfas::attack_fragments()` acceptance by construction (verified
    /// in tests).
    pub(crate) fn contains_match(&self, text: &[u8]) -> bool {
        let mut s = 0usize;
        for &b in text {
            s = self.delta[s][b.to_ascii_lowercase() as usize] as usize;
            if self.accepting[s] {
                return true;
            }
        }
        false
    }

    /// `true` iff some fragment can be spelled using only bytes of
    /// `alphabet` (after case folding).
    ///
    /// When this returns `false`, no string over `alphabet` — hence no
    /// string of a language realized over it — contains a fragment, so
    /// the C4 intersection is empty without running the engine.
    pub(crate) fn any_spellable(&self, alphabet: &[u8]) -> bool {
        let mut present = [false; 256];
        for &b in alphabet {
            present[b.to_ascii_lowercase() as usize] = true;
        }
        self.fragments
            .iter()
            .any(|f| f.iter().all(|&b| present[b as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfas::attack_fragments;

    #[test]
    fn scan_agrees_with_exact_dfa() {
        let pf = Prefilter::new();
        let dfa = attack_fragments();
        let samples: &[&[u8]] = &[
            b"",
            b"plain value",
            b"12345",
            b"1'; DROP TABLE unp_user; --",
            b"1 union select password",
            b"DrOp TaBlE x",
            b"a-b",
            b"--",
            b"- -",
            b"x' or 'a'='a",
            b" OR ",
            b"nor mal",
            b"/*comment*/",
            b"/ *",
            b"a;b",
            b"#",
            b"drop tabl",
            b"union selec",
            b"UNION SELECT",
        ];
        for s in samples {
            assert_eq!(
                pf.contains_match(s),
                dfa.accepts(s),
                "prefilter vs DFA on {:?}",
                String::from_utf8_lossy(s)
            );
        }
    }

    #[test]
    fn overlapping_and_boundary_matches() {
        let pf = Prefilter::new();
        // Fragment found mid-string, overlapping a near-miss prefix.
        assert!(pf.contains_match(b"drop drop table"));
        // Suffix-only match.
        assert!(pf.contains_match(b"xxxxx;"));
        // One-byte fragments.
        assert!(pf.contains_match(b"#"));
        assert!(!pf.contains_match(b"ab"));
    }

    #[test]
    fn spellability_is_an_alphabet_overapproximation() {
        let pf = Prefilter::new();
        // Digits alone cannot spell any fragment.
        assert!(!pf.any_spellable(b"0123456789"));
        // Any alphabet containing ';' can spell the ';' fragment.
        assert!(pf.any_spellable(b"0123456789;"));
        // "--" needs only '-'.
        assert!(pf.any_spellable(b"-"));
        // Case folding: upper-case letters spell lower-folded patterns.
        assert!(pf.any_spellable(b"DROPTABLE "));
        // Letters without space/punctuation cannot spell the
        // multi-word fragments, '--', ';', '#', or '/*'.
        assert!(!pf.any_spellable(b"abcdefghijklmnopqrstuvwxyz"));
    }

    #[test]
    fn unspellable_alphabet_implies_no_match() {
        // The soundness direction: if `any_spellable(alpha)` is false,
        // no string over `alpha` may match. Exhaustively check short
        // strings over a small unspellable alphabet.
        let pf = Prefilter::new();
        let alpha = b"0123456789";
        assert!(!pf.any_spellable(alpha));
        let dfa = attack_fragments();
        let mut stack: Vec<Vec<u8>> = vec![Vec::new()];
        while let Some(s) = stack.pop() {
            assert!(!pf.contains_match(&s));
            assert!(!dfa.accepts(&s));
            if s.len() < 3 {
                for &b in alpha {
                    let mut t = s.clone();
                    t.push(b);
                    stack.push(t);
                }
            }
        }
    }
}
