//! Edge cases of the derivability check C5 (paper §3.2.2) and the
//! conservative fallbacks that keep Theorem 3.4 (soundness) intact.

use strtaint_checker::{CheckKind, Checker};
use strtaint_grammar::{Cfg, NtId, Symbol, Taint};

fn tainted(g: &mut Cfg, name: &str, strings: &[&[u8]]) -> NtId {
    let x = g.add_nonterminal(name);
    g.set_taint(x, Taint::DIRECT);
    for s in strings {
        g.add_literal_production(x, s);
    }
    x
}

fn query(g: &mut Cfg, pre: &[u8], x: NtId, post: &[u8]) -> NtId {
    let root = g.add_nonterminal("query");
    let mut rhs = g.literal_symbols(pre);
    rhs.push(Symbol::N(x));
    rhs.extend(g.literal_symbols(post));
    g.add_production(root, rhs);
    root
}

#[test]
fn in_list_position_verifies_numeric() {
    let mut g = Cfg::new();
    let x = tainted(&mut g, "ids", &[b"1", b"2", b"44"]);
    let root = query(&mut g, b"SELECT * FROM t WHERE id IN (", x, b")");
    let r = Checker::new().check_hotspot(&g, root);
    assert!(r.is_safe(), "{r}");
}

#[test]
fn table_name_position() {
    let mut g = Cfg::new();
    let safe = tainted(&mut g, "tbl", &[b"users", b"posts"]);
    let root = query(&mut g, b"SELECT * FROM ", safe, b" WHERE id = 1");
    let r = Checker::new().check_hotspot(&g, root);
    assert!(r.is_safe(), "{r}");

    let mut g = Cfg::new();
    let unsafe_tbl = tainted(&mut g, "tbl", &[b"users", b"users where 1=1"]);
    let root = query(&mut g, b"SELECT * FROM ", unsafe_tbl, b" WHERE id = 1");
    let r = Checker::new().check_hotspot(&g, root);
    assert!(!r.is_safe(), "multi-token table value must be rejected");
}

#[test]
fn glued_context_reported() {
    // The tainted value glues onto a constant identifier: token
    // boundaries become attacker-controlled.
    let mut g = Cfg::new();
    let x = tainted(&mut g, "suffix", &[b"a", b"b"]);
    let root = query(&mut g, b"SELECT * FROM tbl", x, b" WHERE id = 1");
    let r = Checker::new().check_hotspot(&g, root);
    assert!(!r.is_safe());
    assert_eq!(r.findings[0].kind, CheckKind::GluedContext);
}

#[test]
fn unbounded_context_is_conservative() {
    // The query skeleton itself is infinite (a recursive constant
    // part): context enumeration fails, and the checker reports rather
    // than guessing — the sound default.
    let mut g = Cfg::new();
    let x = tainted(&mut g, "v", &[b"name"]);
    let root = g.add_nonterminal("query");
    // query -> "SELECT * FROM t WHERE " conds ; conds -> "x=1" | conds " AND x=1"
    let conds = g.add_nonterminal("conds");
    g.add_literal_production(conds, b"x = 1");
    let mut rec = vec![Symbol::N(conds)];
    rec.extend(g.literal_symbols(b" AND x = 1"));
    g.add_production(conds, rec);
    let mut rhs = g.literal_symbols(b"SELECT * FROM t WHERE ");
    rhs.push(Symbol::N(conds));
    rhs.extend(g.literal_symbols(b" ORDER BY "));
    rhs.push(Symbol::N(x));
    g.add_production(root, rhs);
    let r = Checker::new().check_hotspot(&g, root);
    assert!(!r.is_safe());
    assert_eq!(r.findings[0].kind, CheckKind::Unresolved);
}

#[test]
fn two_tainted_vars_in_one_query() {
    // Sibling tainted subgrammars: each is checked with the other
    // spliced as a representative sample.
    let mut g = Cfg::new();
    let a = tainted(&mut g, "col", &[b"name", b"age"]);
    let b = tainted(&mut g, "num", &[b"1", b"2"]);
    let root = g.add_nonterminal("query");
    let mut rhs = g.literal_symbols(b"SELECT ");
    rhs.push(Symbol::N(a));
    rhs.extend(g.literal_symbols(b" FROM t LIMIT "));
    rhs.push(Symbol::N(b));
    g.add_production(root, rhs);
    let r = Checker::new().check_hotspot(&g, root);
    assert!(r.is_safe(), "{r}");
    assert_eq!(r.checked, 2);
}

#[test]
fn limit_position_rejects_nonnumeric() {
    let mut g = Cfg::new();
    let x = tainted(&mut g, "limit", &[b"10", b"10 OFFSET 0 UNION SELECT pw FROM u"]);
    let root = query(&mut g, b"SELECT * FROM t LIMIT ", x, b"");
    let r = Checker::new().check_hotspot(&g, root);
    assert!(!r.is_safe());
}

#[test]
fn string_literal_context_via_c5() {
    // A value appearing BOTH quoted and bare: the quoted occurrence is
    // fine but the bare occurrence fails the literal checks and lands
    // in C5, which must still decide per context.
    let mut g = Cfg::new();
    let x = tainted(&mut g, "v", &[b"7"]);
    let root = g.add_nonterminal("query");
    let mut rhs = g.literal_symbols(b"SELECT * FROM t WHERE a='");
    rhs.push(Symbol::N(x));
    rhs.extend(g.literal_symbols(b"' AND b="));
    rhs.push(Symbol::N(x));
    g.add_production(root, rhs);
    let r = Checker::new().check_hotspot(&g, root);
    assert!(r.is_safe(), "{r}");
}

#[test]
fn empty_language_is_verified() {
    let mut g = Cfg::new();
    let x = g.add_nonterminal("dead");
    g.set_taint(x, Taint::DIRECT);
    // no productions: empty language
    let root = query(&mut g, b"SELECT ", x, b" FROM t");
    let r = Checker::new().check_hotspot(&g, root);
    assert!(r.is_safe());
}

#[test]
fn function_call_position() {
    let mut g = Cfg::new();
    let x = tainted(&mut g, "fn", &[b"upper", b"lower"]);
    let root = g.add_nonterminal("query");
    let mut rhs = g.literal_symbols(b"SELECT ");
    rhs.push(Symbol::N(x));
    rhs.extend(g.literal_symbols(b"(name) FROM t"));
    g.add_production(root, rhs);
    // fn glues onto '(' — lexically fine (punctuation boundary), and
    // Ident(…) is a FuncCall.
    let r = Checker::new().check_hotspot(&g, root);
    assert!(r.is_safe(), "{r}");
}
