//! Finding classification, shared by every policy.
//!
//! Moved here from `strtaint-checker` so the registry can name the
//! kinds a cascade emits without a dependency cycle. The rule-id and
//! display strings for the original seven variants are a compatibility
//! surface (SARIF output, serialized daemon verdicts) and must never
//! change; new policies append variants with fresh ids.

use std::fmt;

/// Which check classified the finding (paper §3.2.1–3.2.2 for the SQL
/// cascade; the XSS and data-defined cascades reuse the same space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// C1: the tainted substring can contain an odd number of
    /// unescaped quotes — not confinable in any query.
    OddQuotes,
    /// C2: the substring always sits inside a string literal but can
    /// contain an unescaped quote, escaping the literal.
    EscapesLiteral,
    /// C4: the substring can contain a known non-confinable attack
    /// fragment (`DROP TABLE`, `--`, `;`, …) outside quotes.
    AttackString,
    /// C5: the substring is not derivable from any single symbol of
    /// the reference SQL grammar in its context.
    NotDerivable,
    /// C5: the substring's position glues onto adjacent tokens, so
    /// token boundaries are attacker-controlled.
    GluedContext,
    /// The checker could not enumerate the query contexts (infinite or
    /// too many); reported conservatively.
    Unresolved,
    /// The analysis budget (deadline, fuel, or grammar cap) ran out
    /// before the hotspot could be verified; reported conservatively —
    /// a budget trip may cause a false positive, never a silent
    /// "verified".
    BudgetExhausted,
    /// Shell policy: the substring can contain a shell metacharacter
    /// (`;`, `|`, `` ` ``, `$`, quotes, redirection, …), so it can
    /// terminate or extend the command.
    ShellMetachar,
    /// Shell policy: the substring is not confined to a single shell
    /// word (e.g. it can contain whitespace, splitting into extra
    /// arguments) even though no metacharacter was derivable.
    ShellUnconfined,
    /// Path policy: the substring can contain a `..` segment, escaping
    /// the intended directory.
    PathTraversal,
    /// Path policy: the substring can start with a path separator,
    /// rebasing the access to an absolute path.
    PathAbsolute,
    /// Path policy: the substring is not confined to a safe relative
    /// path alphabet (NUL bytes, backslashes, wrappers, …).
    PathUnconfined,
    /// Eval policy: the substring can contain PHP code tokens
    /// (statement separators, call parentheses, variable sigils, …),
    /// so it can inject code into the evaluated string.
    CodeInjection,
    /// Eval policy: the substring is not confined to a single bare
    /// identifier/number token even though no code token was derivable.
    CodeUnconfined,
}

impl CheckKind {
    /// Stable rule identifier, shared by the SARIF renderer and the
    /// daemon's serialized verdicts. A compatibility surface: adding a
    /// variant adds an id, existing ids never change meaning.
    pub fn rule_id(self) -> &'static str {
        match self {
            CheckKind::OddQuotes => "strtaint/odd-quotes",
            CheckKind::EscapesLiteral => "strtaint/escapes-literal",
            CheckKind::AttackString => "strtaint/attack-string",
            CheckKind::NotDerivable => "strtaint/not-derivable",
            CheckKind::GluedContext => "strtaint/glued-context",
            CheckKind::Unresolved => "strtaint/unresolved",
            CheckKind::BudgetExhausted => "strtaint/budget-exhausted",
            CheckKind::ShellMetachar => "strtaint/shell-metachar",
            CheckKind::ShellUnconfined => "strtaint/shell-unconfined",
            CheckKind::PathTraversal => "strtaint/path-traversal",
            CheckKind::PathAbsolute => "strtaint/path-absolute",
            CheckKind::PathUnconfined => "strtaint/path-unconfined",
            CheckKind::CodeInjection => "strtaint/code-injection",
            CheckKind::CodeUnconfined => "strtaint/code-unconfined",
        }
    }

    /// Inverse of [`CheckKind::rule_id`]; `None` for unknown ids
    /// (version-skewed or corrupt artifacts — treat as invalid).
    pub fn from_rule_id(id: &str) -> Option<CheckKind> {
        Some(match id {
            "strtaint/odd-quotes" => CheckKind::OddQuotes,
            "strtaint/escapes-literal" => CheckKind::EscapesLiteral,
            "strtaint/attack-string" => CheckKind::AttackString,
            "strtaint/not-derivable" => CheckKind::NotDerivable,
            "strtaint/glued-context" => CheckKind::GluedContext,
            "strtaint/unresolved" => CheckKind::Unresolved,
            "strtaint/budget-exhausted" => CheckKind::BudgetExhausted,
            "strtaint/shell-metachar" => CheckKind::ShellMetachar,
            "strtaint/shell-unconfined" => CheckKind::ShellUnconfined,
            "strtaint/path-traversal" => CheckKind::PathTraversal,
            "strtaint/path-absolute" => CheckKind::PathAbsolute,
            "strtaint/path-unconfined" => CheckKind::PathUnconfined,
            "strtaint/code-injection" => CheckKind::CodeInjection,
            "strtaint/code-unconfined" => CheckKind::CodeUnconfined,
            _ => return None,
        })
    }

    /// Every variant, in declaration order — drives the rule-id
    /// stability snapshot and doc generation.
    pub fn all() -> &'static [CheckKind] {
        &[
            CheckKind::OddQuotes,
            CheckKind::EscapesLiteral,
            CheckKind::AttackString,
            CheckKind::NotDerivable,
            CheckKind::GluedContext,
            CheckKind::Unresolved,
            CheckKind::BudgetExhausted,
            CheckKind::ShellMetachar,
            CheckKind::ShellUnconfined,
            CheckKind::PathTraversal,
            CheckKind::PathAbsolute,
            CheckKind::PathUnconfined,
            CheckKind::CodeInjection,
            CheckKind::CodeUnconfined,
        ]
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::OddQuotes => "odd number of unescaped quotes",
            CheckKind::EscapesLiteral => "can escape its string literal",
            CheckKind::AttackString => "derives a known attack fragment",
            CheckKind::NotDerivable => "not derivable from the SQL grammar in context",
            CheckKind::GluedContext => "attacker-controlled token boundary",
            CheckKind::Unresolved => "contexts could not be enumerated",
            CheckKind::BudgetExhausted => "analysis budget exhausted before verification",
            CheckKind::ShellMetachar => "derives a shell metacharacter",
            CheckKind::ShellUnconfined => "not confined to a single shell word",
            CheckKind::PathTraversal => "derives a .. path segment",
            CheckKind::PathAbsolute => "can rebase to an absolute path",
            CheckKind::PathUnconfined => "not confined to a safe relative path",
            CheckKind::CodeInjection => "derives a PHP code token",
            CheckKind::CodeUnconfined => "not confined to a single code token",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for &k in CheckKind::all() {
            assert_eq!(CheckKind::from_rule_id(k.rule_id()), Some(k));
        }
        assert_eq!(CheckKind::from_rule_id("strtaint/unknown"), None);
    }

    #[test]
    fn rule_ids_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for &k in CheckKind::all() {
            assert!(seen.insert(k.rule_id()), "duplicate rule id {}", k.rule_id());
        }
    }

    #[test]
    fn legacy_ids_unchanged() {
        // Compatibility pin: these exact strings appear in serialized
        // daemon verdicts and committed SARIF baselines.
        assert_eq!(CheckKind::OddQuotes.rule_id(), "strtaint/odd-quotes");
        assert_eq!(CheckKind::EscapesLiteral.rule_id(), "strtaint/escapes-literal");
        assert_eq!(CheckKind::AttackString.rule_id(), "strtaint/attack-string");
        assert_eq!(CheckKind::NotDerivable.rule_id(), "strtaint/not-derivable");
        assert_eq!(CheckKind::GluedContext.rule_id(), "strtaint/glued-context");
        assert_eq!(CheckKind::Unresolved.rule_id(), "strtaint/unresolved");
        assert_eq!(CheckKind::BudgetExhausted.rule_id(), "strtaint/budget-exhausted");
    }
}
