//! Data-driven injection-policy registry.
//!
//! The paper's checking recipe is generic: a sink is safe iff the CFG
//! of its tainted argument fragment, intersected with a policy
//! automaton, is empty (plus derivability-based confinement for the
//! harder cases). This crate captures that genericity as data. A
//! [`Policy`] names a vulnerability class — its stable id, the sink
//! functions/methods (with the checked argument position), the policy
//! automata built from the byte-class DFA toolkit in
//! `strtaint-automata`, the confinement cascade that orders provers
//! and refuters, a severity, and the SARIF rule ids it can emit.
//!
//! The two historical classes, SQL command-injection (SQLCIV, checks
//! C1–C5) and XSS, are re-expressed as the first two registry entries;
//! their cascades stay hand-built inside `strtaint-checker` (they need
//! marked-grammar machinery beyond a DFA pipeline) and are referenced
//! here by [`PolicyKind::SqlCiv`] / [`PolicyKind::Xss`] so their
//! verdicts remain byte-identical. Three further classes — shell
//! command injection, path traversal, and eval/code injection — are
//! defined entirely as data: a [`Cascade`] of DFA steps any generic
//! driver can run.
//!
//! Layering: this crate depends only on `strtaint-automata`. The
//! analysis crate consumes the sink tables, the checker crate consumes
//! the cascades, and neither needs the other to agree on anything but
//! the policy id carried on each hotspot.

pub mod fixes;
mod kinds;
pub mod registry;

pub use fixes::{fix_template, fix_templates, FixKind, FixTemplate};
pub use kinds::CheckKind;
pub use registry::{
    builtin, find, parse_selection, Cascade, Policy, PolicyKind, Residual, Severity, Step,
    StepAction,
};

/// Policy id of the default SQL command-injection policy.
pub const SQL_POLICY: &str = "sql";
/// Policy id of the cross-site-scripting policy.
pub const XSS_POLICY: &str = "xss";
