//! The built-in policy registry.
//!
//! A [`Policy`] bundles everything a vulnerability class needs across
//! the pipeline: the analysis layer reads the sink tables to decide
//! which calls become hotspots (and which argument is the sink
//! argument), the checker layer compiles the [`Cascade`] into prepared
//! intersection queries, and the rendering layer reads the rule ids.
//!
//! ## Cascade semantics
//!
//! A cascade is run against `L(X)` — the language of one maximal
//! tainted nonterminal, *not* the whole sink argument, exactly as the
//! paper prescribes — one [`Step`] at a time, in order:
//!
//! * [`StepAction::VerifyIfEmpty`] is a **prover**: if
//!   `L(X) ∩ L(step.dfa)` is empty the hotspot fragment is verified
//!   confined and the cascade short-circuits with no finding. (The
//!   DFA is the *complement* of the safe language, so emptiness means
//!   "everything the attacker can produce is confined".)
//! * [`StepAction::ReportIfNonEmpty`] is a **refuter**: if
//!   `L(X) ∩ L(step.dfa)` is non-empty the intersection witness is
//!   reported with the step's [`CheckKind`] and the cascade
//!   short-circuits with a finding.
//!
//! If no step fires, the [`Residual`] decides: `Verified` for
//! complete cascades, `Report` for conservative ones (sound default —
//! a fragment neither proven confined nor matched by a refuter is
//! still attacker-shaped). Cheap provers are listed first by
//! construction, so every data-defined cascade is "cheap-first".

use strtaint_automata::{ByteSet, Dfa, Nfa};

use crate::kinds::CheckKind;

/// How bad a confirmed finding of this class typically is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Low,
    Medium,
    High,
    Critical,
}

impl Severity {
    /// Lowercase label for CLI/daemon output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
            Severity::Critical => "critical",
        }
    }
}

/// What a cascade step does with its intersection result.
#[derive(Debug, Clone)]
pub enum StepAction {
    /// Prover: empty intersection ⇒ fragment verified, stop.
    VerifyIfEmpty,
    /// Refuter: non-empty intersection ⇒ report `kind`, stop.
    ReportIfNonEmpty {
        kind: CheckKind,
        detail: &'static str,
    },
}

/// One prepared-intersection query in a policy's cascade.
#[derive(Debug, Clone)]
pub struct Step {
    /// The policy automaton intersected with `L(X)`.
    pub dfa: Dfa,
    /// Prover or refuter.
    pub action: StepAction,
}

/// Verdict when no cascade step fires.
#[derive(Debug, Clone)]
pub enum Residual {
    /// The steps are exhaustive: nothing fired ⇒ verified.
    Verified,
    /// Conservative: nothing fired ⇒ still report `kind`.
    Report {
        kind: CheckKind,
        detail: &'static str,
    },
}

/// An ordered prover/refuter pipeline over byte-class DFAs.
#[derive(Debug, Clone)]
pub struct Cascade {
    pub steps: Vec<Step>,
    pub residual: Residual,
}

/// How a policy's verdicts are computed.
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// The hand-built SQLCIV C1–C5 cascade in `strtaint-checker`
    /// (needs marked grammars and SQL-context derivability).
    SqlCiv,
    /// The hand-built HTML-context XSS checks in `strtaint-checker`
    /// (needs marked grammars for context gating).
    Xss,
    /// A fully data-defined DFA cascade run by the generic driver.
    Cascade(Cascade),
}

/// One vulnerability class, end to end.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Stable id: names the class in `--policy`, `Config::policies`,
    /// daemon requests, and replay evidence. Never reused.
    pub id: &'static str,
    /// Human-readable one-liner for `--list-policies`.
    pub name: &'static str,
    /// What the class means and what the cascade proves.
    pub description: &'static str,
    pub severity: Severity,
    /// Sink functions as `(name, checked-argument-index)`.
    pub sink_functions: &'static [(&'static str, usize)],
    /// Sink methods (called as `$obj->m(..)`), same shape.
    pub sink_methods: &'static [(&'static str, usize)],
    /// Language constructs (not plain calls) that act as sinks for
    /// this policy: `"echo"`, `"include"`, `"preg_replace/e"`.
    pub sink_constructs: &'static [&'static str],
    /// Every SARIF rule id findings of this policy can carry.
    pub rule_ids: &'static [&'static str],
    pub kind: PolicyKind,
}

/// `Σ* · [set] · Σ*` — strings containing any byte of `set`.
fn contains_any(set: ByteSet) -> Dfa {
    let any = Nfa::any_string();
    Dfa::from_nfa(&any.concat(&Nfa::class(set)).concat(&any)).minimize()
}

/// `Σ* · lit · Σ*` — strings containing the literal `lit`.
fn contains_literal(lit: &[u8]) -> Dfa {
    let any = Nfa::any_string();
    Dfa::from_nfa(&any.concat(&Nfa::literal(lit)).concat(&any)).minimize()
}

/// `[set] · Σ*` — strings starting with a byte of `set` (rejects ε).
fn starts_with(set: ByteSet) -> Dfa {
    Dfa::from_nfa(&Nfa::class(set).concat(&Nfa::any_string())).minimize()
}

/// Complement of `[set]*` — strings *not* confined to the alphabet
/// `set`. Empty intersection with this proves charset confinement.
fn not_confined_to(set: ByteSet) -> Dfa {
    Dfa::from_nfa(&Nfa::class(set).star()).minimize().complement()
}

fn alnum() -> ByteSet {
    ByteSet::range(b'A', b'Z')
        .union(&ByteSet::range(b'a', b'z'))
        .union(&ByteSet::range(b'0', b'9'))
}

/// Bytes that are always safe inside a single shell word: no
/// whitespace, no quoting, no expansion, no redirection, no globbing.
fn shell_word_safe() -> ByteSet {
    alnum().union(&ByteSet::from_bytes(*b"_-./:=@%+,"))
}

/// Shell metacharacters: bytes that terminate the word or command, or
/// trigger expansion — deriving any one of these refutes confinement.
fn shell_metachars() -> ByteSet {
    ByteSet::from_bytes(*b";|&$`<>(){}[]*?~!'\"\\\n\r")
}

/// Safe relative-path alphabet (dots and slashes allowed; the `..`
/// and leading-`/` refuters have already run when this is consulted).
fn path_safe() -> ByteSet {
    alnum().union(&ByteSet::from_bytes(*b"_-./"))
}

/// PHP code tokens for the eval policy: any of these inside an
/// evaluated string lets the attacker leave the intended expression.
fn code_tokens() -> ByteSet {
    ByteSet::from_bytes(*b";(){}$'\"`=<>[]\\#&|+-*/")
}

fn shell_policy() -> Policy {
    Policy {
        id: "shell",
        name: "shell command injection",
        description: "tainted data reaches a command-execution sink; verified only when \
                      confined to a single shell word with no metacharacters",
        severity: Severity::Critical,
        sink_functions: &[
            ("exec", 0),
            ("system", 0),
            ("shell_exec", 0),
            ("passthru", 0),
            ("popen", 0),
            ("proc_open", 0),
        ],
        sink_methods: &[],
        sink_constructs: &["backtick"],
        rule_ids: &["strtaint/shell-metachar", "strtaint/shell-unconfined"],
        kind: PolicyKind::Cascade(Cascade {
            steps: vec![
                // Prover first (cheap-first): confined to one word.
                Step {
                    dfa: not_confined_to(shell_word_safe()),
                    action: StepAction::VerifyIfEmpty,
                },
                Step {
                    dfa: contains_any(shell_metachars()),
                    action: StepAction::ReportIfNonEmpty {
                        kind: CheckKind::ShellMetachar,
                        detail: "shell: can terminate or extend the command",
                    },
                },
            ],
            // Whitespace and other non-word bytes split arguments —
            // argument injection — so the residual stays a report.
            residual: Residual::Report {
                kind: CheckKind::ShellUnconfined,
                detail: "shell: can split into additional arguments",
            },
        }),
    }
}

fn path_policy() -> Policy {
    Policy {
        id: "path",
        name: "path traversal",
        description: "tainted data reaches a filesystem path sink; verified only when \
                      confined to a relative path with no .. segments",
        severity: Severity::High,
        sink_functions: &[
            ("fopen", 0),
            ("file_get_contents", 0),
            ("file_put_contents", 0),
            ("readfile", 0),
            ("unlink", 0),
            ("opendir", 0),
        ],
        sink_methods: &[],
        sink_constructs: &["include"],
        rule_ids: &[
            "strtaint/path-traversal",
            "strtaint/path-absolute",
            "strtaint/path-unconfined",
        ],
        kind: PolicyKind::Cascade(Cascade {
            steps: vec![
                // Prover: no dots, no slashes — a bare file-name stem.
                Step {
                    dfa: not_confined_to(alnum().union(&ByteSet::from_bytes(*b"_-"))),
                    action: StepAction::VerifyIfEmpty,
                },
                Step {
                    dfa: contains_literal(b".."),
                    action: StepAction::ReportIfNonEmpty {
                        kind: CheckKind::PathTraversal,
                        detail: "path: can escape the intended directory",
                    },
                },
                Step {
                    dfa: starts_with(ByteSet::from_bytes(*b"/\\")),
                    action: StepAction::ReportIfNonEmpty {
                        kind: CheckKind::PathAbsolute,
                        detail: "path: can name an absolute filesystem path",
                    },
                },
                // Prover: charset-confined, and the two refuters above
                // already proved no `..` and no leading separator, so
                // this is a safe relative path.
                Step {
                    dfa: not_confined_to(path_safe()),
                    action: StepAction::VerifyIfEmpty,
                },
            ],
            residual: Residual::Report {
                kind: CheckKind::PathUnconfined,
                detail: "path: NUL bytes, backslashes, or stream wrappers possible",
            },
        }),
    }
}

fn eval_policy() -> Policy {
    Policy {
        id: "eval",
        name: "eval/code injection",
        description: "tainted data reaches a code-evaluation sink; verified only when \
                      confined to a single identifier or number token",
        severity: Severity::Critical,
        sink_functions: &[("eval", 0), ("create_function", 1), ("assert", 0)],
        sink_methods: &[],
        sink_constructs: &["preg_replace/e"],
        rule_ids: &["strtaint/code-injection", "strtaint/code-unconfined"],
        kind: PolicyKind::Cascade(Cascade {
            steps: vec![
                // Prover: one bare identifier/number token cannot
                // change the parse of the surrounding code template.
                Step {
                    dfa: not_confined_to(alnum().union(&ByteSet::singleton(b'_'))),
                    action: StepAction::VerifyIfEmpty,
                },
                Step {
                    dfa: contains_any(code_tokens()),
                    action: StepAction::ReportIfNonEmpty {
                        kind: CheckKind::CodeInjection,
                        detail: "eval: can inject PHP code tokens",
                    },
                },
            ],
            residual: Residual::Report {
                kind: CheckKind::CodeUnconfined,
                detail: "eval: can span multiple code tokens",
            },
        }),
    }
}

/// All built-in policies, in stable order. The first two are the
/// historical hand-built cascades; `Config::default()` enables only
/// `sql`, keeping seed behavior byte-identical.
pub fn builtin() -> Vec<Policy> {
    vec![
        Policy {
            id: "sql",
            name: "SQL command injection (SQLCIV)",
            description: "tainted data reaches a query sink; the C1\u{2013}C5 cascade proves \
                          syntactic confinement against the reference SQL grammar",
            severity: Severity::High,
            // The analysis layer sources the live sink table from
            // `Config::{hotspot_functions,hotspot_methods}` (user
            // configurable); this list documents the defaults.
            sink_functions: &[
                ("mysql_query", 0),
                ("mysqli_query", 1),
                ("mysql_db_query", 1),
                ("pg_query", 1),
                ("sqlite_query", 1),
                ("db_query", 0),
            ],
            sink_methods: &[("query", 0), ("sql_query", 0), ("prepare", 0)],
            sink_constructs: &[],
            rule_ids: &[
                "strtaint/odd-quotes",
                "strtaint/escapes-literal",
                "strtaint/attack-string",
                "strtaint/not-derivable",
                "strtaint/glued-context",
                "strtaint/unresolved",
                "strtaint/budget-exhausted",
            ],
            kind: PolicyKind::SqlCiv,
        },
        Policy {
            id: "xss",
            name: "cross-site scripting",
            description: "tainted data reaches an HTML output sink; context-gated checks \
                          prove it cannot open tags or close attributes",
            severity: Severity::Medium,
            sink_functions: &[],
            sink_methods: &[],
            sink_constructs: &["echo"],
            rule_ids: &["strtaint/not-derivable", "strtaint/budget-exhausted"],
            kind: PolicyKind::Xss,
        },
        shell_policy(),
        path_policy(),
        eval_policy(),
    ]
}

/// Looks up one built-in policy by id.
pub fn find(id: &str) -> Option<Policy> {
    builtin().into_iter().find(|p| p.id == id)
}

/// Parses a `--policy`-style comma-separated selection into a
/// validated, deduplicated id list (order preserved).
pub fn parse_selection(spec: &str) -> Result<Vec<String>, String> {
    let known: Vec<&'static str> = builtin().iter().map(|p| p.id).collect();
    let mut out: Vec<String> = Vec::new();
    for raw in spec.split(',') {
        let id = raw.trim();
        if id.is_empty() {
            continue;
        }
        if !known.contains(&id) {
            return Err(format!(
                "unknown policy {id:?} (known: {})",
                known.join(", ")
            ));
        }
        if !out.iter().any(|p| p == id) {
            out.push(id.to_string());
        }
    }
    if out.is_empty() {
        return Err("empty policy selection".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_five_policies_with_distinct_ids() {
        let all = builtin();
        assert_eq!(all.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for p in &all {
            assert!(seen.insert(p.id), "duplicate policy id {}", p.id);
            assert!(!p.rule_ids.is_empty(), "{} declares no rule ids", p.id);
        }
        assert_eq!(all[0].id, "sql");
        assert_eq!(all[1].id, "xss");
    }

    #[test]
    fn rule_ids_resolve_to_kinds() {
        for p in builtin() {
            for id in p.rule_ids {
                assert!(
                    CheckKind::from_rule_id(id).is_some(),
                    "{}: rule id {id} does not name a CheckKind",
                    p.id
                );
            }
        }
    }

    #[test]
    fn selection_parsing() {
        assert_eq!(
            parse_selection("shell, path,eval,shell"),
            Ok(vec!["shell".into(), "path".into(), "eval".into()])
        );
        assert!(parse_selection("sql,bogus").is_err());
        assert!(parse_selection("").is_err());
    }

    fn cascade_of(p: &Policy) -> &Cascade {
        match &p.kind {
            PolicyKind::Cascade(c) => c,
            other => panic!("{}: expected cascade, got {other:?}", p.id),
        }
    }

    #[test]
    fn shell_cascade_separates_safe_and_hostile_words() {
        let p = shell_policy();
        let c = cascade_of(&p);
        // Step 0 prover: its DFA must reject (= verify) plain words
        // and accept (= fail to verify) hostile strings.
        assert!(!c.steps[0].dfa.accepts(b"thumb_01.png"));
        assert!(c.steps[0].dfa.accepts(b"a; rm -rf /"));
        // Step 1 refuter: metacharacters accepted, plain words not.
        assert!(c.steps[1].dfa.accepts(b"x|y"));
        assert!(c.steps[1].dfa.accepts(b"`id`"));
        assert!(!c.steps[1].dfa.accepts(b"two words")); // residual case
    }

    #[test]
    fn path_cascade_catches_traversal_and_absolute() {
        let p = path_policy();
        let c = cascade_of(&p);
        assert!(!c.steps[0].dfa.accepts(b"home")); // stem verifies
        assert!(c.steps[1].dfa.accepts(b"../../etc/passwd"));
        assert!(!c.steps[1].dfa.accepts(b"a.b/c"));
        assert!(c.steps[2].dfa.accepts(b"/etc/passwd"));
        assert!(!c.steps[2].dfa.accepts(b"etc/passwd"));
        assert!(!c.steps[3].dfa.accepts(b"pages/home.php")); // relative verifies
        assert!(c.steps[3].dfa.accepts(b"php://input")); // wrapper is not
    }

    #[test]
    fn eval_cascade_catches_code_tokens() {
        let p = eval_policy();
        let c = cascade_of(&p);
        assert!(!c.steps[0].dfa.accepts(b"strtoupper_result"));
        assert!(c.steps[1].dfa.accepts(b"phpinfo()"));
        assert!(c.steps[1].dfa.accepts(b"1;system('id')"));
        assert!(!c.steps[1].dfa.accepts(b"two words"));
    }
}
