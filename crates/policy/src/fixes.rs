//! Per-policy fix templates: the data the remediation subsystem
//! (`strtaint-remedy`) draws on to turn a finding into a rewrite plan.
//!
//! A template names the *repair shape* for one vulnerability class —
//! which context-correct sanitizer wraps the tainted source, or which
//! anchored allowlist guard is inserted ahead of the sink. The
//! templates are deliberately tiny and declarative: everything
//! position- and file-specific (where the source occurrence is, whether
//! the rewrite is unambiguous, whether the repaired page actually
//! verifies) is decided by the planner and proven by re-analysis, never
//! assumed here.
//!
//! The sanitizer choices are exactly the ones the analysis models as
//! transducers (`strtaint-analysis`'s builtin table), so a wrapped
//! source provably changes the checked language:
//!
//! - **sql**, quoted context: `addslashes` — every quote the source can
//!   produce arrives escaped, which check C2 verifies inside a string
//!   literal.
//! - **sql**, unquoted context: `intval` — the result language is the
//!   numeric literals, which check C3 verifies in any literal position
//!   (quoting the ASSIST observation that a numeric position needs a
//!   cast, not an escape).
//! - **xss**: `htmlspecialchars` — no `<`, `"` or `&` survives, so no
//!   emission context lets the source introduce markup.
//! - **shell** / **path** / **eval**: no modeled sanitizer exists
//!   (`escapeshellarg` is unmodeled, and its faithful model would still
//!   admit refuter bytes), so the repair is an anchored `preg_match`
//!   allowlist guard whose language sits inside the class's prover
//!   byte-set (see `registry`: shell words, relative path atoms, bare
//!   identifiers).

/// The repair shape for one policy class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixKind {
    /// Wrap the tainted source in a sanitizer chosen by the query
    /// context the hotspot's skeletons prove: `quoted` when every
    /// marker sits inside a string literal, `unquoted` when none does.
    /// Mixed or unknown contexts make the fix ambiguous.
    SanitizeByContext {
        /// Sanitizer for string-literal (quoted) positions.
        quoted: &'static str,
        /// Sanitizer for bare (unquoted, numeric) positions.
        unquoted: &'static str,
    },
    /// Wrap the tainted source in one sanitizer, in every context.
    Sanitize {
        /// The sanitizer function name.
        function: &'static str,
    },
    /// Hoist the tainted source into a variable (when it is not one
    /// already) and insert an anchored allowlist guard before the sink.
    Guard {
        /// The full `preg_match` pattern, anchored on both ends.
        pattern: &'static str,
    },
}

/// One policy's fix template.
#[derive(Debug, Clone)]
pub struct FixTemplate {
    /// The policy id this template repairs (see [`crate::registry`]).
    pub policy: &'static str,
    /// The repair shape.
    pub kind: FixKind,
    /// One-line rationale rendered into fix descriptions.
    pub rationale: &'static str,
}

/// The built-in fix-template table, one entry per policy class.
pub fn fix_templates() -> Vec<FixTemplate> {
    vec![
        FixTemplate {
            policy: "sql",
            kind: FixKind::SanitizeByContext {
                quoted: "addslashes",
                unquoted: "intval",
            },
            rationale: "escape quotes in string-literal position, cast to an \
                        integer in numeric position",
        },
        FixTemplate {
            policy: "xss",
            kind: FixKind::Sanitize {
                function: "htmlspecialchars",
            },
            rationale: "HTML-encode the output so no emission context admits \
                        attacker markup",
        },
        FixTemplate {
            policy: "shell",
            kind: FixKind::Guard {
                pattern: "/^[a-zA-Z0-9_]+$/",
            },
            rationale: "confine the argument to one shell word before it \
                        reaches the command line",
        },
        FixTemplate {
            policy: "path",
            kind: FixKind::Guard {
                pattern: "/^[a-zA-Z0-9_]+$/",
            },
            rationale: "confine the path component to a relative atom with no \
                        separators or traversal",
        },
        FixTemplate {
            policy: "eval",
            kind: FixKind::Guard {
                pattern: "/^[a-zA-Z0-9_]+$/",
            },
            rationale: "confine the fragment to a bare identifier before it \
                        reaches the interpreter",
        },
    ]
}

/// Looks up the fix template for one policy id.
pub fn fix_template(policy: &str) -> Option<FixTemplate> {
    fix_templates().into_iter().find(|t| t.policy == policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_policy_has_a_template() {
        for p in crate::builtin() {
            assert!(
                fix_template(p.id).is_some(),
                "policy {} has no fix template",
                p.id
            );
        }
    }

    #[test]
    fn guard_patterns_are_anchored() {
        for t in fix_templates() {
            if let FixKind::Guard { pattern } = t.kind {
                assert!(pattern.starts_with("/^"), "{pattern} not ^-anchored");
                assert!(pattern.ends_with("$/"), "{pattern} not $-anchored");
            }
        }
    }

    #[test]
    fn sanitizers_are_the_modeled_ones() {
        // The planner relies on these exact names being modeled as
        // transducers by the analysis layer; renaming one silently
        // breaks the re-analysis proof, so pin them.
        let sql = fix_template("sql").expect("sql template");
        assert_eq!(
            sql.kind,
            FixKind::SanitizeByContext {
                quoted: "addslashes",
                unquoted: "intval"
            }
        );
        let xss = fix_template("xss").expect("xss template");
        assert_eq!(
            xss.kind,
            FixKind::Sanitize {
                function: "htmlspecialchars"
            }
        );
    }
}
