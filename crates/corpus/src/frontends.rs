//! Paired PHP/template ground-truth pages for the cross-frontend
//! differential suite.
//!
//! Each [`Pair`] is one program written twice — once in PHP, once in
//! the template language — with the same sources, the same dataflow,
//! and the same sink, per policy class and per expected outcome
//! (vulnerable / sanitized). The differential tests assert the two
//! members produce equal verdicts, equal SARIF rule ids, and equal
//! witness presence: the frontends lower different surface syntax to
//! the *same* IR shapes, so everything downstream must agree.
//!
//! [`mixed_app`] additionally builds one workspace where the languages
//! include each other — a PHP page pulling in a template partial and a
//! template page pulling in a PHP helper — exercising cross-language
//! dataflow through the shared environment, `SummaryCache` sharing,
//! and the daemon's per-extension frontend dispatch.

use strtaint_analysis::Vfs;

/// One program expressed in both frontends, with its ground truth.
#[derive(Debug, Clone, Copy)]
pub struct Pair {
    /// Short name (test labels).
    pub name: &'static str,
    /// The PHP member's entry path in [`vfs`].
    pub php_entry: &'static str,
    /// The template member's entry path in [`vfs`].
    pub tpl_entry: &'static str,
    /// Policy that must be enabled to see the sink (`"xss"` runs the
    /// XSS checker path).
    pub policy: &'static str,
    /// `true`: both members must report ≥1 finding with rule [`rule`].
    /// `false`: both members must verify with zero findings.
    pub vulnerable: bool,
    /// Expected SARIF rule id for vulnerable pairs (`""` otherwise).
    pub rule: &'static str,
}

/// The paired pages and their expected outcomes: one vulnerable and
/// one sanitized pair per policy class (sql, xss, shell, path, eval).
pub fn pairs() -> Vec<Pair> {
    vec![
        Pair {
            name: "sql_vuln",
            php_entry: "sql_vuln.php",
            tpl_entry: "sql_vuln.tpl",
            policy: "sql",
            vulnerable: true,
            rule: "strtaint/odd-quotes",
        },
        Pair {
            name: "sql_safe",
            php_entry: "sql_safe.php",
            tpl_entry: "sql_safe.tpl",
            policy: "sql",
            vulnerable: false,
            rule: "",
        },
        Pair {
            name: "xss_vuln",
            php_entry: "xss_vuln.php",
            tpl_entry: "xss_vuln.tpl",
            policy: "xss",
            vulnerable: true,
            rule: "strtaint/not-derivable",
        },
        Pair {
            name: "xss_safe",
            php_entry: "xss_safe.php",
            tpl_entry: "xss_safe.tpl",
            policy: "xss",
            vulnerable: false,
            rule: "",
        },
        Pair {
            name: "shell_vuln",
            php_entry: "shell_vuln.php",
            tpl_entry: "shell_vuln.tpl",
            policy: "shell",
            vulnerable: true,
            rule: "strtaint/shell-metachar",
        },
        Pair {
            name: "shell_safe",
            php_entry: "shell_safe.php",
            tpl_entry: "shell_safe.tpl",
            policy: "shell",
            vulnerable: false,
            rule: "",
        },
        Pair {
            name: "path_vuln",
            php_entry: "path_vuln.php",
            tpl_entry: "path_vuln.tpl",
            policy: "path",
            vulnerable: true,
            rule: "strtaint/path-traversal",
        },
        Pair {
            name: "path_safe",
            php_entry: "path_safe.php",
            tpl_entry: "path_safe.tpl",
            policy: "path",
            vulnerable: false,
            rule: "",
        },
        Pair {
            name: "eval_vuln",
            php_entry: "eval_vuln.php",
            tpl_entry: "eval_vuln.tpl",
            policy: "eval",
            vulnerable: true,
            rule: "strtaint/code-injection",
        },
        Pair {
            name: "eval_safe",
            php_entry: "eval_safe.php",
            tpl_entry: "eval_safe.tpl",
            policy: "eval",
            vulnerable: false,
            rule: "",
        },
    ]
}

/// The project tree holding every paired page (both languages side by
/// side — a real mixed-language workspace).
pub fn vfs() -> Vfs {
    let mut vfs = Vfs::new();

    // SQL: the canonical quoted-id injection, and the anchored
    // whitelist that confines it.
    vfs.add(
        "sql_vuln.php",
        r#"<?php
$id = $_GET['id'];
$r = $DB->query("SELECT * FROM t WHERE id='" . $id . "'");
"#,
    );
    vfs.add(
        "sql_vuln.tpl",
        r#"{% var id = req.query.id %}
{% db.query("SELECT * FROM t WHERE id='" + id + "'") %}
"#,
    );
    vfs.add(
        "sql_safe.php",
        r#"<?php
$id = $_GET['id'];
if (!preg_match('/^[0-9]+$/', $id)) {
    exit;
}
$r = $DB->query("SELECT * FROM t WHERE id='" . $id . "'");
"#,
    );
    vfs.add(
        "sql_safe.tpl",
        r#"{% var id = req.query.id %}
{% if !matches("/^[0-9]+$/", id) %}{% exit %}{% end %}
{% db.query("SELECT * FROM t WHERE id='" + id + "'") %}
"#,
    );

    // XSS: raw reflection vs the HTML-escaped variant.
    vfs.add(
        "xss_vuln.php",
        r#"<?php
echo $_GET['name'];
"#,
    );
    vfs.add("xss_vuln.tpl", "{{ req.query.name }}\n");
    vfs.add(
        "xss_safe.php",
        r#"<?php
echo htmlspecialchars($_GET['name']);
"#,
    );
    vfs.add("xss_safe.tpl", "{{ escapeHtml(req.query.name) }}\n");

    // Shell: a thumbnail converter building a command line.
    vfs.add(
        "shell_vuln.php",
        r#"<?php
$f = $_GET['f'];
system("convert thumb/" . $f . " out.png");
"#,
    );
    vfs.add(
        "shell_vuln.tpl",
        r#"{% var f = req.query.f %}
{% system("convert thumb/" + f + " out.png") %}
"#,
    );
    vfs.add(
        "shell_safe.php",
        r#"<?php
$f = $_GET['f'];
if (!preg_match('/^[a-zA-Z0-9_]+$/', $f)) {
    exit;
}
system("convert thumb/" . $f . " out.png");
"#,
    );
    vfs.add(
        "shell_safe.tpl",
        r#"{% var f = req.query.f %}
{% if !matches("/^[a-zA-Z0-9_]+$/", f) %}{% exit %}{% end %}
{% system("convert thumb/" + f + " out.png") %}
"#,
    );

    // Path: a page dispatcher including a request-named file. Each
    // language dispatches to partials of its own extension, with one
    // layout target so the whitelisted variant resolves.
    vfs.add(
        "path_vuln.php",
        r#"<?php
include('pages/' . $_GET['page'] . '.php');
"#,
    );
    vfs.add(
        "path_vuln.tpl",
        "{% include \"pages/\" + req.query.page + \".tpl\" %}\n",
    );
    vfs.add(
        "path_safe.php",
        r#"<?php
$page = $_GET['page'];
if (!preg_match('/^[a-z]+$/', $page)) {
    exit;
}
include('pages/' . $page . '.php');
"#,
    );
    vfs.add(
        "path_safe.tpl",
        r#"{% var page = req.query.page %}
{% if !matches("/^[a-z]+$/", page) %}{% exit %}{% end %}
{% include "pages/" + page + ".tpl" %}
"#,
    );
    vfs.add("pages/home.php", "<?php echo \"home\";\n");
    vfs.add("pages/home.tpl", "home\n");

    // Eval: a calculator evaluating a request-supplied expression.
    vfs.add(
        "eval_vuln.php",
        r#"<?php
eval('$result = ' . $_GET['op'] . ';');
"#,
    );
    vfs.add(
        "eval_vuln.tpl",
        "{% eval(\"result = \" + req.query.op + \";\") %}\n",
    );
    vfs.add(
        "eval_safe.php",
        r#"<?php
$op = $_GET['op'];
if (!preg_match('/^[0-9]+$/', $op)) {
    exit;
}
eval('$result = ' . $op . ';');
"#,
    );
    vfs.add(
        "eval_safe.tpl",
        r#"{% var op = req.query.op %}
{% if !matches("/^[0-9]+$/", op) %}{% exit %}{% end %}
{% eval("result = " + op + ";") %}
"#,
    );

    vfs
}

/// A mixed-language app: a PHP page including a template partial, a
/// template page including a PHP helper, a second PHP page sharing
/// the same template partial (so a shared `SummaryCache` lowers the
/// partial once for both pages), and one pure-PHP page with no
/// template dependencies (the control for frontend-flip invalidation:
/// it must keep replaying when only the template frontend changes).
///
/// Dataflow deliberately crosses the language boundary: the PHP pages
/// read `$_GET['id']` into `$id`, and the *template* partial sinks it
/// (`db.query(... + id + ...)`) — both frontends canonicalize to the
/// same environment key space, so taint flows through unchanged.
pub fn mixed_app() -> (Vfs, Vec<&'static str>) {
    let mut vfs = Vfs::new();
    vfs.add(
        "index.php",
        r#"<?php
$id = $_GET['id'];
include('partial.tpl');
"#,
    );
    vfs.add(
        "index2.php",
        r#"<?php
$id = $_GET['id'];
if (!preg_match('/^[0-9]+$/', $id)) {
    exit;
}
include('partial.tpl');
"#,
    );
    vfs.add(
        "partial.tpl",
        "{% db.query(\"SELECT * FROM t WHERE id='\" + id + \"'\") %}\n",
    );
    vfs.add(
        "page.tpl",
        r#"{% var q = req.query.q %}
{% include "helper.php" %}
"#,
    );
    vfs.add(
        "helper.php",
        r#"<?php
$r = $DB->query("SELECT * FROM t WHERE q='" . $q . "'");
"#,
    );
    vfs.add(
        "about.php",
        r#"<?php
$r = $DB->query("SELECT version FROM meta");
"#,
    );
    (vfs, vec!["index.php", "index2.php", "page.tpl", "about.php"])
}
