//! Seeded ground-truth pages for the remediation subsystem.
//!
//! Fixable pages pin one repair shape each (quoted-context SQL →
//! `addslashes`, numeric-context SQL → `intval`, echoed HTML →
//! `htmlspecialchars`); unfixable pages pin the two ambiguity classes
//! the planner must refuse (a source read occurring more than once,
//! and a dynamic superglobal index with no literal read to rewrite).
//! The round-trip tests assert that `strtaint fix --apply` discharges
//! every fixable page — the re-analysis of the repaired tree reports
//! zero findings — while ambiguous pages are left byte-identical.

use strtaint_analysis::Vfs;

/// One seeded remediation page with its expected planner outcome.
#[derive(Debug, Clone, Copy)]
pub struct FixSeed {
    /// Page entry path in [`vfs`].
    pub entry: &'static str,
    /// The policy whose finding the page seeds.
    pub policy: &'static str,
    /// `true`: the planner must produce an unambiguous plan and apply
    /// mode must discharge the finding. `false`: every plan for the
    /// page must be ambiguous and the tree must stay untouched.
    pub fixable: bool,
    /// The sanitizer the plan must choose, for sanitize-shaped fixes
    /// (empty for guard fixes and unfixable pages).
    pub sanitizer: &'static str,
}

/// The seeded pages and their expected outcomes.
pub fn seeds() -> Vec<FixSeed> {
    vec![
        FixSeed {
            entry: "sql_quoted_vuln.php",
            policy: "sql",
            fixable: true,
            sanitizer: "addslashes",
        },
        FixSeed {
            entry: "sql_numeric_vuln.php",
            policy: "sql",
            fixable: true,
            sanitizer: "intval",
        },
        FixSeed {
            entry: "xss_vuln.php",
            policy: "xss",
            fixable: true,
            sanitizer: "htmlspecialchars",
        },
        FixSeed {
            entry: "sql_twice_vuln.php",
            policy: "sql",
            fixable: false,
            sanitizer: "",
        },
        FixSeed {
            entry: "sql_dynamic_vuln.php",
            policy: "sql",
            fixable: false,
            sanitizer: "",
        },
    ]
}

/// The project tree holding every seeded page.
pub fn vfs() -> Vfs {
    let mut vfs = Vfs::new();
    // The source flows into a single-quoted string literal: the
    // skeleton proves a quoted context, so the repair is addslashes —
    // semantics-preserving for string-valued ids.
    vfs.add(
        "sql_quoted_vuln.php",
        r#"<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM users WHERE name='" . $id . "'");
"#,
    );
    // The source flows into a bare numeric position: the skeleton
    // proves an unquoted context, so the repair is an intval cast.
    vfs.add(
        "sql_numeric_vuln.php",
        r#"<?php
mysql_query("SELECT * FROM users WHERE id=" . $_GET['id']);
"#,
    );
    // Echoed straight into HTML text: the repair HTML-encodes the
    // read regardless of emission context.
    vfs.add(
        "xss_vuln.php",
        r#"<?php
echo "<p>Hello " . $_GET['name'] . "</p>";
"#,
    );
    // The same read occurs twice; rewriting one occurrence would
    // repair one dataflow and silently miss the other, so the planner
    // must refuse.
    vfs.add(
        "sql_twice_vuln.php",
        r#"<?php
$a = $_GET['id'];
$b = $_GET['id'];
mysql_query("SELECT * FROM users WHERE name='" . $a . $b . "'");
"#,
    );
    // A dynamic superglobal index: the source name does not map back
    // to a literal read, so there is nothing unambiguous to wrap.
    vfs.add(
        "sql_dynamic_vuln.php",
        r#"<?php
$k = 'id';
$id = $_GET[$k];
mysql_query("SELECT * FROM users WHERE name='" . $id . "'");
"#,
    );
    vfs
}
