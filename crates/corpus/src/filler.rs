//! Deterministic filler generation: templates, helper functions, and
//! static pages that give corpus applications realistic bulk without
//! affecting query construction.

/// Generates an HTML template file of roughly `lines` lines with a
/// small PHP header (the bulk of real CMS code bases is markup).
pub fn html_page(title: &str, lines: usize) -> String {
    let mut out = String::with_capacity(lines * 40);
    out.push_str("<?php // template: ");
    out.push_str(title);
    out.push_str("\n$page_title = '");
    out.push_str(title);
    out.push_str("';\n?>\n<!DOCTYPE html>\n<html>\n<head><title>");
    out.push_str(title);
    out.push_str("</title></head>\n<body>\n");
    let mut n = 9;
    let mut i = 0usize;
    while n + 2 < lines {
        out.push_str(&format!(
            "  <div class=\"row r{i}\"><span>item {i}</span><a href=\"page{}.html\">link {i}</a></div>\n",
            i % 7
        ));
        n += 1;
        i += 1;
    }
    out.push_str("</body>\n</html>\n");
    out
}

/// Generates a PHP helper library with `n` small, query-free utility
/// functions (formatting, validation, date helpers).
pub fn helper_library(prefix: &str, n: usize) -> String {
    format!("<?php\n{}", helper_functions(prefix, n))
}

/// Like [`helper_library`] but without the `<?php` opener, for
/// appending inside an existing PHP region.
pub fn helper_functions(prefix: &str, n: usize) -> String {
    let mut out = String::from("// generated helper library\n");
    for i in 0..n {
        match i % 5 {
            0 => out.push_str(&format!(
                "function {prefix}_fmt{i}($v) {{\n    return '<b>' . htmlspecialchars($v) . '</b>';\n}}\n"
            )),
            1 => out.push_str(&format!(
                "function {prefix}_is_valid{i}($v) {{\n    if ($v == '') {{ return false; }}\n    return true;\n}}\n"
            )),
            2 => out.push_str(&format!(
                "function {prefix}_pad{i}($v) {{\n    $s = trim($v);\n    return $s . ' ';\n}}\n"
            )),
            3 => out.push_str(&format!(
                "function {prefix}_label{i}($v) {{\n    $t = strtolower($v);\n    return 'lbl-' . $t;\n}}\n"
            )),
            _ => out.push_str(&format!(
                "function {prefix}_count{i}($v) {{\n    $n = strlen($v);\n    return $n + {i};\n}}\n"
            )),
        }
    }
    out
}

/// A language/constants file, the shape that e107 resolves through
/// dynamic includes.
pub fn language_file(lang: &str, entries: usize) -> String {
    let mut out = String::from("<?php\n");
    for i in 0..entries {
        out.push_str(&format!("define('LAN_{}_{i}', 'Text {i} ({lang})');\n", lang.to_uppercase()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn html_page_hits_size() {
        let p = html_page("home", 100);
        let lines = p.lines().count();
        assert!((95..=105).contains(&lines), "{lines}");
    }

    #[test]
    fn helpers_parse() {
        let lib = helper_library("unp", 25);
        assert!(strtaint_php::parse(lib.as_bytes()).is_ok());
        assert!(lib.matches("function ").count() == 25);
    }

    #[test]
    fn language_files_parse() {
        let f = language_file("english", 30);
        assert!(strtaint_php::parse(f.as_bytes()).is_ok());
    }

    #[test]
    fn html_pages_parse() {
        let p = html_page("x", 60);
        assert!(strtaint_php::parse(p.as_bytes()).is_ok());
    }
}
