//! Seeded ground-truth pages for the non-SQL policies.
//!
//! One vulnerable page and one sanitized variant per vulnerability
//! class (shell command injection, path traversal, eval/code
//! injection), plus a `preg_replace/e` construct-sink page. The
//! soundness tests assert that every vulnerable page reports a finding
//! with the class's rule id and that every sanitized variant verifies
//! clean — the same shape as the SQLCIV corpus ground truth, one tier
//! down in size.

use strtaint_analysis::Vfs;

/// One seeded page with its expected outcome.
#[derive(Debug, Clone, Copy)]
pub struct Seeded {
    /// Page entry path in [`vfs`].
    pub entry: &'static str,
    /// The policy that must be enabled to see the sink.
    pub policy: &'static str,
    /// `true`: the page must produce at least one finding whose rule id
    /// is `rule`. `false`: the page must verify with zero findings.
    pub vulnerable: bool,
    /// Expected SARIF rule id for vulnerable pages.
    pub rule: &'static str,
}

/// The seeded pages and their expected outcomes.
pub fn seeds() -> Vec<Seeded> {
    vec![
        Seeded {
            entry: "shell_vuln.php",
            policy: "shell",
            vulnerable: true,
            rule: "strtaint/shell-metachar",
        },
        Seeded {
            entry: "shell_safe.php",
            policy: "shell",
            vulnerable: false,
            rule: "",
        },
        Seeded {
            entry: "path_vuln.php",
            policy: "path",
            vulnerable: true,
            rule: "strtaint/path-traversal",
        },
        Seeded {
            entry: "path_safe.php",
            policy: "path",
            vulnerable: false,
            rule: "",
        },
        Seeded {
            entry: "eval_vuln.php",
            policy: "eval",
            vulnerable: true,
            rule: "strtaint/code-injection",
        },
        Seeded {
            entry: "eval_safe.php",
            policy: "eval",
            vulnerable: false,
            rule: "",
        },
        Seeded {
            entry: "preg_replace_e.php",
            policy: "eval",
            vulnerable: true,
            rule: "strtaint/code-injection",
        },
    ]
}

/// The project tree holding every seeded page.
pub fn vfs() -> Vfs {
    let mut vfs = Vfs::new();
    // Shell: a thumbnail converter building a command line from the
    // request — the textbook `system()` injection.
    vfs.add(
        "shell_vuln.php",
        r#"<?php
$f = $_GET['f'];
system("convert thumb/" . $f . " out.png");
"#,
    );
    // The anchored allowlist confines the argument to one shell word.
    vfs.add(
        "shell_safe.php",
        r#"<?php
$f = $_GET['f'];
if (!preg_match('/^[a-zA-Z0-9_]+$/', $f)) {
    exit;
}
system("convert thumb/" . $f . " out.png");
"#,
    );
    // Path: a page dispatcher including a request-named file.
    vfs.add(
        "path_vuln.php",
        r#"<?php
include('pages/' . $_GET['page'] . '.php');
"#,
    );
    vfs.add(
        "path_safe.php",
        r#"<?php
$page = $_GET['page'];
if (!preg_match('/^[a-z]+$/', $page)) {
    exit;
}
include('pages/' . $page . '.php');
"#,
    );
    // The layout target the safe dispatcher can resolve to.
    vfs.add("pages/home.php", "<?php echo \"home\";\n");
    // Eval: a calculator evaluating a request-supplied expression.
    vfs.add(
        "eval_vuln.php",
        r#"<?php
eval('$result = ' . $_GET['op'] . ';');
"#,
    );
    vfs.add(
        "eval_safe.php",
        r#"<?php
$op = $_GET['op'];
if (!preg_match('/^[0-9]+$/', $op)) {
    exit;
}
eval('$result = ' . $op . ';');
"#,
    );
    // The deprecated /e modifier: the replacement is evaluated as PHP
    // over the (tainted) subject's captures.
    vfs.add(
        "preg_replace_e.php",
        r#"<?php
echo preg_replace('/x/e', 'strtoupper("$0")', $_GET['t']);
"#,
    );
    vfs
}
