//! Corpus application descriptors.

use std::fmt;

use strtaint_analysis::Vfs;

/// Ground truth for a corpus application: the vulnerability counts the
/// paper reports in Table 1 for the corresponding real subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Truth {
    /// Real, directly-exploitable SQLCIVs seeded ("Real" column).
    pub direct_real: usize,
    /// Safe-but-reported sites seeded ("False" column) — each encodes
    /// an imprecision the paper documents (type conversions, hand-
    /// written character-level sanitizers).
    pub direct_false: usize,
    /// Indirect-taint reports seeded ("indirect" column).
    pub indirect: usize,
}

impl Truth {
    /// Total expected direct reports (real + false positives).
    pub fn direct_total(&self) -> usize {
        self.direct_real + self.direct_false
    }
}

/// A synthetic web application mirroring one of the paper's subjects.
pub struct App {
    /// Application name (mirrors the Table 1 row).
    pub name: &'static str,
    /// The project tree.
    pub vfs: Vfs,
    /// Page entry points (top-level files), analyzed one by one as in
    /// the paper §5.3.
    pub entries: Vec<String>,
    /// Seeded ground truth.
    pub truth: Truth,
}

impl App {
    /// Entry list as `&str` slices for `strtaint::analyze_app`.
    pub fn entry_refs(&self) -> Vec<&str> {
        self.entries.iter().map(String::as_str).collect()
    }
}

impl fmt::Debug for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("App")
            .field("name", &self.name)
            .field("files", &self.vfs.len())
            .field("lines", &self.vfs.total_lines())
            .field("entries", &self.entries.len())
            .field("truth", &self.truth)
            .finish()
    }
}
