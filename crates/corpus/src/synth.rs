//! Parametric application generator for scalability and ablation
//! benchmarks (paper §5.3).
//!
//! [`synth_app`] produces applications with a controllable number of
//! pages, helper bulk, `str_replace` chain length, and vulnerable-page
//! fraction, so benches can sweep application size and measure how
//! analysis time, check time, and grammar size scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use strtaint_analysis::Vfs;

use crate::app::{App, Truth};
use crate::filler;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of page entry points.
    pub pages: usize,
    /// Helper functions in the shared library.
    pub helpers: usize,
    /// Filler lines appended to each page.
    pub filler_lines: usize,
    /// Every `vuln_every`-th page carries a raw-GET vulnerability
    /// (0 = all pages safe).
    pub vuln_every: usize,
    /// Length of a `str_replace` chain applied to user input on each
    /// page (the §5.3 grammar blow-up knob).
    pub replace_chain: usize,
    /// Query sinks per page, all reading the same user input (values
    /// above 1 give the checker several hotspots per page that share a
    /// tainted nonterminal — the prepared-engine reuse case). Treated
    /// as 1 when 0.
    pub sinks_per_page: usize,
    /// RNG seed (tables/params are shuffled deterministically).
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            pages: 10,
            helpers: 20,
            filler_lines: 60,
            vuln_every: 3,
            replace_chain: 0,
            sinks_per_page: 1,
            seed: 7,
        }
    }
}

impl SynthConfig {
    /// A fleet-scale preset: `pages` entry points (1k+ is the intended
    /// range) with filler trimmed so generation and parsing stay cheap
    /// enough for soak tests and CI benches. Fully determined by
    /// `(pages, seed)` — two calls produce byte-identical trees.
    pub fn fleet(pages: usize, seed: u64) -> SynthConfig {
        SynthConfig {
            pages,
            helpers: 10,
            filler_lines: 8,
            vuln_every: 5,
            replace_chain: 0,
            sinks_per_page: 1,
            seed,
        }
    }
}

/// Generates a synthetic application.
pub fn synth_app(cfg: &SynthConfig) -> App {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut vfs = Vfs::new();
    vfs.add(
        "lib.php",
        format!(
            "{}{}",
            r#"<?php
function s_clean($v)
{
    return addslashes($v);
}
"#,
            filler::helper_functions("s", cfg.helpers)
        ),
    );

    let tables = ["users", "posts", "items", "logs", "tags", "votes"];
    let params = ["id", "name", "cat", "page", "ref", "tag"];
    let mut entries = Vec::new();
    let mut seeded = 0usize;
    for p in 0..cfg.pages {
        let table = tables[rng.gen_range(0..tables.len())];
        let param = params[rng.gen_range(0..params.len())];
        let vulnerable = cfg.vuln_every != 0 && p % cfg.vuln_every == 0;
        let mut body = String::from("<?php\ninclude('lib.php');\n");
        body.push_str(&format!("$v = $_GET['{param}'];\n"));
        for i in 0..cfg.replace_chain {
            body.push_str(&format!(
                "$v = str_replace('[t{i}]', '<t{i}>', $v);\n"
            ));
        }
        let sinks = cfg.sinks_per_page.max(1);
        if !vulnerable {
            body.push_str("$v = s_clean($v);\n");
        }
        for s in 0..sinks {
            // Sink 0 reuses the page's table/param draws so the
            // default (one sink) emits byte-identical sources to
            // earlier generator versions.
            let (t, pa) = if s == 0 {
                (table, param)
            } else {
                (
                    tables[rng.gen_range(0..tables.len())],
                    params[rng.gen_range(0..params.len())],
                )
            };
            let var = if s == 0 {
                "$r".to_owned()
            } else {
                format!("$r{s}")
            };
            if vulnerable {
                seeded += 1;
            }
            body.push_str(&format!(
                "{var} = $DB->query(\"SELECT * FROM {t} WHERE {pa}='$v'\");\n"
            ));
        }
        body.push_str("?>\n");
        body.push_str(&filler::html_page(&format!("p{p}"), cfg.filler_lines));
        let name = format!("page{p}.php");
        vfs.add(&name, body);
        entries.push(name);
    }

    App {
        name: "synthetic",
        vfs,
        entries,
        truth: Truth {
            direct_real: seeded,
            direct_false: 0,
            indirect: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_files_parse() {
        let app = synth_app(&SynthConfig::default());
        for p in app.vfs.paths() {
            strtaint_php::parse(app.vfs.get(p).unwrap())
                .unwrap_or_else(|e| panic!("{p}: {e}"));
        }
        assert_eq!(app.entries.len(), 10);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = synth_app(&SynthConfig::default());
        let b = synth_app(&SynthConfig::default());
        assert_eq!(a.vfs.total_lines(), b.vfs.total_lines());
        let c = synth_app(&SynthConfig {
            seed: 99,
            ..SynthConfig::default()
        });
        // Same shape, different content selections.
        assert_eq!(a.entries.len(), c.entries.len());
    }

    #[test]
    fn fleet_scale_generation_is_deterministic_at_1k_pages() {
        let a = synth_app(&SynthConfig::fleet(1_024, 11));
        let b = synth_app(&SynthConfig::fleet(1_024, 11));
        assert_eq!(a.entries.len(), 1_024);
        // Byte-identical trees, file by file — soak runs that shard
        // the same seed across workspaces depend on this.
        let paths: Vec<&str> = a.vfs.paths().collect();
        assert_eq!(paths.len(), 1_025, "1024 pages + lib.php");
        for p in paths {
            assert_eq!(a.vfs.get(p), b.vfs.get(p), "{p} differs across runs");
        }
        // A different seed moves content but not shape.
        let c = synth_app(&SynthConfig::fleet(1_024, 12));
        assert_eq!(c.entries.len(), 1_024);
        assert!(
            (0..1_024).any(|i| {
                let p = format!("page{i}.php");
                a.vfs.get(&p) != c.vfs.get(&p)
            }),
            "seed must influence page content"
        );
        // Spot-check that scale pages still parse (full-corpus parse
        // is covered at default size by generated_files_parse).
        for p in ["page0.php", "page511.php", "page1023.php", "lib.php"] {
            strtaint_php::parse(a.vfs.get(p).unwrap())
                .unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }

    #[test]
    fn vuln_seeding_counts() {
        let app = synth_app(&SynthConfig {
            pages: 9,
            vuln_every: 3,
            ..SynthConfig::default()
        });
        assert_eq!(app.truth.direct_real, 3);
        let safe = synth_app(&SynthConfig {
            vuln_every: 0,
            ..SynthConfig::default()
        });
        assert_eq!(safe.truth.direct_real, 0);
    }

    #[test]
    fn sinks_per_page_emitted() {
        let app = synth_app(&SynthConfig {
            pages: 1,
            vuln_every: 1,
            sinks_per_page: 3,
            ..SynthConfig::default()
        });
        let src = app.vfs.get("page0.php").unwrap();
        assert_eq!(
            String::from_utf8_lossy(src).matches("$DB->query").count(),
            3
        );
        assert_eq!(app.truth.direct_real, 3);
        // The default (one sink) is byte-identical to sinks_per_page=1.
        let a = synth_app(&SynthConfig::default());
        let b = synth_app(&SynthConfig {
            sinks_per_page: 1,
            ..SynthConfig::default()
        });
        for p in a.vfs.paths() {
            assert_eq!(a.vfs.get(p), b.vfs.get(p), "{p}");
        }
    }

    #[test]
    fn replace_chain_emitted() {
        let app = synth_app(&SynthConfig {
            replace_chain: 4,
            pages: 1,
            vuln_every: 0,
            ..SynthConfig::default()
        });
        let src = app.vfs.get("page0.php").unwrap();
        assert_eq!(
            String::from_utf8_lossy(src).matches("str_replace").count(),
            4
        );
    }
}
