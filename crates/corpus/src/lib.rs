//! Evaluation corpus for **strtaint**: five synthetic PHP web
//! applications mirroring the subjects of the paper's Table 1 (e107,
//! EVE Activity Tracker, Tiger PHP News System, Utopia News Pro, Warp
//! CMS), plus a parametric generator for scalability sweeps.
//!
//! The real subjects are GPL applications unavailable offline in their
//! 2007 versions; each replica reproduces the original's *findings
//! profile* — the same count and kind of real vulnerabilities, false
//! positives, and indirect reports, including the exact code of the
//! paper's Figures 2, 9 and 10 — and its structural quirks (cross-file
//! cookie flows, dynamic includes, hand-written sanitizers, BBCode
//! replacement chains). See DESIGN.md §4 for the substitution argument.
//!
//! # Examples
//!
//! ```no_run
//! use strtaint::{analyze_app, Config};
//! use strtaint_corpus::apps;
//!
//! let app = apps::utopia::build();
//! let report = analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
//! assert_eq!(report.direct_findings().len(), app.truth.direct_total());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod apps;
pub mod filler;
pub mod frontends;
pub mod policies;
pub mod remedy;
pub mod synth;

pub use app::{App, Truth};
pub use synth::{synth_app, SynthConfig};
