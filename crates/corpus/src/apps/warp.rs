//! `Warp Content Management System`-like subject: 42 files, ~23K
//! lines, **zero findings** — the Table 1 row that the analyzer fully
//! verifies (and the reason verification speed matters: Warp checks in
//! well under a second in the paper).

use strtaint_analysis::Vfs;

use crate::app::{App, Truth};
use crate::filler;

/// Builds the application.
pub fn build() -> App {
    let mut vfs = Vfs::new();

    vfs.add(
        "warp_config.php",
        r#"<?php
define('WARP_VERSION', '1.2.1');
define('WARP_PREFIX', 'warp_');
"#,
    );
    vfs.add(
        "warp_lib.php",
        format!(
            "{}{}",
            r#"<?php
include_once('warp_config.php');
function warp_id($v)
{
    return intval($v);
}
function warp_text($v)
{
    return addslashes($v);
}
function warp_enum($v, $allowed, $dflt)
{
    if (in_array($v, $allowed)) {
        return $v;
    }
    return $dflt;
}
"#,
            filler::helper_functions("warp", 80)
        ),
    );

    let mut entries: Vec<String> = Vec::new();
    let page = |vfs: &mut Vfs, entries: &mut Vec<String>, name: &str, body: &str, f: usize| {
        vfs.add(
            name,
            format!(
                "<?php\ninclude('warp_lib.php');\n{}\n?>\n{}",
                body,
                filler::html_page("warp", f)
            ),
        );
        entries.push(name.to_owned());
    };

    // All dynamic content goes through the sanitizing helpers.
    let content_pages: &[(&str, &str)] = &[
        ("content.php", "warp_content"),
        ("article.php", "warp_article"),
        ("section.php", "warp_section"),
        ("block.php", "warp_block"),
        ("menu.php", "warp_menu"),
        ("media.php", "warp_media"),
        ("sitemap.php", "warp_page"),
        ("revision.php", "warp_rev"),
    ];
    for (name, table) in content_pages {
        let body = format!(
            r#"$id = warp_id($_GET['id']);
$r = $DB->query("SELECT * FROM {table} WHERE id=$id");
"#
        );
        page(&mut vfs, &mut entries, name, &body, 420);
    }
    // Text fields: escaped and quoted.
    page(&mut vfs, &mut entries, "save.php", r#"$title = warp_text($_POST['title']);
$body = warp_text($_POST['body']);
$id = warp_id($_POST['id']);
$r = $DB->query("UPDATE warp_content SET title='$title', body='$body' WHERE id=$id");
"#, 420);
    // Whitelisted sort order.
    page(&mut vfs, &mut entries, "list.php", r#"$ord = $_GET['order'];
if (!in_array($ord, array('title', 'stamp'))) {
    $ord = 'stamp';
}
$r = $DB->query("SELECT * FROM warp_content ORDER BY $ord");
"#, 420);
    // Static query dashboard.
    page(&mut vfs, &mut entries, "status.php", r#"$r = $DB->query("SELECT COUNT(*) FROM warp_content");
"#, 400);

    // Templates and skins make up the bulk of Warp's 23K lines.
    let mut i = 0usize;
    while vfs.len() < 42 {
        match i % 2 {
            0 => vfs.add(
                format!("skins/skin{i}.php"),
                filler::html_page(&format!("skin{i}"), 650),
            ),
            _ => vfs.add(
                format!("modules/mod{i}.php"),
                filler::helper_library(&format!("mod{i}"), 60),
            ),
        }
        i += 1;
    }

    App {
        name: "Warp Content MS (like, 1.2.1)",
        vfs,
        entries,
        truth: Truth {
            direct_real: 0,
            direct_false: 0,
            indirect: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1_row() {
        let app = build();
        assert_eq!(app.vfs.len(), 42, "Table 1: 42 files");
        let lines = app.vfs.total_lines();
        assert!(
            (17000..=27000).contains(&lines),
            "Table 1: ~23,003 lines, got {lines}"
        );
    }

    #[test]
    fn all_files_parse() {
        let app = build();
        for p in app.vfs.paths() {
            strtaint_php::parse(app.vfs.get(p).unwrap())
                .unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }
}
