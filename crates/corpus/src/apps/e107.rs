//! `e107`-like subject. The real e107 0.7.5 has 741 files and 132,850
//! lines; we generate a 1/10-scale replica (~74 files, ~13K lines) with
//! the same findings profile: **1 real direct SQLCIV** (a cookie field
//! that crosses file boundaries before reaching a query — the paper
//! calls out exactly this bug) and **4 indirect reports**. It also
//! carries e107's signature *dynamic include* of language files, which
//! the analyzer resolves through the filesystem layout (§4).

use strtaint_analysis::Vfs;

use crate::app::{App, Truth};
use crate::filler;

/// Scale factor relative to the real subject (file count ≈ 741/10).
pub const SCALE_FILES: usize = 74;

/// Builds the application at the default 1/10 scale.
pub fn build() -> App {
    build_scaled(SCALE_FILES)
}

/// Builds the application with an explicit file count (74 = default
/// replica; 741 = full-size, matching the real e107's file count for
/// scalability experiments).
pub fn build_scaled(total_files: usize) -> App {
    let mut vfs = Vfs::new();

    // The bootstrap file every page includes. It parses the tracking
    // cookie — user-controlled — into globals (the cross-file source of
    // the real direct vulnerability).
    vfs.add(
        "class2.php",
        format!(
            "{}{}",
            r#"<?php
include_once('e107_config.php');
$uc = $_COOKIE['e107cookie'];
$parts = explode('.', $uc);
$cookie_uid = $parts[0];
$pref_lang = isset($_GET['lang']) ? $_GET['lang'] : 'english';
if (!in_array($pref_lang, array('english', 'french'))) {
    $pref_lang = 'english';
}
include('e107_languages/lan_' . $pref_lang . '.php');
"#,
            filler::helper_functions("e107", 50)
        ),
    );
    vfs.add(
        "e107_config.php",
        r#"<?php
define('E107_VERSION', '0.7.5');
define('MPREFIX', 'e107_');
"#,
    );
    vfs.add(
        "e107_languages/lan_english.php",
        filler::language_file("english", 80),
    );
    vfs.add(
        "e107_languages/lan_french.php",
        filler::language_file("french", 80),
    );

    let mut entries: Vec<String> = Vec::new();
    let page = |vfs: &mut Vfs, entries: &mut Vec<String>, name: &str, body: &str, f: usize| {
        vfs.add(
            name,
            format!(
                "<?php\nrequire_once('class2.php');\n{}\n?>\n{}",
                body,
                filler::html_page("e107", f)
            ),
        );
        entries.push(name.to_owned());
    };

    // The 1 real direct vulnerability: the cookie field, parsed in
    // class2.php, reaches a query in a different file unchecked.
    page(&mut vfs, &mut entries, "e107_admin/userinfo.php", r#"$sql = $DB->query("SELECT * FROM e107_user WHERE user_id='" . $cookie_uid . "'");
"#, 120);

    // 4 indirect reports.
    page(&mut vfs, &mut entries, "usersettings.php", r#"$sig = $USER['signature'];
$r = $DB->query("UPDATE e107_user SET sig='$sig' WHERE user_id=1");
"#, 140);
    page(&mut vfs, &mut entries, "online.php", r#"$loc = $_SESSION['location'];
$r = $DB->query("SELECT * FROM e107_online WHERE loc='$loc'");
"#, 140);
    page(&mut vfs, &mut entries, "comment_admin.php", r#"$r = $DB->query("SELECT * FROM e107_comments ORDER BY stamp DESC LIMIT 5");
$row = $DB->fetch_array($r);
$author = $row['author'];
$r2 = $DB->query("SELECT * FROM e107_user WHERE user_name='$author'");
"#, 130);
    page(&mut vfs, &mut entries, "pm_admin.php", r#"$realname = $USER['realname'];
$r = $DB->query("SELECT * FROM e107_pm WHERE sender='$realname'");
"#, 130);

    // Safe feature pages (e107 sanitizes ids with intval).
    let safe_pages: &[(&str, &str)] = &[
        ("news.php", "news_id"),
        ("page.php", "page_id"),
        ("user.php", "user_id"),
        ("download.php", "dl_id"),
        ("links.php", "link_id"),
        ("event.php", "event_id"),
        ("poll_view.php", "poll_id"),
        ("forum_view.php", "thread_id"),
        ("chat.php", "room_id"),
        ("faq.php", "faq_id"),
    ];
    for (name, param) in safe_pages {
        let body = format!(
            r#"$id = intval($_GET['{param}']);
$r = $DB->query("SELECT * FROM e107_item WHERE {param}=$id");
"#
        );
        page(&mut vfs, &mut entries, name, &body, 150);
    }
    // A page with addslashes-in-quotes (safe).
    page(&mut vfs, &mut entries, "search.php", r#"$kw = addslashes($_POST['keyword']);
$r = $DB->query("SELECT * FROM e107_news WHERE body LIKE '%$kw%'");
"#, 150);

    // Filler to reach the scaled file count: templates, plugins,
    // shortcode helpers.
    let mut i = 0usize;
    while vfs.len() < total_files {
        match i % 3 {
            0 => vfs.add(
                format!("e107_themes/theme{i}.php"),
                filler::html_page(&format!("theme{i}"), 180),
            ),
            1 => vfs.add(
                format!("e107_plugins/plugin{i}.php"),
                filler::helper_library(&format!("plug{i}"), 25),
            ),
            _ => vfs.add(
                format!("e107_handlers/handler{i}.php"),
                filler::helper_library(&format!("hd{i}"), 30),
            ),
        }
        i += 1;
    }

    App {
        name: if total_files >= 700 {
            "e107 (like, 0.7.5, full scale)"
        } else {
            "e107 (like, 0.7.5, 1/10 scale)"
        },
        vfs,
        entries,
        truth: Truth {
            direct_real: 1,
            direct_false: 0,
            indirect: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_scaled_table1_row() {
        let app = build();
        assert_eq!(app.vfs.len(), SCALE_FILES);
        let lines = app.vfs.total_lines();
        assert!(
            (9000..=17000).contains(&lines),
            "~13K lines at 1/10 scale, got {lines}"
        );
    }

    #[test]
    fn all_files_parse() {
        let app = build();
        for p in app.vfs.paths() {
            strtaint_php::parse(app.vfs.get(p).unwrap())
                .unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }

    #[test]
    fn language_include_targets_exist() {
        let app = build();
        assert!(app.vfs.get("e107_languages/lan_english.php").is_some());
        assert!(app.vfs.get("e107_languages/lan_french.php").is_some());
    }
}
