//! `EVE Activity Tracker`-like subject: 8 files, ~900 lines, 4 real
//! direct SQLCIVs and 1 indirect report (Table 1 row 2).

use strtaint_analysis::Vfs;

use crate::app::{App, Truth};
use crate::filler;

/// Builds the application.
pub fn build() -> App {
    let mut vfs = Vfs::new();

    vfs.add(
        "config.php",
        r#"<?php
define('EVE_DB', 'eve');
define('EVE_VERSION', '1.0');
$eve_title = 'EVE Activity Tracker';
"#,
    );
    vfs.add(
        "common.php",
        format!(
            "{}{}",
            r#"<?php
include_once('config.php');
function eve_out($s)
{
    echo htmlspecialchars($s);
}
"#,
            filler::helper_functions("eve", 30)
        ),
    );

    // 1. Raw GET in the kill feed.
    vfs.add(
        "index.php",
        page(
            r#"$kos = $_GET['kos'];
$r = mysql_query("SELECT * FROM activity WHERE kos='$kos' ORDER BY stamp DESC");
"#,
            130,
        ),
    );
    // 2. Raw GET pilot name.
    vfs.add(
        "pilot.php",
        page(
            r#"$pilot = $_GET['pilot'];
$r = mysql_query("SELECT * FROM pilots WHERE name='$pilot'");
"#,
            130,
        ),
    );
    // 3. Escaped but unquoted kill id.
    vfs.add(
        "killmail.php",
        page(
            r#"$killid = addslashes($_POST['killid']);
$r = mysql_query("SELECT * FROM kills WHERE killid=$killid");
"#,
            130,
        ),
    );
    // 4. Tainted ORDER BY column.
    vfs.add(
        "rank.php",
        page(
            r#"$sort = $_GET['sort'];
$r = mysql_query("SELECT * FROM pilots ORDER BY $sort DESC");
"#,
            130,
        ),
    );
    // 5 (indirect): corp name from the session user row.
    vfs.add(
        "update.php",
        page(
            r#"$corp = $USER['corp'];
$r = mysql_query("UPDATE pilots SET corp='$corp' WHERE id=1");
"#,
            130,
        ),
    );
    // Safe page: intval'd id.
    vfs.add(
        "view.php",
        page(
            r#"$id = intval($_GET['id']);
$r = mysql_query("SELECT * FROM kills WHERE killid=$id");
"#,
            130,
        ),
    );

    let entries = vec![
        "index.php".to_owned(),
        "pilot.php".to_owned(),
        "killmail.php".to_owned(),
        "rank.php".to_owned(),
        "update.php".to_owned(),
        "view.php".to_owned(),
    ];
    App {
        name: "EVE Activity Tracker (like, 1.0)",
        vfs,
        entries,
        truth: Truth {
            direct_real: 4,
            direct_false: 0,
            indirect: 1,
        },
    }
}

fn page(body: &str, filler_lines: usize) -> String {
    format!(
        "<?php\ninclude('common.php');\n{}\n?>\n{}",
        body,
        filler::html_page("eve", filler_lines)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1_row() {
        let app = build();
        assert_eq!(app.vfs.len(), 8, "Table 1: 8 files");
        let lines = app.vfs.total_lines();
        assert!((700..=1100).contains(&lines), "Table 1: ~905 lines, got {lines}");
    }

    #[test]
    fn all_files_parse() {
        let app = build();
        for p in app.vfs.paths() {
            strtaint_php::parse(app.vfs.get(p).unwrap())
                .unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }
}
