//! `utopia-news-pro`-like subject: 25 files, ~5.6K lines, seeded with
//! 14 real direct SQLCIVs, 2 direct false positives, and 12 indirect
//! reports — the Table 1 row for Utopia News Pro 1.3.0.
//!
//! The paper's Figure 2 (the unanchored `eregi` bug), Figure 9 (the
//! type-conversion false positive), and Figure 10 (the indirect
//! `$USER` report) appear verbatim.

use strtaint_analysis::Vfs;

use crate::app::{App, Truth};
use crate::filler;

/// Builds the application.
pub fn build() -> App {
    let mut vfs = Vfs::new();
    let mut entries: Vec<String> = Vec::new();
    let page = |vfs: &mut Vfs, entries: &mut Vec<String>, name: &str, body: &str| {
        vfs.add(name, body.to_owned());
        entries.push(name.to_owned());
    };

    // ------------------------------------------------ shared files
    vfs.add(
        "config.php",
        r#"<?php
define('UNP_PREFIX', 'unp_');
define('UNP_VERSION', '1.3.0');
$gp_permserror = 'You do not have permission to perform this action.';
$gp_invalidrequest = 'Invalid request.';
$gp_allfields = 'All fields are required.';
"#,
    );
    vfs.add(
        "functions.php",
        format!(
            "{}{}",
            r#"<?php
function unp_msg($text)
{
    echo '<div class="message">' . htmlspecialchars($text) . '</div>';
}

function unp_clean($in)
{
    return addslashes($in);
}

function unp_isEmpty($v)
{
    if ($v == '') { return true; }
    return false;
}
"#,
            filler::helper_functions("unp", 40)
        ),
    );
    vfs.add(
        "header.php",
        format!(
            "{}{}",
            r#"<?php
include_once('config.php');
include_once('functions.php');
$posttime = time();
?>
"#,
            filler::html_page("header", 160)
        ),
    );

    // ------------------------------------- 14 real direct SQLCIVs
    // 1. Figure 2, verbatim (unanchored eregi).
    page(&mut vfs, &mut entries, "useredit.php", &with_header(
        r#"isset($_GET['userid']) ?
    $userid = $_GET['userid'] : $userid = '';
if ($USER['groupid'] != 1)
{
    unp_msg($gp_permserror);
    exit;
}
if ($userid == '')
{
    unp_msg($gp_invalidrequest);
    exit;
}
if (!eregi('[0-9]+', $userid))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
$getuser = $DB->query("SELECT * FROM `unp_user` WHERE userid='$userid'");
if (!$DB->is_single_row($getuser))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
"#,
        261,
    ));
    // 2. Start-anchored only — still admits "1'; DROP ...".
    page(&mut vfs, &mut entries, "usersave.php", &with_header(
        r#"$userid = isset($_POST['userid']) ? $_POST['userid'] : '';
if (!eregi('^[0-9]+', $userid))
{
    unp_msg('Invalid user ID.');
    exit;
}
$newname = unp_clean($_POST['username']);
$r = $DB->query("UPDATE `unp_user` SET username='$newname' WHERE userid='$userid'");
"#,
        246,
    ));
    // 3. End-anchored only — admits "x'; DROP ...; -- 1".
    page(&mut vfs, &mut entries, "userdel.php", &with_header(
        r#"$userid = isset($_GET['userid']) ? $_GET['userid'] : '';
if (!eregi('[0-9]+$', $userid))
{
    unp_msg('Invalid user ID.');
    exit;
}
$r = $DB->query("DELETE FROM `unp_user` WHERE userid='$userid'");
"#,
        217,
    ));
    // 4. Raw GET in a quoted position.
    page(&mut vfs, &mut entries, "news.php", &with_header(
        r#"$cat = $_GET['cat'];
$news = $DB->query("SELECT * FROM `unp_news` WHERE cat='$cat' ORDER BY `date` DESC");
while ($row = $DB->fetch_array($news)) {
    echo $row['subject'];
}
"#,
        290,
    ));
    // 5. Raw POST in a LIKE pattern.
    page(&mut vfs, &mut entries, "search.php", &with_header(
        r#"$q = $_POST['q'];
if (unp_isEmpty($q)) {
    unp_msg('Enter a search term.');
    exit;
}
$res = $DB->query("SELECT * FROM `unp_news` WHERE subject LIKE '%$q%'");
"#,
        275,
    ));
    // 6. Raw username in login (password hashed — safe side shown too).
    page(&mut vfs, &mut entries, "login.php", &with_header(
        r#"$user = $_POST['username'];
$pass = md5($_POST['password']);
$r = $DB->query("SELECT * FROM `unp_user` WHERE username='$user' AND password='$pass'");
if (!$DB->is_single_row($r)) {
    unp_msg('Bad credentials.');
    exit;
}
"#,
        232,
    ));
    // 7. Raw POST into INSERT.
    page(&mut vfs, &mut entries, "register.php", &with_header(
        r#"$email = $_POST['email'];
$name = unp_clean($_POST['username']);
if (unp_isEmpty($email)) {
    unp_msg($gp_allfields);
    exit;
}
$r = $DB->query("INSERT INTO `unp_user` (`username`, `email`) VALUES ('$name', '$email')");
"#,
        246,
    ));
    // 8. Escaped but unquoted — the taint-analysis blind spot.
    page(&mut vfs, &mut entries, "comment.php", &with_header(
        r#"$id = addslashes($_GET['id']);
$r = $DB->query("SELECT * FROM `unp_comment` WHERE newsid=$id");
"#,
        217,
    ));
    // 9. Raw concatenation.
    page(&mut vfs, &mut entries, "archive.php", &with_header(
        r#"$month = $_REQUEST['month'];
$r = $DB->query("SELECT * FROM `unp_news` WHERE month='" . $month . "'");
"#,
        203,
    ));
    // 10. Cookie source.
    page(&mut vfs, &mut entries, "profile.php", &with_header(
        r#"$last = $_COOKIE['unp_lastuser'];
$r = $DB->query("SELECT * FROM `unp_user` WHERE username='$last'");
"#,
        217,
    ));
    // 11. Raw REQUEST in UPDATE.
    page(&mut vfs, &mut entries, "poll.php", &with_header(
        r#"$vote = $_REQUEST['vote'];
$r = $DB->query("UPDATE `unp_poll` SET votes=votes+1 WHERE optid='$vote'");
"#,
        203,
    ));
    // 12. LIMIT position (numeric-only context).
    page(&mut vfs, &mut entries, "rss.php", &with_header(
        r#"$limit = $_GET['limit'];
$r = $DB->query("SELECT * FROM `unp_news` ORDER BY `date` DESC LIMIT $limit");
"#,
        188,
    ));
    // 13. ORDER BY position (identifier context).
    page(&mut vfs, &mut entries, "sort.php", &with_header(
        r#"$order = $_GET['order'];
$r = $DB->query("SELECT * FROM `unp_news` ORDER BY $order");
"#,
        188,
    ));
    // 14. implode of a request array into IN (...).
    page(&mut vfs, &mut entries, "bulkdel.php", &with_header(
        r#"$list = implode(',', $_POST['ids']);
$r = $DB->query("DELETE FROM `unp_news` WHERE newsid IN ($list)");
"#,
        203,
    ));

    // --------------------------------- 2 direct false positives
    // 15. Figure 9, verbatim: the string-to-boolean conversion the
    // analyzer (like the paper's) does not track.
    page(&mut vfs, &mut entries, "newsview.php", &with_header(
        r#"isset($_GET['newsid']) ?
    $getnewsid = $_GET['newsid'] : $getnewsid = false;
if (($getnewsid != false) &&
    (!preg_match('/^[\d]+$/', $getnewsid)))
{
    unp_msg('You entered an invalid news ID.');
    exit;
}
$showall = isset($_GET['showall']) ? $_GET['showall'] : '';
if (!$showall && $getnewsid)
{
    $getnews = $DB->query("SELECT * FROM `unp_news`"
        . " WHERE `newsid`='$getnewsid'"
        . " ORDER BY `date` DESC LIMIT 1");
}
"#,
        246,
    ));
    // 16. The second, similar false positive the paper mentions.
    page(&mut vfs, &mut entries, "newsview2.php", &with_header(
        r#"isset($_GET['catid']) ?
    $getcatid = $_GET['catid'] : $getcatid = false;
if (($getcatid != false) &&
    (!preg_match('/^[\d]+$/', $getcatid)))
{
    unp_msg('You entered an invalid category ID.');
    exit;
}
if ($getcatid)
{
    $getcat = $DB->query("SELECT * FROM `unp_cat` WHERE `catid`='$getcatid'");
}
"#,
        232,
    ));

    // --------------------------------------- 12 indirect reports
    // 17. Figure 10, verbatim: $newsposter unchecked, $newsposterid
    // checked (1 indirect).
    page(&mut vfs, &mut entries, "newspost.php", &with_header(
        r#"$subject = unp_clean($_POST['subject']);
$news = unp_clean($_POST['news']);
$newsposter = $USER['username'];
$newsposterid = $USER['userid'];
// Verification
if (unp_isEmpty($subject) || unp_isEmpty($news))
{
    unp_msg($gp_allfields);
    exit;
}
if (!preg_match('/^[\d]+$/', $newsposterid))
{
    unp_msg($gp_invalidrequest);
    exit;
}
$submitnews = $DB->query("INSERT INTO `unp_news`"
    . "(`date`, `subject`, `news`, `posterid`,"
    . "`poster`)"
    . " VALUES "
    . "('$posttime','$subject','$news',"
    . "'$newsposterid','$newsposter')");
"#,
        261,
    ));
    // 18-19. Two $USER fields (2 indirect).
    page(&mut vfs, &mut entries, "pm.php", &with_header(
        r#"$from = $USER['username'];
$sig = $USER['signature'];
$body = unp_clean($_POST['body']);
$r = $DB->query("INSERT INTO `unp_pm` (`body`, `sender`, `sig`) VALUES ('$body', '$from', '$sig')");
"#,
        246,
    ));
    // 20-21. Preference fields (2 indirect).
    page(&mut vfs, &mut entries, "prefs.php", &with_header(
        r#"$style = $USER['style'];
$lang = $USER['lang'];
$r = $DB->query("UPDATE `unp_user` SET style='$style', lang='$lang' WHERE userid=1");
"#,
        217,
    ));
    // 22-23. $USER group + fetched row reused (2 indirect).
    page(&mut vfs, &mut entries, "dashboard.php", &with_header(
        r#"$group = $USER['groupid'];
$r = $DB->query("SELECT * FROM `unp_news` WHERE grp='$group'");
$row = $DB->fetch_array($r);
$lastcat = $row['lastcat'];
$r2 = $DB->query("SELECT * FROM `unp_cat` WHERE name='$lastcat'");
"#,
        246,
    ));
    // 24-25. Ban list: $USER ip + fetched ban id (2 indirect).
    page(&mut vfs, &mut entries, "banlist.php", &with_header(
        r#"$ip = $USER['ip'];
$r = $DB->query("SELECT * FROM `unp_ban` WHERE ip='$ip'");
$ban = $DB->fetch_array($r);
$banid = $ban['banid'];
$r2 = $DB->query("DELETE FROM `unp_banlog` WHERE banid='$banid'");
"#,
        232,
    ));
    // 26-28. Session + $USER email + fetched topic (3 indirect).
    page(&mut vfs, &mut entries, "activity.php", &with_header(
        r#"$lastq = $_SESSION['last_search'];
$r = $DB->query("SELECT * FROM `unp_log` WHERE q='$lastq'");
$mail = $USER['email'];
$r2 = $DB->query("SELECT * FROM `unp_notify` WHERE email='$mail'");
$row = $DB->fetch_array($r2);
$topic = $row['topicid'];
$r3 = $DB->query("SELECT * FROM `unp_topic` WHERE topicid='$topic'");
"#,
        261,
    ));

    App {
        name: "Utopia News Pro (like, 1.3.0)",
        vfs,
        entries,
        truth: Truth {
            direct_real: 14,
            direct_false: 2,
            indirect: 12,
        },
    }
}

/// Wraps a page body with the standard include header and trailing
/// template filler so page sizes resemble the real subject.
fn with_header(body: &str, filler_lines: usize) -> String {
    format!(
        "<?php\ninclude('header.php');\n{}\n?>\n{}",
        body.trim_start_matches("<?php"),
        filler::html_page("page", filler_lines)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1_row() {
        let app = build();
        assert_eq!(app.vfs.len(), 25, "Table 1: 25 files");
        let lines = app.vfs.total_lines();
        assert!(
            (4500..=6700).contains(&lines),
            "Table 1: ~5,611 lines, got {lines}"
        );
        assert_eq!(app.entries.len(), 22);
        assert_eq!(app.truth.direct_total(), 16);
    }

    #[test]
    fn all_files_parse() {
        let app = build();
        for p in app.vfs.paths() {
            let src = app.vfs.get(p).unwrap();
            strtaint_php::parse(src).unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }
}
