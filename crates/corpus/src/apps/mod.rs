//! The five corpus applications mirroring the paper's Table 1 subjects.

pub mod e107;
pub mod eve;
pub mod tiger;
pub mod utopia;
pub mod warp;

use crate::app::App;

/// Builds all five subjects in the paper's Table 1 order.
pub fn all() -> Vec<App> {
    vec![
        e107::build(),
        eve::build(),
        tiger::build(),
        utopia::build(),
        warp::build(),
    ]
}
