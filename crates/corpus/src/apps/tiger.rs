//! `Tiger PHP News System`-like subject: 16 files, ~8K lines. Designed
//! to be secure; the analyzer reports 3 direct false positives (the
//! hand-written character-level sanitizer the paper describes in §5.2)
//! and 2 indirect reports. Its forum markup code carries the long
//! `str_replace` chains that blow up the query grammar (§5.3 — Tiger's
//! |R| dwarfs everyone else's despite its modest size).

use strtaint_analysis::Vfs;

use crate::app::{App, Truth};
use crate::filler;

/// Number of BBCode/emoticon replacement rules in the forum path; each
/// multiplies the intermediate grammar roughly ninefold (the paper
/// removed two such sections from the real Tiger to speed up
/// analysis; longer chains here trip the widening budget instead).
pub const REPLACE_CHAIN: usize = 3;

/// Builds the application.
pub fn build() -> App {
    build_with_chain(REPLACE_CHAIN)
}

/// Builds the application with an explicit replacement-chain length
/// (used by the ablation bench).
pub fn build_with_chain(chain: usize) -> App {
    let mut vfs = Vfs::new();

    vfs.add(
        "config.php",
        r#"<?php
define('TIGER_PREFIX', 'tp_');
define('TIGER_VERSION', '1.0b39');
"#,
    );
    // The hand-written sanitizer of §5.2: character-by-character,
    // encoding by ASCII value. Actually safe — every quote becomes
    // &#39; — but the string analyzer has no map from characters to
    // their ASCII values, so each use is a false positive.
    vfs.add(
        "sanitize.php",
        r#"<?php
function tiger_clean($s)
{
    $out = '';
    $len = strlen($s);
    for ($i = 0; $i < $len; $i++) {
        $c = substr($s, $i, 1);
        $n = ord($c);
        if ($n < 32) {
            $out .= '';
        } elseif ($n == 39) {
            $out .= '&#39;';
        } elseif ($n == 92) {
            $out .= '&#92;';
        } else {
            $out .= $c;
        }
    }
    return $out;
}
"#,
    );
    vfs.add(
        "common.php",
        format!(
            "{}{}",
            r#"<?php
include_once('config.php');
include_once('sanitize.php');
"#,
            filler::helper_functions("tiger", 60)
        ),
    );
    // Forum markup: the BBCode/emoticon replacement chains.
    let mut forum_lib = String::from(
        r#"<?php
function tiger_markup($text)
{
    $t = $text;
"#,
    );
    let tags = [
        ("[b]", "<b>"),
        ("[/b]", "</b>"),
        ("[i]", "<i>"),
        ("[/i]", "</i>"),
        ("[u]", "<u>"),
        ("[/u]", "</u>"),
        ("[quote]", "<blockquote>"),
        ("[/quote]", "</blockquote>"),
        ("[code]", "<pre>"),
        ("[/code]", "</pre>"),
        (":)", "<img src=\"smile.gif\">"),
        (":(", "<img src=\"frown.gif\">"),
        (";)", "<img src=\"wink.gif\">"),
        (":D", "<img src=\"grin.gif\">"),
    ];
    for (pat, rep) in tags.iter().take(chain.min(tags.len())) {
        forum_lib.push_str(&format!(
            "    $t = str_replace('{pat}', '{}', $t);\n",
            rep.replace('"', "\\\"").replace('\'', "\\'")
        ));
    }
    forum_lib.push_str("    return $t;\n}\n");
    vfs.add("forumlib.php", forum_lib);

    let mut entries: Vec<String> = Vec::new();
    let page = |vfs: &mut Vfs, entries: &mut Vec<String>, name: &str, body: &str, f: usize| {
        vfs.add(
            name,
            format!(
                "<?php\ninclude('common.php');\n{}\n?>\n{}",
                body,
                filler::html_page("tiger", f)
            ),
        );
        entries.push(name.to_owned());
    };

    // FP 1-3: tiger_clean used in quoted positions (safe, reported).
    page(&mut vfs, &mut entries, "submit.php", r#"$subject = tiger_clean($_POST['subject']);
$r = $DB->query("INSERT INTO tp_news (subject) VALUES ('$subject')");
"#, 400);
    page(&mut vfs, &mut entries, "comment.php", r#"$c = tiger_clean($_POST['comment']);
$nid = intval($_GET['newsid']);
$r = $DB->query("INSERT INTO tp_comment (newsid, body) VALUES ($nid, '$c')");
"#, 420);
    page(&mut vfs, &mut entries, "profile.php", r#"$bio = tiger_clean($_POST['bio']);
$uid = intval($_GET['uid']);
$r = $DB->query("UPDATE tp_user SET bio='$bio' WHERE uid=$uid");
"#, 400);

    // Indirect 1-2. The forum page runs the fetched post body through
    // the BBCode replacement chain and caches the result in the
    // database — this is what makes Tiger's *query* grammar dwarf the
    // other subjects' (Table 1: |R| vs lines), exactly as the paper
    // observes.
    page(&mut vfs, &mut entries, "usercp.php", r#"$uname = $USER['name'];
$r = $DB->query("SELECT * FROM tp_prefs WHERE owner='$uname'");
"#, 380);
    page(&mut vfs, &mut entries, "digest.php", r#"$n = intval($_GET['n']);
$r = $DB->query("SELECT * FROM tp_news ORDER BY stamp DESC LIMIT 10");
"#, 380);

    // The forum page: markup chains feed the render cache.
    page(&mut vfs, &mut entries, "forum.php", r#"include('forumlib.php');
$tid = intval($_GET['topic']);
$r = $DB->query("SELECT * FROM tp_post WHERE topic=$tid");
$row = $DB->fetch_array($r);
$html = tiger_markup($row['body']);
$DB->query("INSERT INTO tp_cache (topic, html) VALUES ($tid, '$html')");
$pv = tiger_markup($_POST['preview']);
echo $pv;
"#, 420);

    // Safe pages (intval everywhere, Tiger is "designed to be secure").
    page(&mut vfs, &mut entries, "news.php", r#"$id = intval($_GET['id']);
$r = $DB->query("SELECT * FROM tp_news WHERE id=$id");
"#, 600);
    page(&mut vfs, &mut entries, "category.php", r#"$cid = intval($_GET['cat']);
$r = $DB->query("SELECT * FROM tp_news WHERE cat=$cid ORDER BY stamp DESC");
"#, 600);
    page(&mut vfs, &mut entries, "archive.php", r#"$y = intval($_GET['year']);
$m = intval($_GET['month']);
$r = $DB->query("SELECT * FROM tp_news WHERE y=$y AND m=$m");
"#, 600);
    page(&mut vfs, &mut entries, "print.php", r#"$id = intval($_GET['id']);
$r = $DB->query("SELECT * FROM tp_news WHERE id=$id");
"#, 560);
    page(&mut vfs, &mut entries, "stats.php", r#"$r = $DB->query("SELECT COUNT(*) FROM tp_news");
"#, 560);
    page(&mut vfs, &mut entries, "feed.php", r#"$n = intval($_GET['n']);
$r = $DB->query("SELECT * FROM tp_news ORDER BY stamp DESC LIMIT 20");
"#, 540);

    App {
        name: "Tiger PHP News System (like, 1.0b39)",
        vfs,
        entries,
        truth: Truth {
            direct_real: 0,
            direct_false: 3,
            indirect: 2,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1_row() {
        let app = build();
        assert_eq!(app.vfs.len(), 16, "Table 1: 16 files");
        let lines = app.vfs.total_lines();
        assert!((6000..=9500).contains(&lines), "Table 1: ~7,961 lines, got {lines}");
    }

    #[test]
    fn all_files_parse() {
        let app = build();
        for p in app.vfs.paths() {
            strtaint_php::parse(app.vfs.get(p).unwrap())
                .unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }

    #[test]
    fn chain_is_tunable() {
        let short = build_with_chain(2);
        let lib = short.vfs.get("forumlib.php").unwrap();
        assert_eq!(
            String::from_utf8_lossy(lib).matches("str_replace").count(),
            2
        );
    }
}
