//! Template frontend robustness: the lexer/parser must either parse or
//! return a structured error — never panic — and the canonical
//! pretty-printer must be a parse fixpoint on valid programs
//! (mirrors `crates/php/tests/robustness.rs`).

use proptest::prelude::*;

use strtaint_tpl::{parse, pretty, Span};

/// Identifier pattern that cannot collide with a keyword (`var`, `if`,
/// `in`, `end`, ... — none start with `x`).
const IDENT: &str = "x[a-z0-9]{0,4}";

fn expr() -> impl Strategy<Value = String> {
    prop_oneof![
        IDENT.prop_map(|s| s),
        "[0-9]{1,3}".prop_map(|s| s),
        "\"[a-z0-9 ]{0,6}\"".prop_map(|s| s),
        (IDENT, "\"[a-z ]{0,5}\"").prop_map(|(a, b)| format!("{a} + {b}")),
        IDENT.prop_map(|s| format!("req.query.{s}")),
        (IDENT, IDENT).prop_map(|(f, a)| format!("{f}({a})")),
        (IDENT, "[0-9]{1,2}").prop_map(|(a, n)| format!("({a} == {n})")),
        IDENT.prop_map(|s| format!("!{s}")),
        (IDENT, IDENT).prop_map(|(a, k)| format!("{a}[{k}]")),
    ]
}

fn stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z ]{1,6}".prop_map(|t| t),
        expr().prop_map(|e| format!("{{{{ {e} }}}}")),
        (IDENT, expr()).prop_map(|(n, e)| format!("{{% var {n} = {e} %}}")),
        expr().prop_map(|e| format!("{{% echo {e} %}}")),
        (IDENT, expr()).prop_map(|(n, e)| format!("{{% {n} += {e} %}}")),
        (expr(), expr()).prop_map(|(c, e)| format!("{{% if {c} %}}{{{{ {e} }}}}{{% end %}}")),
        (expr(), expr(), expr()).prop_map(|(c, a, b)| {
            format!("{{% if {c} %}}{{{{ {a} }}}}{{% else %}}{{{{ {b} }}}}{{% end %}}")
        }),
        (expr(), expr())
            .prop_map(|(c, e)| format!("{{% while {c} %}}{{% echo {e} %}}{{% end %}}")),
        (IDENT, expr(), expr())
            .prop_map(|(v, s, e)| format!("{{% for {v} in {s} %}}{{{{ {e} }}}}{{% end %}}")),
        (IDENT, IDENT, expr()).prop_map(|(f, p, e)| {
            format!("{{% function {f}({p}) %}}{{% return {e} %}}{{% end %}}")
        }),
    ]
}

fn program() -> impl Strategy<Value = String> {
    prop::collection::vec(stmt(), 1..6).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total on arbitrary printable input (fuzz-light).
    #[test]
    fn parser_never_panics(src in "[ -~\\n]{0,120}") {
        let _ = parse(src.as_bytes());
    }

    /// Total on delimiter-heavy soup that stresses segment scanning.
    #[test]
    fn delimiter_soup_never_panics(src in "[{}% a-z\"';=+!\\n]{0,120}") {
        let _ = parse(src.as_bytes());
    }

    /// Total on arbitrary byte soup, including non-ASCII and NUL.
    #[test]
    fn byte_soup_never_panics(raw in prop::collection::vec(0usize..256, 0..160)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let _ = parse(&bytes);
    }

    /// Well-formed source→sink pages always parse.
    #[test]
    fn var_and_sink_pages_parse(name in IDENT, value in "[a-z0-9 _.,:!-]{0,20}") {
        let src = format!(
            "{{% var {name} = req.query.{name} %}}\
             {{% db.query(\"SELECT \" + {name}) %}}{value}"
        );
        let t = parse(src.as_bytes()).unwrap();
        prop_assert!(t.stmts.len() >= 2);
    }

    /// Generated valid programs parse, and parse→pretty→parse is a
    /// fixpoint of the canonical form.
    #[test]
    fn pretty_is_a_parse_fixpoint(src in program()) {
        let t1 = parse(src.as_bytes()).unwrap();
        let p1 = pretty(&t1);
        let t2 = match parse(&p1) {
            Ok(t) => t,
            Err(e) => panic!(
                "pretty form must re-parse: {e}\nsource: {src}\npretty: {}",
                String::from_utf8_lossy(&p1)
            ),
        };
        prop_assert_eq!(
            String::from_utf8_lossy(&p1).into_owned(),
            String::from_utf8_lossy(&pretty(&t2)).into_owned(),
            "pretty(parse(pretty)) must equal pretty; source: {}",
            src
        );
    }

    /// Error spans point inside the file.
    #[test]
    fn error_spans_in_bounds(junk in "[;)(=+]{1,6}") {
        let src = format!("line\n{{% var x = {junk} %}}\n");
        if let Err(e) = parse(src.as_bytes()) {
            let lines = src.lines().count() as u32;
            prop_assert!(e.span.line >= 1 && e.span.line <= lines + 1, "{e}");
            prop_assert!(e.span != Span::default(), "{e}");
        }
    }
}

#[test]
fn deep_expression_nesting() {
    let mut src = String::from("{% var x = ");
    for _ in 0..64 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..64 {
        src.push(')');
    }
    src.push_str(" %}");
    assert!(parse(src.as_bytes()).is_ok());
}

#[test]
fn long_concat_chain() {
    let mut src = String::from("{% var q = \"a\"");
    for i in 0..500 {
        src.push_str(&format!(" + \"p{i}\""));
    }
    src.push_str(" %}");
    assert!(parse(src.as_bytes()).is_ok());
}

#[test]
fn deep_block_nesting() {
    let mut src = String::new();
    for _ in 0..12 {
        src.push_str("{% if x %}");
    }
    src.push_str("{{ y }}");
    for _ in 0..12 {
        src.push_str("{% end %}");
    }
    assert!(parse(src.as_bytes()).is_ok());
}
