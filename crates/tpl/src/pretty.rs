//! Canonical pretty-printer for the template AST.
//!
//! `pretty` renders a template in a canonical form that the parser
//! accepts back: every composite expression is parenthesized, every
//! simple statement gets its own `{% %}` block, and no whitespace is
//! inserted between tags (inserted text would become `Text` statements
//! on re-parse). The robustness suite pins the fixpoint property
//! `pretty(parse(pretty(t))) == pretty(t)`.

use crate::ast::{AssignOp, BinOp, Expr, ExprKind, Stmt, StmtKind, Template, UnaryOp};

/// Renders a template in canonical form.
pub fn pretty(t: &Template) -> Vec<u8> {
    let mut out = Vec::new();
    print_stmts(&t.stmts, &mut out);
    out
}

fn print_stmts(stmts: &[Stmt], out: &mut Vec<u8>) {
    for s in stmts {
        print_stmt(s, out);
    }
}

fn tag(out: &mut Vec<u8>, body: impl FnOnce(&mut Vec<u8>)) {
    out.extend_from_slice(b"{% ");
    body(out);
    out.extend_from_slice(b" %}");
}

fn print_stmt(s: &Stmt, out: &mut Vec<u8>) {
    match &s.kind {
        StmtKind::Text(bytes) => out.extend_from_slice(bytes),
        StmtKind::Output(e) => {
            out.extend_from_slice(b"{{ ");
            print_expr(e, out);
            out.extend_from_slice(b" }}");
        }
        StmtKind::Echo(e) => tag(out, |o| {
            o.extend_from_slice(b"echo ");
            print_expr(e, o);
        }),
        StmtKind::Var { name, init } => tag(out, |o| {
            o.extend_from_slice(b"var ");
            o.extend_from_slice(name.as_bytes());
            if let Some(e) = init {
                o.extend_from_slice(b" = ");
                print_expr(e, o);
            }
        }),
        StmtKind::Expr(e) => tag(out, |o| print_expr(e, o)),
        StmtKind::If {
            cond,
            then,
            elifs,
            els,
        } => {
            tag(out, |o| {
                o.extend_from_slice(b"if ");
                print_expr(cond, o);
            });
            print_stmts(then, out);
            for (c, body) in elifs {
                tag(out, |o| {
                    o.extend_from_slice(b"elif ");
                    print_expr(c, o);
                });
                print_stmts(body, out);
            }
            if let Some(body) = els {
                tag(out, |o| o.extend_from_slice(b"else"));
                print_stmts(body, out);
            }
            tag(out, |o| o.extend_from_slice(b"end"));
        }
        StmtKind::While { cond, body } => {
            tag(out, |o| {
                o.extend_from_slice(b"while ");
                print_expr(cond, o);
            });
            print_stmts(body, out);
            tag(out, |o| o.extend_from_slice(b"end"));
        }
        StmtKind::For { var, subject, body } => {
            tag(out, |o| {
                o.extend_from_slice(b"for ");
                o.extend_from_slice(var.as_bytes());
                o.extend_from_slice(b" in ");
                print_expr(subject, o);
            });
            print_stmts(body, out);
            tag(out, |o| o.extend_from_slice(b"end"));
        }
        StmtKind::Func(f) => {
            tag(out, |o| {
                o.extend_from_slice(b"function ");
                o.extend_from_slice(f.name.as_bytes());
                o.push(b'(');
                for (i, p) in f.params.iter().enumerate() {
                    if i > 0 {
                        o.extend_from_slice(b", ");
                    }
                    o.extend_from_slice(p.as_bytes());
                }
                o.push(b')');
            });
            print_stmts(&f.body, out);
            tag(out, |o| o.extend_from_slice(b"end"));
        }
        StmtKind::Return(e) => tag(out, |o| {
            o.extend_from_slice(b"return");
            if let Some(e) = e {
                o.push(b' ');
                print_expr(e, o);
            }
        }),
        StmtKind::Include(e) => tag(out, |o| {
            o.extend_from_slice(b"include ");
            print_expr(e, o);
        }),
        StmtKind::Exit => tag(out, |o| o.extend_from_slice(b"exit")),
        StmtKind::Break => tag(out, |o| o.extend_from_slice(b"break")),
        StmtKind::Continue => tag(out, |o| o.extend_from_slice(b"continue")),
    }
}

fn print_expr(e: &Expr, out: &mut Vec<u8>) {
    match &e.kind {
        ExprKind::Null => out.extend_from_slice(b"null"),
        ExprKind::True => out.extend_from_slice(b"true"),
        ExprKind::False => out.extend_from_slice(b"false"),
        ExprKind::Num(raw) => out.extend_from_slice(raw.as_bytes()),
        ExprKind::Str(bytes) => {
            out.push(b'"');
            for &b in bytes {
                match b {
                    b'\\' => out.extend_from_slice(b"\\\\"),
                    b'"' => out.extend_from_slice(b"\\\""),
                    b'\n' => out.extend_from_slice(b"\\n"),
                    b'\t' => out.extend_from_slice(b"\\t"),
                    b'\r' => out.extend_from_slice(b"\\r"),
                    other => out.push(other),
                }
            }
            out.push(b'"');
        }
        ExprKind::Ident(name) => out.extend_from_slice(name.as_bytes()),
        ExprKind::Member(base, name) => {
            print_expr(base, out);
            out.push(b'.');
            out.extend_from_slice(name.as_bytes());
        }
        ExprKind::Index(base, idx) => {
            print_expr(base, out);
            out.push(b'[');
            print_expr(idx, out);
            out.push(b']');
        }
        ExprKind::Call(callee, args) => {
            print_expr(callee, out);
            out.push(b'(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.extend_from_slice(b", ");
                }
                print_expr(a, out);
            }
            out.push(b')');
        }
        ExprKind::Unary(op, inner) => {
            out.push(b'(');
            out.push(match op {
                UnaryOp::Not => b'!',
                UnaryOp::Neg => b'-',
            });
            print_expr(inner, out);
            out.push(b')');
        }
        ExprKind::Binary(op, lhs, rhs) => {
            out.push(b'(');
            print_expr(lhs, out);
            out.push(b' ');
            out.extend_from_slice(binop_str(*op).as_bytes());
            out.push(b' ');
            print_expr(rhs, out);
            out.push(b')');
        }
        ExprKind::Ternary(c, t, f) => {
            out.push(b'(');
            print_expr(c, out);
            out.extend_from_slice(b" ? ");
            print_expr(t, out);
            out.extend_from_slice(b" : ");
            print_expr(f, out);
            out.push(b')');
        }
        ExprKind::Assign { target, op, value } => {
            out.push(b'(');
            print_expr(target, out);
            out.extend_from_slice(match op {
                AssignOp::Assign => b" = ",
                AssignOp::AddAssign => b" += ",
            });
            print_expr(value, out);
            out.push(b')');
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Eq => "==",
        BinOp::Neq => "!=",
        BinOp::StrictEq => "===",
        BinOp::StrictNeq => "!==",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &[u8]) {
        let t1 = match parse(src) {
            Ok(t) => t,
            Err(e) => panic!("parse failed: {e}"),
        };
        let p1 = pretty(&t1);
        let t2 = match parse(&p1) {
            Ok(t) => t,
            Err(e) => panic!(
                "re-parse of pretty form failed: {e}\npretty: {}",
                String::from_utf8_lossy(&p1)
            ),
        };
        let p2 = pretty(&t2);
        assert_eq!(
            String::from_utf8_lossy(&p1),
            String::from_utf8_lossy(&p2),
            "pretty must be a parse fixpoint"
        );
    }

    #[test]
    fn canonical_form_is_a_fixpoint() {
        roundtrip(b"hi {{ user }} bye");
        roundtrip(b"{% var q = \"a\\\"b\" + req.query.x %}{% db.query(q) %}");
        roundtrip(b"{% if a == 1 %}x{% elif !b %}y{% else %}z{% end %}");
        roundtrip(b"{% for x in rows %}{{ x[0] }}{% end %}");
        roundtrip(b"{% function f(a) %}{% return a + 1 %}{% end %}{% echo f(2) %}");
        roundtrip(b"{% while i < 10 %}{% i += 1 %}{% end %}");
    }

    #[test]
    fn nested_assignment_parenthesizes() {
        roundtrip(b"{% a = b = c %}");
        roundtrip(b"{% a = (b ? c : d) %}");
    }
}
