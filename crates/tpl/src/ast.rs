//! Abstract syntax tree for the template language.
//!
//! The language is deliberately small — a JS-flavored expression core
//! (`var x = req.query.y`, `+` concatenation, member/index access,
//! function calls) embedded in a text template with `{{ expr }}`
//! interpolation and `{% ... %}` statement blocks. Everything the
//! taint analysis needs (sources, sinks, sanitizers, control flow)
//! is expressible; nothing else is.

use crate::span::Span;

/// A parsed template file.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// Top-level statements in source order.
    pub stmts: Vec<Stmt>,
}

/// A statement plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Where it starts.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Literal template text outside any delimiter.
    Text(Vec<u8>),
    /// `{{ expr }}` — interpolation into the output document.
    Output(Expr),
    /// `echo expr` — explicit output statement inside a block.
    Echo(Expr),
    /// `var name = init` declaration (initializer optional).
    Var {
        /// The declared variable.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// A bare expression statement (assignments, calls).
    Expr(Expr),
    /// `{% if c %} ... {% elif c %} ... {% else %} ... {% end %}`.
    If {
        /// The `if` condition.
        cond: Expr,
        /// The `if` arm.
        then: Vec<Stmt>,
        /// `elif` arms in order.
        elifs: Vec<(Expr, Vec<Stmt>)>,
        /// The `else` arm, if present.
        els: Option<Vec<Stmt>>,
    },
    /// `{% while c %} ... {% end %}`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `{% for x in e %} ... {% end %}`.
    For {
        /// The bound loop variable.
        var: String,
        /// The iterated collection.
        subject: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `{% function f(a, b) %} ... {% end %}`.
    Func(FuncDecl),
    /// `return expr?`.
    Return(Option<Expr>),
    /// `include expr` — pulls another template into this page.
    Include(Expr),
    /// `exit`.
    Exit,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Where the declaration starts.
    pub span: Span,
}

/// An expression plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Where it starts.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `null`.
    Null,
    /// `true`.
    True,
    /// `false`.
    False,
    /// Numeric literal, kept as raw source text.
    Num(String),
    /// String literal (escapes decoded).
    Str(Vec<u8>),
    /// A variable reference.
    Ident(String),
    /// `base.name` member access.
    Member(Box<Expr>, String),
    /// `base[index]` element access.
    Index(Box<Expr>, Box<Expr>),
    /// `callee(args...)` — callee is an identifier or member chain.
    Call(Box<Expr>, Vec<Expr>),
    /// Unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `target = value` / `target += value`.
    Assign {
        /// The assigned lvalue (identifier, member, or index).
        target: Box<Expr>,
        /// Plain or compound assignment.
        op: AssignOp,
        /// The assigned value.
        value: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` — string concatenation / addition (JS-flavored).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNeq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `!`
    Not,
    /// `-`
    Neg,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=` — concatenating assignment.
    AddAssign,
}
