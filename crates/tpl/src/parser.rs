//! Recursive-descent parser for the template language.
//!
//! Works in two passes: the lexer's segments are first classified into
//! atoms (text, one parsed interpolation expression, or one block tag),
//! then control-flow tags (`if`/`elif`/`else`/`while`/`for`/`function`
//! ... `end`) are assembled into a statement tree.

use std::fmt;

use crate::ast::{AssignOp, BinOp, Expr, ExprKind, FuncDecl, Stmt, StmtKind, Template, UnaryOp};
use crate::lexer::{lex, LexTplError, Segment};
use crate::span::Span;
use crate::token::{SpannedTok, Tok};

/// A parse failure: position plus message.
///
/// The `Display` rendering (`parse error at L:C: message`) is
/// deliberately format-identical to the PHP frontend's parse error so
/// analysis warnings stay byte-identical regardless of frontend.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseTplError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for ParseTplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl From<LexTplError> for ParseTplError {
    fn from(e: LexTplError) -> Self {
        ParseTplError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses a template source file.
pub fn parse(src: &[u8]) -> Result<Template, ParseTplError> {
    let segs = lex(src)?;
    let mut atoms = Vec::with_capacity(segs.len());
    for seg in segs {
        atoms.push(to_atom(seg)?);
    }
    let mut i = 0;
    let (stmts, stop) = parse_stmts(&atoms, &mut i)?;
    match stop {
        Stop::Eof => Ok(Template { stmts }),
        Stop::End(sp) => Err(err(sp, "unexpected {% end %} outside a block")),
        Stop::Elif(_, sp) => Err(err(sp, "unexpected {% elif %} outside {% if %}")),
        Stop::Else(sp) => Err(err(sp, "unexpected {% else %} outside {% if %}")),
    }
}

fn err(span: Span, message: impl Into<String>) -> ParseTplError {
    ParseTplError {
        message: message.into(),
        span,
    }
}

/// One classified segment.
enum Atom {
    Text(Span, Vec<u8>),
    Output(Span, Expr),
    Tag(Span, Tag),
}

/// A parsed `{% ... %}` block.
enum Tag {
    If(Expr),
    Elif(Expr),
    Else,
    End,
    While(Expr),
    For(String, Expr),
    Function(String, Vec<String>),
    /// `;`-separated simple statements.
    Simple(Vec<Stmt>),
}

fn to_atom(seg: Segment) -> Result<Atom, ParseTplError> {
    match seg {
        Segment::Text { span, bytes } => Ok(Atom::Text(span, bytes)),
        Segment::Interp { span, toks } => {
            let mut cur = Cursor::new(&toks, span);
            let e = cur.parse_expr()?;
            cur.expect_done("interpolation")?;
            Ok(Atom::Output(span, e))
        }
        Segment::Block { span, toks } => {
            let mut cur = Cursor::new(&toks, span);
            let tag = cur.parse_tag(span)?;
            Ok(Atom::Tag(span, tag))
        }
    }
}

/// What terminated a statement run.
enum Stop {
    Eof,
    End(Span),
    Elif(Expr, Span),
    Else(Span),
}

fn parse_stmts(atoms: &[Atom], i: &mut usize) -> Result<(Vec<Stmt>, Stop), ParseTplError> {
    let mut stmts = Vec::new();
    while *i < atoms.len() {
        let at = &atoms[*i];
        *i += 1;
        match at {
            Atom::Text(span, bytes) => stmts.push(Stmt {
                kind: StmtKind::Text(bytes.clone()),
                span: *span,
            }),
            Atom::Output(span, e) => stmts.push(Stmt {
                kind: StmtKind::Output(e.clone()),
                span: *span,
            }),
            Atom::Tag(span, tag) => match tag {
                Tag::Simple(body) => stmts.extend(body.iter().cloned()),
                Tag::End => return Ok((stmts, Stop::End(*span))),
                Tag::Elif(c) => return Ok((stmts, Stop::Elif(c.clone(), *span))),
                Tag::Else => return Ok((stmts, Stop::Else(*span))),
                Tag::If(cond) => {
                    stmts.push(parse_if(atoms, i, *span, cond.clone())?);
                }
                Tag::While(cond) => {
                    let body = parse_body(atoms, i, *span, "{% while %}")?;
                    stmts.push(Stmt {
                        kind: StmtKind::While {
                            cond: cond.clone(),
                            body,
                        },
                        span: *span,
                    });
                }
                Tag::For(var, subject) => {
                    let body = parse_body(atoms, i, *span, "{% for %}")?;
                    stmts.push(Stmt {
                        kind: StmtKind::For {
                            var: var.clone(),
                            subject: subject.clone(),
                            body,
                        },
                        span: *span,
                    });
                }
                Tag::Function(name, params) => {
                    let body = parse_body(atoms, i, *span, "{% function %}")?;
                    stmts.push(Stmt {
                        kind: StmtKind::Func(FuncDecl {
                            name: name.clone(),
                            params: params.clone(),
                            body,
                            span: *span,
                        }),
                        span: *span,
                    });
                }
            },
        }
    }
    Ok((stmts, Stop::Eof))
}

/// Parses a single-armed block body up to its `{% end %}`.
fn parse_body(
    atoms: &[Atom],
    i: &mut usize,
    open: Span,
    what: &str,
) -> Result<Vec<Stmt>, ParseTplError> {
    let (body, stop) = parse_stmts(atoms, i)?;
    match stop {
        Stop::End(_) => Ok(body),
        Stop::Eof => Err(err(open, format!("unterminated {what} (missing {{% end %}})"))),
        Stop::Elif(_, sp) => Err(err(sp, format!("{{% elif %}} not allowed inside {what}"))),
        Stop::Else(sp) => Err(err(sp, format!("{{% else %}} not allowed inside {what}"))),
    }
}

fn parse_if(
    atoms: &[Atom],
    i: &mut usize,
    open: Span,
    cond: Expr,
) -> Result<Stmt, ParseTplError> {
    let (then, mut stop) = parse_stmts(atoms, i)?;
    let mut elifs = Vec::new();
    let mut els = None;
    loop {
        match stop {
            Stop::End(_) => break,
            Stop::Eof => {
                return Err(err(open, "unterminated {% if %} (missing {% end %})"));
            }
            Stop::Elif(c, _) => {
                let (body, next) = parse_stmts(atoms, i)?;
                elifs.push((c, body));
                stop = next;
            }
            Stop::Else(sp) => {
                let (body, next) = parse_stmts(atoms, i)?;
                match next {
                    Stop::End(_) => {
                        els = Some(body);
                        break;
                    }
                    Stop::Eof => {
                        return Err(err(open, "unterminated {% if %} (missing {% end %})"))
                    }
                    Stop::Elif(_, esp) => {
                        return Err(err(esp, "{% elif %} after {% else %}"));
                    }
                    Stop::Else(_) => return Err(err(sp, "duplicate {% else %}")),
                }
            }
        }
    }
    Ok(Stmt {
        kind: StmtKind::If {
            cond,
            then,
            elifs,
            els,
        },
        span: open,
    })
}

/// Token cursor over one code island.
struct Cursor<'a> {
    toks: &'a [SpannedTok],
    i: usize,
    /// Span reported for "ran out of tokens" errors.
    end_span: Span,
}

impl<'a> Cursor<'a> {
    fn new(toks: &'a [SpannedTok], open: Span) -> Self {
        let end_span = toks.last().map_or(open, |t| t.span);
        Cursor {
            toks,
            i: 0,
            end_span,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|t| &t.tok)
    }

    fn peek_span(&self) -> Span {
        self.toks.get(self.i).map_or(self.end_span, |t| t.span)
    }

    fn bump(&mut self) -> Option<&'a SpannedTok> {
        let t = self.toks.get(self.i)?;
        self.i += 1;
        Some(t)
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<Span, ParseTplError> {
        let sp = self.peek_span();
        if self.eat(tok) {
            Ok(sp)
        } else {
            Err(err(sp, format!("expected {what}")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), ParseTplError> {
        let sp = self.peek_span();
        match self.bump() {
            Some(SpannedTok {
                tok: Tok::Ident(name),
                span,
            }) => Ok((name.clone(), *span)),
            _ => Err(err(sp, format!("expected {what}"))),
        }
    }

    fn expect_done(&mut self, what: &str) -> Result<(), ParseTplError> {
        if self.i < self.toks.len() {
            Err(err(
                self.peek_span(),
                format!("unexpected token after {what}"),
            ))
        } else {
            Ok(())
        }
    }

    /// Parses an entire `{% ... %}` block into one [`Tag`].
    fn parse_tag(&mut self, open: Span) -> Result<Tag, ParseTplError> {
        let kw = match self.peek() {
            Some(Tok::Ident(name)) => Some(name.clone()),
            _ => None,
        };
        match kw.as_deref() {
            Some("if") => {
                self.i += 1;
                let c = self.parse_expr()?;
                self.expect_done("{% if %} condition")?;
                Ok(Tag::If(c))
            }
            Some("elif") => {
                self.i += 1;
                let c = self.parse_expr()?;
                self.expect_done("{% elif %} condition")?;
                Ok(Tag::Elif(c))
            }
            Some("else") => {
                self.i += 1;
                self.expect_done("{% else %}")?;
                Ok(Tag::Else)
            }
            Some("end") => {
                self.i += 1;
                self.expect_done("{% end %}")?;
                Ok(Tag::End)
            }
            Some("while") => {
                self.i += 1;
                let c = self.parse_expr()?;
                self.expect_done("{% while %} condition")?;
                Ok(Tag::While(c))
            }
            Some("for") => {
                self.i += 1;
                let (var, _) = self.expect_ident("loop variable after `for`")?;
                let (kw, kw_sp) = self.expect_ident("`in`")?;
                if kw != "in" {
                    return Err(err(kw_sp, "expected `in`"));
                }
                let subject = self.parse_expr()?;
                self.expect_done("{% for %} header")?;
                Ok(Tag::For(var, subject))
            }
            Some("function") => {
                self.i += 1;
                let (name, _) = self.expect_ident("function name")?;
                self.expect(&Tok::LParen, "`(`")?;
                let mut params = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        let (p, _) = self.expect_ident("parameter name")?;
                        params.push(p);
                        if self.eat(&Tok::RParen) {
                            break;
                        }
                        self.expect(&Tok::Comma, "`,` or `)`")?;
                    }
                }
                self.expect_done("{% function %} header")?;
                Ok(Tag::Function(name, params))
            }
            _ => {
                if self.toks.is_empty() {
                    return Err(err(open, "empty {% %} block"));
                }
                let mut stmts = Vec::new();
                loop {
                    stmts.push(self.parse_simple_stmt()?);
                    // Trailing semicolons are allowed; `; ;` is not.
                    if self.eat(&Tok::Semi) {
                        if self.i >= self.toks.len() {
                            break;
                        }
                    } else {
                        self.expect_done("statement")?;
                        break;
                    }
                }
                Ok(Tag::Simple(stmts))
            }
        }
    }

    fn parse_simple_stmt(&mut self) -> Result<Stmt, ParseTplError> {
        let span = self.peek_span();
        let kw = match self.peek() {
            Some(Tok::Ident(name)) => Some(name.clone()),
            _ => None,
        };
        let kind = match kw.as_deref() {
            Some("var") => {
                self.i += 1;
                let (name, _) = self.expect_ident("variable name after `var`")?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                StmtKind::Var { name, init }
            }
            Some("echo") => {
                self.i += 1;
                StmtKind::Echo(self.parse_expr()?)
            }
            Some("return") => {
                self.i += 1;
                let done = matches!(self.peek(), None | Some(Tok::Semi));
                StmtKind::Return(if done { None } else { Some(self.parse_expr()?) })
            }
            Some("include") => {
                self.i += 1;
                StmtKind::Include(self.parse_expr()?)
            }
            Some("exit") => {
                self.i += 1;
                StmtKind::Exit
            }
            Some("break") => {
                self.i += 1;
                StmtKind::Break
            }
            Some("continue") => {
                self.i += 1;
                StmtKind::Continue
            }
            _ => StmtKind::Expr(self.parse_expr()?),
        };
        Ok(Stmt { kind, span })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseTplError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr, ParseTplError> {
        let lhs = self.parse_ternary()?;
        let op = match self.peek() {
            Some(Tok::Assign) => AssignOp::Assign,
            Some(Tok::PlusAssign) => AssignOp::AddAssign,
            _ => return Ok(lhs),
        };
        if !matches!(
            lhs.kind,
            ExprKind::Ident(_) | ExprKind::Member(..) | ExprKind::Index(..)
        ) {
            return Err(err(self.peek_span(), "invalid assignment target"));
        }
        self.i += 1;
        let value = self.parse_assign()?;
        let span = lhs.span;
        Ok(Expr {
            kind: ExprKind::Assign {
                target: Box::new(lhs),
                op,
                value: Box::new(value),
            },
            span,
        })
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseTplError> {
        let cond = self.parse_or()?;
        if !self.eat(&Tok::Question) {
            return Ok(cond);
        }
        let then = self.parse_ternary()?;
        self.expect(&Tok::Colon, "`:` in ternary")?;
        let els = self.parse_ternary()?;
        let span = cond.span;
        Ok(Expr {
            kind: ExprKind::Ternary(Box::new(cond), Box::new(then), Box::new(els)),
            span,
        })
    }

    fn parse_or(&mut self) -> Result<Expr, ParseTplError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.parse_and()?;
            lhs = bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseTplError> {
        let mut lhs = self.parse_eq()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.parse_eq()?;
            lhs = bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_eq(&mut self) -> Result<Expr, ParseTplError> {
        let mut lhs = self.parse_rel()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Eq) => BinOp::Eq,
                Some(Tok::Neq) => BinOp::Neq,
                Some(Tok::StrictEq) => BinOp::StrictEq,
                Some(Tok::StrictNeq) => BinOp::StrictNeq,
                _ => return Ok(lhs),
            };
            self.i += 1;
            let rhs = self.parse_rel()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn parse_rel(&mut self) -> Result<Expr, ParseTplError> {
        let mut lhs = self.parse_add()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Ge) => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.i += 1;
            let rhs = self.parse_add()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn parse_add(&mut self) -> Result<Expr, ParseTplError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.i += 1;
            let rhs = self.parse_mul()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseTplError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.i += 1;
            let rhs = self.parse_unary()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseTplError> {
        let span = self.peek_span();
        if self.eat(&Tok::Not) {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnaryOp::Not, Box::new(e)),
                span,
            });
        }
        if self.eat(&Tok::Minus) {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnaryOp::Neg, Box::new(e)),
                span,
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseTplError> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat(&Tok::Dot) {
                let (name, _) = self.expect_ident("member name after `.`")?;
                let span = e.span;
                e = Expr {
                    kind: ExprKind::Member(Box::new(e), name),
                    span,
                };
            } else if self.eat(&Tok::LBracket) {
                let idx = self.parse_expr()?;
                self.expect(&Tok::RBracket, "`]`")?;
                let span = e.span;
                e = Expr {
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    span,
                };
            } else if self.peek() == Some(&Tok::LParen) {
                if !matches!(e.kind, ExprKind::Ident(_) | ExprKind::Member(..)) {
                    return Err(err(
                        self.peek_span(),
                        "only names and members are callable",
                    ));
                }
                self.i += 1;
                let mut args = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        args.push(self.parse_expr()?);
                        if self.eat(&Tok::RParen) {
                            break;
                        }
                        self.expect(&Tok::Comma, "`,` or `)`")?;
                    }
                }
                let span = e.span;
                e = Expr {
                    kind: ExprKind::Call(Box::new(e), args),
                    span,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseTplError> {
        let span = self.peek_span();
        match self.bump() {
            Some(SpannedTok {
                tok: Tok::Num(raw),
                span,
            }) => Ok(Expr {
                kind: ExprKind::Num(raw.clone()),
                span: *span,
            }),
            Some(SpannedTok {
                tok: Tok::Str(bytes),
                span,
            }) => Ok(Expr {
                kind: ExprKind::Str(bytes.clone()),
                span: *span,
            }),
            Some(SpannedTok {
                tok: Tok::Ident(name),
                span,
            }) => {
                let kind = match name.as_str() {
                    "null" => ExprKind::Null,
                    "true" => ExprKind::True,
                    "false" => ExprKind::False,
                    _ => ExprKind::Ident(name.clone()),
                };
                Ok(Expr { kind, span: *span })
            }
            Some(SpannedTok {
                tok: Tok::LParen, ..
            }) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            _ => Err(err(span, "expected an expression")),
        }
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    let span = lhs.span;
    Expr {
        kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &[u8]) -> Template {
        match parse(src) {
            Ok(t) => t,
            Err(e) => panic!("parse failed: {e}"),
        }
    }

    #[test]
    fn source_sink_page_parses() {
        let t = parse_ok(
            b"{% var id = req.query.id %}\
              {% var q = \"SELECT * FROM t WHERE id = '\" + id + \"'\" %}\
              {% db.query(q) %}",
        );
        assert_eq!(t.stmts.len(), 3);
        assert!(matches!(t.stmts[0].kind, StmtKind::Var { .. }));
        assert!(matches!(t.stmts[2].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn if_elif_else_assembles() {
        let t = parse_ok(
            b"{% if a == 1 %}x{% elif b %}y{% else %}z{% end %}",
        );
        let StmtKind::If {
            elifs, els, then, ..
        } = &t.stmts[0].kind
        else {
            panic!("expected if")
        };
        assert_eq!(then.len(), 1);
        assert_eq!(elifs.len(), 1);
        assert!(els.is_some());
    }

    #[test]
    fn function_and_for_parse() {
        let t = parse_ok(
            b"{% function f(a, b) %}{% return a + b %}{% end %}\
              {% for x in rows %}{{ x }}{% end %}",
        );
        assert!(matches!(t.stmts[0].kind, StmtKind::Func(_)));
        assert!(matches!(t.stmts[1].kind, StmtKind::For { .. }));
    }

    #[test]
    fn semicolons_separate_statements() {
        let t = parse_ok(b"{% var a = 1; a += 2; echo a %}");
        assert_eq!(t.stmts.len(), 3);
    }

    #[test]
    fn unterminated_if_reports_open_span() {
        let e = parse(b"text\n{% if a %}body").expect_err("must fail");
        assert_eq!(e.span, Span::new(2, 1));
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn stray_end_is_an_error() {
        assert!(parse(b"{% end %}").is_err());
    }

    #[test]
    fn error_display_matches_php_format() {
        let e = parse(b"{{ }}").expect_err("must fail");
        assert!(e.to_string().starts_with("parse error at 1:"));
    }

    #[test]
    fn assignment_targets_are_checked() {
        assert!(parse(b"{% 1 = 2 %}").is_err());
        assert!(parse(b"{% a.b = 2 %}").is_ok());
        assert!(parse(b"{% a[0] = 2 %}").is_ok());
    }
}
