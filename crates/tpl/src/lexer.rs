//! Segmenting lexer for the template language.
//!
//! A template is literal text interleaved with two kinds of code
//! islands: `{{ expr }}` (interpolation — an output sink) and
//! `{% stmt; stmt %}` (statement blocks, including control-flow tags
//! such as `{% if e %}` ... `{% end %}`). The lexer splits the source
//! into [`Segment`]s and tokenizes the code islands; it never panics
//! on arbitrary input (pinned by `tests/robustness.rs`).

use std::fmt;

use crate::span::Span;
use crate::token::{SpannedTok, Tok};

/// One lexed piece of a template.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Literal text outside any delimiter.
    Text {
        /// Where the text starts.
        span: Span,
        /// The raw bytes.
        bytes: Vec<u8>,
    },
    /// `{{ ... }}` interpolation.
    Interp {
        /// Where the `{{` opens.
        span: Span,
        /// The tokenized expression.
        toks: Vec<SpannedTok>,
    },
    /// `{% ... %}` statement block.
    Block {
        /// Where the `{%` opens.
        span: Span,
        /// The tokenized statements.
        toks: Vec<SpannedTok>,
    },
}

/// A lexing failure: position plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct LexTplError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for LexTplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a [u8]) -> Self {
        Scanner {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn starts(&self, what: &[u8]) -> bool {
        self.src[self.pos..].starts_with(what)
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn err(&self, message: impl Into<String>) -> LexTplError {
        LexTplError {
            message: message.into(),
            span: self.span(),
        }
    }
}

/// Splits a template into text and tokenized code segments.
pub fn lex(src: &[u8]) -> Result<Vec<Segment>, LexTplError> {
    let mut sc = Scanner::new(src);
    let mut segs = Vec::new();
    loop {
        // Text mode: everything up to the next `{{` / `{%` or EOF.
        let start = sc.span();
        let mut text = Vec::new();
        while sc.peek().is_some() && !sc.starts(b"{{") && !sc.starts(b"{%") {
            if let Some(b) = sc.bump() {
                text.push(b);
            }
        }
        if !text.is_empty() {
            segs.push(Segment::Text { span: start, bytes: text });
        }
        if sc.peek().is_none() {
            break;
        }
        // Code mode: tokenize until the matching close delimiter.
        let open_span = sc.span();
        let block = sc.starts(b"{%");
        sc.bump();
        sc.bump();
        let close: &[u8] = if block { b"%}" } else { b"}}" };
        let mut toks = Vec::new();
        loop {
            while sc.peek().is_some_and(|b| b.is_ascii_whitespace()) {
                sc.bump();
            }
            if sc.peek().is_none() {
                return Err(LexTplError {
                    message: format!(
                        "unterminated {} (missing {})",
                        if block { "{% block" } else { "{{ interpolation" },
                        String::from_utf8_lossy(close)
                    ),
                    span: open_span,
                });
            }
            if sc.starts(close) {
                sc.bump();
                sc.bump();
                break;
            }
            toks.push(lex_token(&mut sc)?);
        }
        segs.push(if block {
            Segment::Block { span: open_span, toks }
        } else {
            Segment::Interp { span: open_span, toks }
        });
    }
    Ok(segs)
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn lex_token(sc: &mut Scanner<'_>) -> Result<SpannedTok, LexTplError> {
    let span = sc.span();
    let Some(c) = sc.peek() else {
        return Err(sc.err("unexpected end of input"));
    };
    let tok = if is_ident_start(c) {
        let mut name = String::new();
        while sc.peek().is_some_and(is_ident_cont) {
            if let Some(b) = sc.bump() {
                name.push(b as char);
            }
        }
        Tok::Ident(name)
    } else if c.is_ascii_digit() {
        let mut raw = String::new();
        while sc.peek().is_some_and(|b| b.is_ascii_digit()) {
            if let Some(b) = sc.bump() {
                raw.push(b as char);
            }
        }
        if sc.peek() == Some(b'.') && sc.src.get(sc.pos + 1).is_some_and(u8::is_ascii_digit) {
            sc.bump();
            raw.push('.');
            while sc.peek().is_some_and(|b| b.is_ascii_digit()) {
                if let Some(b) = sc.bump() {
                    raw.push(b as char);
                }
            }
        }
        Tok::Num(raw)
    } else if c == b'"' || c == b'\'' {
        let quote = c;
        sc.bump();
        let mut bytes = Vec::new();
        loop {
            match sc.bump() {
                None => return Err(LexTplError {
                    message: "unterminated string literal".to_owned(),
                    span,
                }),
                Some(b) if b == quote => break,
                Some(b'\\') => match sc.bump() {
                    None => return Err(LexTplError {
                        message: "unterminated string literal".to_owned(),
                        span,
                    }),
                    Some(b'n') => bytes.push(b'\n'),
                    Some(b't') => bytes.push(b'\t'),
                    Some(b'r') => bytes.push(b'\r'),
                    Some(b'\\') => bytes.push(b'\\'),
                    Some(b'"') => bytes.push(b'"'),
                    Some(b'\'') => bytes.push(b'\''),
                    Some(other) => {
                        // Unknown escape: keep both bytes verbatim.
                        bytes.push(b'\\');
                        bytes.push(other);
                    }
                },
                Some(b) => bytes.push(b),
            }
        }
        Tok::Str(bytes)
    } else {
        // Punctuation; longest match first for multi-byte operators.
        let two = |sc: &Scanner<'_>, pat: &[u8]| sc.starts(pat);
        if two(sc, b"===") {
            sc.bump();
            sc.bump();
            sc.bump();
            Tok::StrictEq
        } else if two(sc, b"!==") {
            sc.bump();
            sc.bump();
            sc.bump();
            Tok::StrictNeq
        } else if two(sc, b"==") {
            sc.bump();
            sc.bump();
            Tok::Eq
        } else if two(sc, b"!=") {
            sc.bump();
            sc.bump();
            Tok::Neq
        } else if two(sc, b"<=") {
            sc.bump();
            sc.bump();
            Tok::Le
        } else if two(sc, b">=") {
            sc.bump();
            sc.bump();
            Tok::Ge
        } else if two(sc, b"&&") {
            sc.bump();
            sc.bump();
            Tok::AndAnd
        } else if two(sc, b"||") {
            sc.bump();
            sc.bump();
            Tok::OrOr
        } else if two(sc, b"+=") {
            sc.bump();
            sc.bump();
            Tok::PlusAssign
        } else {
            sc.bump();
            match c {
                b'(' => Tok::LParen,
                b')' => Tok::RParen,
                b'[' => Tok::LBracket,
                b']' => Tok::RBracket,
                b',' => Tok::Comma,
                b';' => Tok::Semi,
                b'.' => Tok::Dot,
                b'+' => Tok::Plus,
                b'-' => Tok::Minus,
                b'*' => Tok::Star,
                b'/' => Tok::Slash,
                b'%' => Tok::Percent,
                b'=' => Tok::Assign,
                b'!' => Tok::Not,
                b'<' => Tok::Lt,
                b'>' => Tok::Gt,
                b'?' => Tok::Question,
                b':' => Tok::Colon,
                other => {
                    return Err(LexTplError {
                        message: format!("unexpected character `{}`", other as char),
                        span,
                    })
                }
            }
        }
    };
    Ok(SpannedTok { tok, span })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_and_interp_split() {
        let segs = lex(b"hello {{ name }}!").expect("lexes");
        assert_eq!(segs.len(), 3);
        assert!(matches!(&segs[0], Segment::Text { bytes, .. } if bytes == b"hello "));
        assert!(matches!(&segs[1], Segment::Interp { toks, .. } if toks.len() == 1));
        assert!(matches!(&segs[2], Segment::Text { bytes, .. } if bytes == b"!"));
    }

    #[test]
    fn block_tokenizes_operators() {
        let segs = lex(b"{% var x = a + b.c %}").expect("lexes");
        let Segment::Block { toks, .. } = &segs[0] else {
            panic!("expected block")
        };
        assert_eq!(toks.len(), 8);
        assert_eq!(toks[2].tok, Tok::Assign);
        assert_eq!(toks[4].tok, Tok::Plus);
    }

    #[test]
    fn string_may_contain_close_delims() {
        let segs = lex(b"{{ \"a}}b\" }}").expect("lexes");
        let Segment::Interp { toks, .. } = &segs[0] else {
            panic!("expected interp")
        };
        assert_eq!(toks[0].tok, Tok::Str(b"a}}b".to_vec()));
    }

    #[test]
    fn unterminated_block_reports_open_span() {
        let err = lex(b"x\n{% var a").expect_err("must fail");
        assert_eq!(err.span, Span::new(2, 1));
    }

    #[test]
    fn spans_track_lines() {
        let segs = lex(b"a\nb{% x %}").expect("lexes");
        let Segment::Block { span, .. } = &segs[1] else {
            panic!("expected block")
        };
        assert_eq!(*span, Span::new(2, 2));
    }
}
