//! Template/JS-flavored frontend language for **strtaint**: lexer,
//! parser, AST, and canonical pretty-printer.
//!
//! This crate exists to prove the analysis pipeline is frontend
//! agnostic: a second, deliberately small language whose lowering (in
//! `strtaint-analysis`) produces the same dataflow IR the PHP frontend
//! does, so grammars, policy automata, the prepared engine, and the
//! daemon all work unchanged on non-PHP input.
//!
//! The language: literal text, `{{ expr }}` interpolation (an output
//! sink, like `echo`), and `{% ... %}` statement blocks with a
//! JS-flavored expression core — `var x = req.query.y`, `+` string
//! concatenation, member/index access, function declarations and
//! calls, `db.query(...)`-style method sinks, and `if`/`while`/`for`
//! control flow assembled across blocks.
//!
//! # Examples
//!
//! ```
//! use strtaint_tpl::parse;
//!
//! let t = parse(br#"{% var id = req.query.id %}
//! {% var q = "SELECT * FROM users WHERE id='" + id + "'" %}
//! {% db.query(q) %}"#).unwrap();
//! assert_eq!(t.stmts.len(), 5); // 3 blocks + 2 newline text runs
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{
    AssignOp, BinOp, Expr, ExprKind, FuncDecl, Stmt, StmtKind, Template, UnaryOp,
};
pub use lexer::{lex, LexTplError, Segment};
pub use parser::{parse, ParseTplError};
pub use pretty::pretty;
pub use span::Span;
pub use token::{SpannedTok, Tok};
