//! Source positions for diagnostics.

use std::fmt;

/// A source location: 1-based line and column.
///
/// Spans are carried from the lexer through the AST so the frontend can
/// translate every template statement into an IR node that points at
/// the originating source line, exactly as the PHP frontend does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_line_col() {
        assert_eq!(Span::new(7, 3).to_string(), "7:3");
    }
}
