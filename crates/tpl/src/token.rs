//! Tokens for the code islands (`{{ ... }}` and `{% ... %}`) of the
//! template language.

use crate::span::Span;

/// One token of template code.
///
/// Keywords (`var`, `if`, `for`, ...) are lexed as [`Tok::Ident`] and
/// recognized by the parser, which keeps the lexer trivial and the
/// keyword set in one place.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal, kept as raw source text (`12`, `3.5`).
    Num(String),
    /// String literal (escapes already decoded).
    Str(Vec<u8>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNeq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `?`
    Question,
    /// `:`
    Colon,
}

/// A token plus the source position where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}
